"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists only so
the package can be installed editable (``pip install -e . --no-use-pep517``)
in offline environments where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
