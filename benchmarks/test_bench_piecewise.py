"""Benchmark E3: piecewise-linear square root (Section IV-B / Fig. 2).

Regenerates the segmentation the TABLEFREE datapath relies on: ~70 segments
for delta = 0.25 samples over the paper's argument range, with incremental
segment tracking needing well under one step per focal point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.piecewise import PiecewiseSqrt
from repro.experiments import e03_piecewise


@pytest.fixture(scope="module")
def result():
    return e03_piecewise.run()


def test_bench_piecewise_build(benchmark, result, report):
    x_max = 4800.0 ** 2
    benchmark(PiecewiseSqrt.build, 0.0, x_max, 0.25)

    tracking = result["segment_tracking"]
    report(
        "E3 (Fig. 2): piecewise-linear sqrt for delta = 0.25 samples",
        f"  segments needed          measured {result['segment_count']}"
        f"   paper {result['paper_reference']['segment_count']}",
        f"  max |approx error|       measured "
        f"{result['max_abs_error_samples']:.4f} samples   bound 0.25",
        f"  segment steps per point  mean {tracking['mean_steps']:.4f}, "
        f"max {tracking['max_steps']:.0f} (incremental tracking, no search)",
        "  segments vs delta        "
        + ", ".join(f"delta={d} -> {n}"
                    for d, n in result["segments_vs_delta"].items()),
    )

    assert 55 <= result["segment_count"] <= 85
    assert result["max_abs_error_samples"] <= 0.2501
    assert tracking["mean_steps"] < 1.0


def test_bench_piecewise_evaluate(benchmark, result):
    pwl = PiecewiseSqrt.build(0.0, 4800.0 ** 2, 0.25)
    xs = np.random.default_rng(0).uniform(0, pwl.x_max, 100_000)
    values = benchmark(pwl.evaluate, xs)
    assert np.max(np.abs(values - np.sqrt(xs))) <= 0.2501
