"""Benchmark E2: beamforming traversal orders (Algorithm 1 / Fig. 1).

Regenerates the comparison between the scanline-by-scanline and
nappe-by-nappe loop nests: identical focal-point coverage, very different
delay-table slice reuse.
"""

from __future__ import annotations

import pytest

from repro.config import small_system
from repro.experiments import e02_traversal
from repro.geometry.traversal import nappe_order_indices


@pytest.fixture(scope="module")
def result():
    return e02_traversal.run(small_system())


def test_bench_traversal_orders(benchmark, result, report):
    system = small_system()
    benchmark(nappe_order_indices, system)

    nappe = result["nappe"]
    scanline = result["scanline"]
    projection = result["paper_scale_projection"]
    report(
        "E2 (Algorithm 1 / Fig. 1): traversal order comparison",
        f"  same focal points visited    : {result['orders_visit_same_points']}",
        f"  scanline slice reuse         : {scanline['slice_reuse_factor']:.1f} "
        f"points per delay-table slice",
        f"  nappe slice reuse            : {nappe['slice_reuse_factor']:.1f} "
        f"points per delay-table slice",
        f"  paper-scale nappe reuse      : {projection['nappe_slice_reuse']:.0f}x "
        f"(vs 1x for scanline order)",
    )

    assert result["orders_visit_same_points"]
    assert nappe["slice_reuse_factor"] > scanline["slice_reuse_factor"]
