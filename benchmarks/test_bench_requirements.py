"""Benchmark E1: delay-table scale of the naive approach (Section II-B/II-C).

Regenerates the headline figures the paper opens with: ~164e9 coefficients,
~2.5e12 delay values/s at 15 volumes/s, and the TABLESTEER table/correction
sizes that replace them.
"""

from __future__ import annotations

import pytest

from repro.config import paper_system
from repro.experiments import e01_requirements


@pytest.fixture(scope="module")
def result():
    return e01_requirements.run()


def test_bench_requirements_report(benchmark, result, report):
    system = paper_system()
    benchmark(e01_requirements.run, system)

    requirements = result["requirements"]
    reference = result["paper_reference"]
    report(
        "E1 (Section II-B/II-C): naive delay-table requirements",
        f"  naive coefficients    measured {requirements['naive_coefficients']:.3e}"
        f"   paper {reference['naive_coefficients']:.3e}",
        f"  delay rate needed     measured "
        f"{requirements['required_delay_rate_per_second']:.3e} /s"
        f"   paper {reference['required_delay_rate_per_second']:.1e} /s",
        f"  reference table       measured {requirements['symmetric_table_entries']:.2e}"
        f" entries   paper {reference['symmetric_table_entries']:.1e}",
        f"  reference storage     measured "
        f"{requirements['symmetric_table_megabits_18b']:.1f} Mb   paper "
        f"{reference['symmetric_table_megabits_18b']:.1f} Mb",
        f"  corrections           measured {requirements['correction_values']:.2e}"
        f"   paper {reference['correction_values']:.1e}",
    )

    assert requirements["naive_coefficients"] == pytest.approx(1.64e11, rel=0.01)
    assert requirements["required_delay_rate_per_second"] == pytest.approx(
        2.46e12, rel=0.01)
    assert requirements["symmetric_table_entries"] == pytest.approx(2.5e6)
    assert requirements["correction_values"] == pytest.approx(832e3)
