"""Benchmark: multi-session server soak — aggregate voxels/s vs workers.

Drives :func:`repro.server.soak.run_soak` at the acceptance shape (8
concurrent sessions on the ``small`` preset) and at a single-worker
control point, and checks the scaling property the server exists for:
multiplexing the same offered load over more workers must raise aggregate
throughput.  Like every wall-clock assertion in this repo, the ordering is
enforced only under ``REPRO_BENCH_STRICT`` (unset = report-only, so an
oversubscribed CI runner cannot fail the suite on neighbour noise);
bookkeeping assertions (frame counts, zero drops under the lossless
``block`` policy) always run.  On a single-core machine worker scaling is
physically impossible, so the strict check becomes a bound on the
multiplexing overhead instead of an ordering.

The measured rows are the same shape ``repro.server.soak --json`` merges
into ``BENCH_runtime.json`` under ``server_soak``, where the benchgate
compares like-keyed rows across runs.

Marked ``soak`` so CI can time-box it separately
(``pytest benchmarks/test_bench_server.py -m soak``).
"""

from __future__ import annotations

import os

import pytest

from repro.server.soak import run_soak, soak_key

pytestmark = pytest.mark.soak

BENCH_STRICT = os.environ.get("REPRO_BENCH_STRICT", "") not in ("", "0")

SESSIONS = 8
FRAMES_PER_SESSION = 3
WORKERS = max(2, min(4, os.cpu_count() or 2))
MULTICORE = (os.cpu_count() or 1) >= 2
"""Worker scaling needs actual cores: on a single-core runner the strict
check degrades to a bounded-multiplexing-overhead assertion instead."""

#: Single-core floor: serving the same load through WORKERS contending
#: workers must keep at least this fraction of single-worker throughput.
SINGLE_CORE_OVERHEAD_FLOOR = 0.4


@pytest.fixture(scope="module")
def soak_rows():
    """One single-worker control row and one full-pool row, same load."""
    serial = run_soak(sessions=SESSIONS,
                      frames_per_session=FRAMES_PER_SESSION, workers=1)
    pooled = run_soak(sessions=SESSIONS,
                      frames_per_session=FRAMES_PER_SESSION,
                      workers=WORKERS)
    return serial, pooled


def test_bench_server_soak_scales_with_workers(soak_rows, report):
    serial, pooled = soak_rows
    ratio = pooled["voxels_per_second"] / serial["voxels_per_second"] \
        if serial["voxels_per_second"] else 0.0
    report(
        f"Server soak: {SESSIONS} sessions x {FRAMES_PER_SESSION} frames "
        "(system 'small', backend vectorized, policy block)",
        *(f"  {soak_key(row['sessions'], row['workers']):<8s} "
          f"{row['workers']} worker(s): "
          f"{row['voxels_per_second']:12.3e} voxels/s   "
          f"p99 {row['p99_latency_seconds'] * 1e3:8.2f} ms   "
          f"{row['drops']} drops"
          for row in (serial, pooled)),
        f"  scaling: {ratio:.2f}x aggregate throughput from "
        f"1 -> {WORKERS} workers"
        + ("" if BENCH_STRICT else "   [REPRO_BENCH_STRICT unset: "
                                   "ordering not enforced]"))
    for row in (serial, pooled):
        assert row["frames"] == SESSIONS * FRAMES_PER_SESSION
        assert row["drops"] == 0  # block policy is lossless
        assert row["voxels_per_second"] > 0
    # Cross-session plan sharing: the whole soak compiles exactly once
    # per configuration (the warm-up frame), every other frame hits.
    assert pooled["cache_misses"] == 1
    assert pooled["cache_hits"] >= SESSIONS * FRAMES_PER_SESSION - 1
    if BENCH_STRICT and MULTICORE:
        assert pooled["voxels_per_second"] > serial["voxels_per_second"], (
            f"aggregate served throughput did not scale with workers: "
            f"{pooled['voxels_per_second']:.3e} voxels/s with {WORKERS} "
            f"workers vs {serial['voxels_per_second']:.3e} with 1")
    elif BENCH_STRICT:
        floor = SINGLE_CORE_OVERHEAD_FLOOR * serial["voxels_per_second"]
        assert pooled["voxels_per_second"] >= floor, (
            f"multiplexing overhead on a single core exceeded the bound: "
            f"{pooled['voxels_per_second']:.3e} voxels/s with {WORKERS} "
            f"workers vs {serial['voxels_per_second']:.3e} with 1 "
            f"(floor {SINGLE_CORE_OVERHEAD_FLOOR}x)")


def test_bench_server_soak_latency_percentiles(soak_rows):
    """The soak rows carry the latency quantiles the benchgate reports."""
    for row in soak_rows:
        assert 0 < row["p50_latency_seconds"] <= row["p95_latency_seconds"]
        assert row["p95_latency_seconds"] <= row["p99_latency_seconds"]
