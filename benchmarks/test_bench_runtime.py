"""Benchmark E11: streaming runtime throughput across execution backends.

The software counterpart of the E9 hardware throughput rows: an 8-frame
cine sequence is streamed through the ``reference``, ``vectorized`` and
``sharded`` backends and the sustained frames/s / voxels/s are compared.
The batched backends amortise delay generation through the
:class:`DelayTableCache`, so — like the paper's table-streaming architecture
— they must beat the regenerate-per-scanline reference path.
"""

from __future__ import annotations

import pytest

from repro.config import tiny_system
from repro.experiments import e11_runtime_throughput
from repro.runtime import BeamformingService, DelayTableCache, static_cine
from repro.acoustics.echo import EchoSimulator
from repro.acoustics.phantom import point_target


@pytest.fixture(scope="module")
def result():
    return e11_runtime_throughput.run(tiny_system(), architecture="tablefree",
                                      n_frames=8)


def test_bench_runtime_backends(result, report):
    rows = result["backends"]
    report(
        "E11 (runtime): streaming backend throughput "
        f"(system '{result['system']}', {result['n_frames']} frames, "
        f"architecture {result['architecture']})",
        *(f"  {name:<10s} {row['frames_per_second']:8.2f} frames/s   "
          f"{row['voxels_per_second']:.3e} voxels/s   "
          f"{row['speedup_vs_reference']:.2f}x vs reference   "
          f"cache {row['cache_hits']}h/{row['cache_misses']}m"
          for name, row in rows.items()),
    )
    # The whole point of the batched runtime: precomputed (cached) delay
    # tensors beat per-scanline regeneration.
    assert rows["vectorized"]["frames_per_second"] > \
        rows["reference"]["frames_per_second"]
    # And repeated frames are served from the cache, not regenerated.
    assert rows["vectorized"]["cache_misses"] == 1
    assert rows["vectorized"]["cache_hits"] == result["n_frames"] - 1


def test_bench_vectorized_frame(benchmark):
    """Micro-benchmark: one cached-table vectorized frame (steady state)."""
    system = tiny_system()
    service = BeamformingService(system, architecture="tablefree",
                                 backend="vectorized",
                                 cache=DelayTableCache())
    grid_mid_depth = system.volume.depth_min + 0.5 * system.volume.depth_span
    data = EchoSimulator.from_config(system).simulate(
        point_target(depth=grid_mid_depth))
    service.submit_frame(data)  # warm the delay-table cache
    result = benchmark(lambda: service.submit_frame(data))
    assert result.rf.shape == (system.volume.n_theta, system.volume.n_phi,
                               system.volume.n_depth)


def test_bench_streamed_cine(benchmark):
    """Throughput of an 8-frame static cine on the sharded backend."""
    system = tiny_system()
    service = BeamformingService(system, architecture="tablefree",
                                 backend="sharded", cache=DelayTableCache())
    grid_mid_depth = system.volume.depth_min + 0.5 * system.volume.depth_span
    data = EchoSimulator.from_config(system).simulate(
        point_target(depth=grid_mid_depth))
    service.submit_frame(data)  # warm the delay-table cache

    results = benchmark(lambda: service.stream_all(static_cine(data, 8)))
    assert len(results) == 8
