"""Benchmark E11: streaming runtime throughput across backends x dtypes.

The software counterpart of the E9 hardware throughput rows: an 8-frame
cine sequence is streamed through the ``reference``, ``vectorized`` and
``sharded`` backends (plus ``compiled`` on numba hosts) under both kernel
precisions, per-frame and batched.
The compiled-plan backends amortise delay generation through the
:class:`PlanCache`, so — like the paper's table-streaming architecture —
they must beat the regenerate-per-scanline reference path; and the fast
path of the kernel layer (``float32`` + batched execution) must beat the
exact ``float64`` per-frame path on the same backend.

Wall-clock *orderings* are inherently noisy on loaded CI runners, so the
speed assertions only fire when ``REPRO_BENCH_STRICT`` is set (any value
but ``0``/empty) — e.g. locally, or on a dedicated perf runner.
Correctness-side assertions (cache hit/miss bookkeeping, shapes, result
counts) always run; an unset flag merely reports the measured figures.
"""

from __future__ import annotations

import os

import pytest

from repro.acoustics.echo import EchoSimulator
from repro.acoustics.phantom import point_target
from repro.config import tiny_system
from repro.experiments import e11_runtime_throughput
from repro.runtime import BeamformingService, PlanCache, static_cine

BENCH_STRICT = os.environ.get("REPRO_BENCH_STRICT", "") not in ("", "0")
"""Whether timing-ordering assertions are enforced (see module docstring)."""


def assert_faster(fast: float, slow: float, message: str) -> None:
    """Assert a throughput ordering — only under ``REPRO_BENCH_STRICT``.

    Without the flag the comparison still runs (so a report line can show
    the ratio) but a violation does not fail the suite: on an oversubscribed
    CI runner the ordering is a property of the neighbours, not the code.
    """
    if BENCH_STRICT:
        assert fast > slow, message


@pytest.fixture(scope="module")
def result():
    return e11_runtime_throughput.run(tiny_system(), architecture="tablefree",
                                      n_frames=8, batch=4)


def test_bench_runtime_backends(result, report):
    rows = result["backends"]
    report(
        "E11 (runtime): streaming backend x dtype throughput "
        f"(system '{result['system']}', {result['n_frames']} frames, "
        f"architecture {result['architecture']}, batch={result['batch']})",
        *(f"  {backend:<10s} {precision:<8s} "
          f"{row['frames_per_second']:8.2f} frames/s   "
          f"batched {row['batched_frames_per_second']:8.2f}   "
          f"{row['voxels_per_second']:.3e} voxels/s   "
          f"{row['speedup_vs_reference']:.2f}x vs reference   "
          f"cache {row['cache_hits']}h/{row['cache_misses']}m"
          for backend, by_precision in rows.items()
          for precision, row in by_precision.items()),
    )
    # The whole point of the compiled-plan runtime: precompiled (cached)
    # plans beat per-scanline regeneration (timing — strict mode only).
    assert_faster(rows["vectorized"]["float64"]["frames_per_second"],
                  rows["reference"]["float64"]["frames_per_second"],
                  "vectorized must beat the reference baseline")
    # Repeated frames are served from the cache, not recompiled — this is
    # correctness of the cache bookkeeping, asserted unconditionally.
    assert rows["vectorized"]["float64"]["cache_misses"] == 1
    assert rows["vectorized"]["float64"]["cache_hits"] == \
        result["n_frames"] - 1


def test_bench_float32_batched_beats_float64_per_frame(report):
    """The kernel layer's fast path must outrun its exact per-frame path.

    Measured on the ``small`` system (16k points x 256 elements), where the
    per-frame gather's working set falls out of the CPU caches: the batched
    float32 path chunks the gather over point blocks and moves half the
    bytes, so it must win.  Plans are compiled (cache-warmed) before timing
    so this isolates steady-state kernel throughput.
    """
    from repro.config import small_system

    system = small_system()
    grid_mid_depth = system.volume.depth_min + 0.5 * system.volume.depth_span
    data = EchoSimulator.from_config(system).simulate(
        point_target(depth=grid_mid_depth))
    cine = static_cine(data, 8)

    def best_fps(precision: str, batch_size: int) -> float:
        """Best of three runs — insulates the ordering assert from noise."""
        service = BeamformingService(system, architecture="tablefree",
                                     backend="vectorized",
                                     precision=precision, cache=PlanCache())
        service.submit_frame(data)   # compile the plan outside the clock
        best = 0.0
        for _ in range(3):
            service.reset_stats()
            service.stream_all(cine, batch_size=batch_size)
            best = max(best, service.stats().frames_per_second)
        return best

    exact = best_fps("float64", batch_size=1)
    fast = best_fps("float32", batch_size=8)

    report(f"E11 (runtime): small-system vectorized float32 batched "
           f"{fast:8.2f} frames/s vs float64 per-frame {exact:8.2f} frames/s "
           f"({fast / exact:.2f}x)"
           + ("" if BENCH_STRICT else "   [REPRO_BENCH_STRICT unset: "
              "ordering reported, not asserted]"))
    assert_faster(fast, exact,
                  "float32 batched must beat float64 per-frame on 'small'")


def test_bench_compiled_beats_vectorized(report):
    """The fused numba backend must beat the NumPy vectorized path.

    Measured on the ``small`` system (16k points x 256 elements) with
    warmed plans (JIT cost excluded — it is compile time, amortised by the
    PlanCache).  The fused kernel does no ``(n_points, n_elements)``
    temporaries and parallelises over voxel blocks, so the win should be
    large: >= 10x is asserted under ``REPRO_BENCH_STRICT`` (dedicated perf
    runner), and a loose >= 2x sanity bound always — if fusion plus
    threading cannot double NumPy's throughput, the backend is
    misconfigured, not merely on a noisy neighbour.
    """
    pytest.importorskip("numba")
    from repro.config import small_system

    system = small_system()
    grid_mid_depth = system.volume.depth_min + 0.5 * system.volume.depth_span
    data = EchoSimulator.from_config(system).simulate(
        point_target(depth=grid_mid_depth))
    cine = static_cine(data, 8)

    def best_fps(backend: str, batch_size: int) -> float:
        service = BeamformingService(system, architecture="tablefree",
                                     backend=backend, cache=PlanCache())
        service.submit_frame(data)   # plan compile + JIT outside the clock
        best = 0.0
        for _ in range(3):
            service.reset_stats()
            service.stream_all(cine, batch_size=batch_size)
            best = max(best, service.stats().frames_per_second)
        return best

    per_frame = {b: best_fps(b, batch_size=1)
                 for b in ("vectorized", "compiled")}
    batched = {b: best_fps(b, batch_size=8)
               for b in ("vectorized", "compiled")}
    report(f"E11 (runtime): small-system compiled vs vectorized — "
           f"per-frame {per_frame['compiled']:8.2f} vs "
           f"{per_frame['vectorized']:8.2f} frames/s "
           f"({per_frame['compiled'] / per_frame['vectorized']:.2f}x), "
           f"batched {batched['compiled']:8.2f} vs "
           f"{batched['vectorized']:8.2f} frames/s "
           f"({batched['compiled'] / batched['vectorized']:.2f}x)"
           + ("" if BENCH_STRICT else "   [REPRO_BENCH_STRICT unset: "
              "10x bound reported, not asserted]"))
    # Unconditional sanity bound: fused + threaded must at least double
    # the NumPy path even on a loaded runner.
    assert per_frame["compiled"] >= 2 * per_frame["vectorized"], \
        "compiled must be >= 2x vectorized per-frame on 'small'"
    assert batched["compiled"] >= 2 * batched["vectorized"], \
        "compiled must be >= 2x vectorized batched on 'small'"
    if BENCH_STRICT:
        assert per_frame["compiled"] >= 10 * per_frame["vectorized"], \
            "compiled must be >= 10x vectorized per-frame on 'small'"
        assert batched["compiled"] >= 10 * batched["vectorized"], \
            "compiled must be >= 10x vectorized batched on 'small'"


def test_bench_compiled_frame(benchmark):
    """Micro-benchmark: one cached-plan fused frame (steady state)."""
    pytest.importorskip("numba")
    system = tiny_system()
    service = BeamformingService(system, architecture="tablefree",
                                 backend="compiled", cache=PlanCache())
    grid_mid_depth = system.volume.depth_min + 0.5 * system.volume.depth_span
    data = EchoSimulator.from_config(system).simulate(
        point_target(depth=grid_mid_depth))
    service.submit_frame(data)  # warm the plan cache (includes JIT)
    result = benchmark(lambda: service.submit_frame(data))
    assert result.rf.shape == (system.volume.n_theta, system.volume.n_phi,
                               system.volume.n_depth)


def test_bench_vectorized_frame(benchmark):
    """Micro-benchmark: one cached-plan vectorized frame (steady state)."""
    system = tiny_system()
    service = BeamformingService(system, architecture="tablefree",
                                 backend="vectorized",
                                 cache=PlanCache())
    grid_mid_depth = system.volume.depth_min + 0.5 * system.volume.depth_span
    data = EchoSimulator.from_config(system).simulate(
        point_target(depth=grid_mid_depth))
    service.submit_frame(data)  # warm the plan cache
    result = benchmark(lambda: service.submit_frame(data))
    assert result.rf.shape == (system.volume.n_theta, system.volume.n_phi,
                               system.volume.n_depth)


def test_bench_batched_float32_cine(benchmark):
    """Throughput of an 8-frame static cine on the fast kernel path."""
    system = tiny_system()
    service = BeamformingService(system, architecture="tablefree",
                                 backend="vectorized", precision="float32",
                                 cache=PlanCache())
    grid_mid_depth = system.volume.depth_min + 0.5 * system.volume.depth_span
    data = EchoSimulator.from_config(system).simulate(
        point_target(depth=grid_mid_depth))
    service.submit_frame(data)  # warm the plan cache

    results = benchmark(lambda: service.stream_all(static_cine(data, 8),
                                                   batch_size=8))
    assert len(results) == 8


def test_bench_streamed_cine(benchmark):
    """Throughput of an 8-frame static cine on the sharded backend."""
    system = tiny_system()
    service = BeamformingService(system, architecture="tablefree",
                                 backend="sharded", cache=PlanCache())
    grid_mid_depth = system.volume.depth_min + 0.5 * system.volume.depth_span
    data = EchoSimulator.from_config(system).simulate(
        point_target(depth=grid_mid_depth))
    service.submit_frame(data)  # warm the plan cache

    results = benchmark(lambda: service.stream_all(static_cine(data, 8)))
    assert len(results) == 8
