"""Shared helpers for the paper-experiment benchmarks.

Each benchmark module regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md), prints the measured-vs-paper rows and
times a representative kernel with pytest-benchmark.  The printing goes
through :func:`report`, which bypasses pytest's output capture so the rows
appear in the normal benchmark run.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    """Register the benchmark-local markers (no pytest.ini in this repo)."""
    config.addinivalue_line(
        "markers",
        "soak: multi-session server soak benchmark (wall-clock heavy; "
        "run alone with '-m soak' or exclude with '-m \"not soak\"')")


@pytest.fixture()
def report(capsys):
    """Return a printer that is visible even under pytest output capture."""
    def _report(*lines: str) -> None:
        with capsys.disabled():
            print()
            for line in lines:
                print(line)
    return _report
