"""Benchmark E5: TABLESTEER steering accuracy (Section V-A / VI-A, Fig. 3).

Regenerates the far-field approximation error analysis: a loose theoretical
bound, a much smaller observed maximum located at the volume edges (where
directivity/apodization suppress it), and a volume-average error of the
order of one sample.  The absolute numbers scale with the aperture, so both
the scaled-down measurement system and the paper-scale aperture values are
reported.
"""

from __future__ import annotations

import pytest

from repro.analysis.accuracy import sample_volume_points
from repro.config import paper_system, small_system
from repro.core.tablesteer import (
    TableSteerConfig,
    TableSteerDelayGenerator,
    lagrange_error_bound_seconds,
)
from repro.experiments import e05_tablesteer_accuracy


@pytest.fixture(scope="module")
def result():
    return e05_tablesteer_accuracy.run(small_system(), max_points=400)


def test_bench_tablesteer_accuracy(benchmark, result, report):
    system = small_system()
    generator = TableSteerDelayGenerator.from_config(
        system, TableSteerConfig(total_bits=18))
    points = sample_volume_points(system, max_points=100, seed=0)
    benchmark(generator.delay_indices, points)

    bounds = result["bounds"]
    reference = result["paper_reference"]
    paper_bound = lagrange_error_bound_seconds(paper_system())
    report(
        "E5 (Section V-A / VI-A, Fig. 3): TABLESTEER steering error",
        f"  theoretical bound (small system)   "
        f"{1e6 * bounds['lagrange_bound_seconds']:.2f} us "
        f"({bounds['lagrange_bound_samples']:.0f} samples)",
        f"  theoretical bound (paper aperture)  {1e6 * paper_bound:.2f} us "
        f"({paper_bound * 32e6:.0f} samples)   paper quotes 6.7 us / 214",
        f"  observed max |err| (all points)     "
        f"{bounds['observed_max_samples_all']:.1f} samples",
        f"  observed max |err| (within directivity) "
        f"{bounds['observed_max_samples_within_directivity']:.1f} samples   "
        f"(paper: {reference['observed_max_samples']})",
        f"  observed mean |err|                 "
        f"{bounds['observed_mean_samples']:.3f} samples   "
        f"(paper: {reference['observed_mean_samples']})",
        f"  fixed-point 18b mean |err|          "
        f"{result['fixed_18b']['all_points']['mean_abs']:.3f} samples",
    )

    # Shape claims: the bound is loose, the worst errors are filtered by
    # directivity, and the average is of the order of a sample.
    assert bounds["lagrange_bound_samples"] >= \
        bounds["observed_max_samples_all"] * 0.9
    assert bounds["observed_max_samples_within_directivity"] <= \
        bounds["observed_max_samples_all"]
    assert bounds["observed_mean_samples"] < 5.0


def test_bench_tablesteer_nappe_generation(benchmark):
    """Throughput-style micro-benchmark: generate one full nappe of delays."""
    system = small_system()
    generator = TableSteerDelayGenerator.from_config(
        system, TableSteerConfig(total_bits=18))
    delays = benchmark(generator.nappe_delays_samples, 10)
    assert delays.shape == (system.volume.n_theta, system.volume.n_phi,
                            system.transducer.element_count)
