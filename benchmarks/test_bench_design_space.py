"""Extension benchmarks: design-space exploration and the recursive baseline.

Not paper tables, but quantitative backing for the paper's scaling arguments
(Section VI-B) and its related-work comparison (Section III):

* TABLEFREE frame rate vs clock and supported aperture vs device size
  (the UltraScale / next-node projection);
* TABLESTEER frame rate vs replicated block count, including the smallest
  design that reaches the 15 volumes/s target;
* the recursive delay-calculation baseline [17] vs TABLEFREE at equal
  per-point arithmetic effort.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import paper_system, tiny_system
from repro.core.exact import ExactDelayEngine
from repro.core.recursive import RecursiveConfig, RecursiveDelayGenerator
from repro.core.tablefree import TableFreeDelayGenerator
from repro.hardware.scaling import (
    find_minimum_design,
    tablefree_device_sweep,
    tablefree_frequency_sweep,
    tablesteer_block_sweep,
)


def test_bench_design_space_sweeps(benchmark, report):
    system = paper_system()
    benchmark(tablesteer_block_sweep, system)

    frequency = tablefree_frequency_sweep(system)
    device = tablefree_device_sweep(system)
    blocks = tablesteer_block_sweep(system)
    minimum = find_minimum_design(system, target_frame_rate=15.0)

    lines = ["Design space: scaling sweeps around the paper's design points",
             "  TABLEFREE frame rate vs clock:"]
    lines += [f"    {p.parameters['clock_mhz']:5.0f} MHz -> {p.frame_rate:5.1f} fps"
              f"{'  (meets 15 fps)' if p.meets_target else ''}"
              for p in frequency]
    lines.append("  TABLEFREE supported aperture vs device LUT capacity:")
    lines += [f"    {p.label:24s} -> {p.parameters['supported_side']:.0f}x"
              f"{p.parameters['supported_side']:.0f}" for p in device]
    lines.append("  TABLESTEER frame rate vs block count:")
    lines += [f"    {p.parameters['blocks']:4.0f} blocks -> {p.frame_rate:5.1f} fps, "
              f"LUT {100 * p.lut_fraction:5.1f}%" for p in blocks]
    if minimum is not None:
        lines.append(f"  smallest 15 fps TABLESTEER design: "
                     f"{minimum.parameters['blocks']:.0f} blocks "
                     f"({100 * minimum.lut_fraction:.0f}% LUTs)")
    report(*lines)

    by_clock = {p.parameters["clock_mhz"]: p for p in frequency}
    assert by_clock[167.0].frame_rate == pytest.approx(7.8, abs=0.4)
    by_scale = {p.parameters["lut_scaling"]: p for p in device}
    assert by_scale[1.0].parameters["supported_side"] == 42
    by_blocks = {int(p.parameters["blocks"]): p for p in blocks}
    assert by_blocks[128].meets_target
    assert minimum is not None and minimum.parameters["blocks"] <= 128


def test_bench_recursive_baseline(benchmark, report):
    """Recursive delay unit [17] vs TABLEFREE on the same scanline."""
    system = tiny_system()
    exact = ExactDelayEngine.from_config(system)
    recursive = RecursiveDelayGenerator.from_config(
        system, RecursiveConfig(newton_iterations=1))
    benchmark(recursive.scanline_delays_samples, 6, 6)

    truth = exact.delays_samples(exact.grid.scanline_points(6, 6))
    tablefree = TableFreeDelayGenerator.from_config(system)
    recursive_error = np.abs(recursive.scanline_delays_samples(6, 6) - truth)
    converged_error = np.abs(RecursiveDelayGenerator.from_config(
        system, RecursiveConfig(newton_iterations=6)
    ).scanline_delays_samples(6, 6) - truth)
    tablefree_error = np.abs(
        tablefree.delays_samples(exact.grid.scanline_points(6, 6)) - truth)

    report(
        "Baseline: recursive delay unit (Nikolov et al. [17]) vs TABLEFREE",
        f"  recursive, 1 Newton step : mean |err| {recursive_error.mean():.3f}, "
        f"max {recursive_error.max():.1f} samples "
        f"(cost: {recursive.arithmetic_cost_per_point()})",
        f"  recursive, 6 Newton steps: mean |err| {converged_error.mean():.4f}, "
        f"max {converged_error.max():.3f} samples",
        f"  TABLEFREE (delta = 0.25) : mean |err| {tablefree_error.mean():.3f}, "
        f"max {tablefree_error.max():.1f} samples (no divider needed)",
    )

    assert tablefree_error.mean() < recursive_error.mean()
    assert converged_error.max() < recursive_error.max() + 1e-9
