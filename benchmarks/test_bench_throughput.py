"""Benchmark E9: delay-generation throughput (Section II-C / V-B, Fig. 4).

Regenerates the throughput arithmetic: the required ~2.5e12 delays/s, the
Fig. 4 block producing 128 steered delays per cycle with 136 adders, the
128-block array peaking at ~3.3 Tdelays/s at 200 MHz (just under 20
volumes/s) and the TABLEFREE "1 fps per 20 MHz" rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import tiny_system
from repro.experiments import e09_throughput
from repro.hardware.architecture import BlockGeometry, DelayComputeBlock


@pytest.fixture(scope="module")
def result():
    return e09_throughput.run()


def test_bench_throughput_model(benchmark, result, report):
    benchmark(e09_throughput.run)

    block = result["block"]
    array = result["array"]
    steer = result["tablesteer_throughput"]
    free = result["tablefree_throughput"]
    reference = result["paper_reference"]
    report(
        "E9 (Section II-C / V-B, Fig. 4): delay-generation throughput",
        f"  required delay rate     measured {result['required_delay_rate']:.3e} /s"
        f"   paper {reference['required_delay_rate']:.1e} /s",
        f"  Fig. 4 block            {block['adders']} adders, "
        f"{block['delays_per_cycle']} delays/cycle   paper "
        f"{reference['block_adders']} / {reference['block_delays_per_cycle']}",
        f"  128-block peak rate     measured {array['peak_rate_at_200mhz']:.3e} /s"
        f"   paper {reference['peak_rate']:.1e} /s",
        f"  TABLESTEER volume rate  measured {steer['frame_rate']:.1f} fps"
        f"   paper {reference['tablesteer_frame_rate']} fps",
        f"  TABLEFREE volume rate   measured {free['frame_rate']:.1f} fps at 167 MHz"
        f"   paper {reference['tablefree_frame_rate']} fps",
        f"  TABLEFREE fps per 20MHz measured {20 * free['fps_per_mhz']:.2f}"
        f"   paper ~{reference['fps_per_20mhz']:.0f}",
    )

    assert block["adders"] == 136
    assert block["delays_per_cycle"] == 128
    assert block["dataflow_matches_direct_sum"]
    assert array["peak_rate_at_200mhz"] == pytest.approx(3.28e12, rel=0.01)
    assert steer["frame_rate"] == pytest.approx(20.0, abs=0.5)
    assert free["frame_rate"] == pytest.approx(7.8, abs=0.5)
    assert steer["meets_target"] and not free["meets_target"]


def test_bench_block_dataflow(benchmark):
    """Micro-benchmark of the functional Fig. 4 block processing a stream."""
    block = DelayComputeBlock(geometry=BlockGeometry())
    rng = np.random.default_rng(1)
    references = rng.uniform(0, 8000, 256)
    x_corr = rng.uniform(-100, 100, 8)
    y_corr = rng.uniform(-100, 100, 16)
    stream = benchmark(block.process_sequence, references, x_corr, y_corr)
    assert stream.shape == (256, 8, 16)


def test_bench_real_table_dataflow(result, report):
    """The Fig. 4 dataflow run on real reference/correction values matches the
    direct TABLESTEER computation bit for bit."""
    outcome = e09_throughput.run_with_real_tables(tiny_system())
    report("E9 (cont.): Fig. 4 block on real table values -> "
           f"matches direct computation: {outcome['matches_direct']}")
    assert outcome["matches_direct"]
