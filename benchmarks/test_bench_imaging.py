"""Benchmark E10: end-to-end imaging with the three delay generators.

Regenerates the implicit image-quality claim of the paper: a beamformer fed
by TABLEFREE or TABLESTEER delays produces essentially the same image as one
fed by exact delays, with the TABLESTEER degradation confined to steered /
edge regions.
"""

from __future__ import annotations

import pytest

from repro.acoustics.echo import EchoSimulator
from repro.acoustics.phantom import point_target
from repro.beamformer.das import DelayAndSumBeamformer
from repro.beamformer.drivers import reconstruct_plane
from repro.config import tiny_system
from repro.core.exact import ExactDelayEngine
from repro.experiments import e10_imaging


@pytest.fixture(scope="module")
def on_axis():
    return e10_imaging.run(tiny_system())


@pytest.fixture(scope="module")
def off_axis():
    return e10_imaging.run(tiny_system(), target_theta_fraction=0.8)


def test_bench_imaging_comparison(benchmark, on_axis, off_axis, report):
    system = tiny_system()
    exact = ExactDelayEngine.from_config(system)
    depth = float(exact.grid.depths[len(exact.grid.depths) // 2])
    data = EchoSimulator.from_config(system).simulate(point_target(depth=depth))
    beamformer = DelayAndSumBeamformer(system, exact)
    benchmark(reconstruct_plane, beamformer, data)

    lines = ["E10: point-target imaging, approximate vs exact delays"]
    for label, result in (("on-axis target", on_axis), ("off-axis target", off_axis)):
        lines.append(f"  {label}:")
        for name, comparison in result["comparisons"].items():
            lines.append(
                f"    {name:15s} NRMS vs exact {comparison['nrms_vs_exact']:.3f}, "
                f"peak shift ({comparison['peak_shift_theta']}, "
                f"{comparison['peak_shift_depth']}) pixels")
    report(*lines)

    for result in (on_axis, off_axis):
        for comparison in result["comparisons"].values():
            assert comparison["peak_shift_depth"] <= 1
            assert comparison["peak_shift_theta"] <= 2
            assert comparison["nrms_vs_exact"] < 0.5
    # TABLESTEER's steering approximation hurts more off axis than on axis.
    assert off_axis["comparisons"]["tablesteer_18b"]["nrms_vs_exact"] >= \
        on_axis["comparisons"]["tablesteer_18b"]["nrms_vs_exact"] - 0.05
