"""Benchmark E7: TABLESTEER storage and streaming bandwidth (Section V-B).

Regenerates the sizing of the reference delay table (2.5e6 entries / 45 Mb at
18 bit), the correction store (832e3 values / ~15 Mb), the streamed on-chip
footprint (128 x 1k x 18 bit ~ 2.3 Mb) and the DRAM bandwidth of the
table-streaming scheme (5.3-5.4 GB/s at 18 bit, ~4.2 GB/s at 14 bit).
"""

from __future__ import annotations

import pytest

from repro.config import small_system
from repro.core.reference_table import ReferenceDelayTable
from repro.experiments import e07_storage


@pytest.fixture(scope="module")
def result():
    return e07_storage.run()


def test_bench_storage_and_bandwidth(benchmark, result, report):
    benchmark(ReferenceDelayTable.build, small_system())

    reference = result["paper_reference"]
    w18 = result["per_width"][18]
    w14 = result["per_width"][14]
    buffer_stats = result["circular_buffer"]
    report(
        "E7 (Section V-B): TABLESTEER storage and DRAM bandwidth (paper system)",
        f"  reference table entries   measured "
        f"{result['analytical']['reference_entries']:.2e}   paper "
        f"{reference['reference_entries']:.1e}",
        f"  reference storage (18b)   measured {w18['reference_megabits']:.1f} Mb"
        f"   paper {reference['reference_megabits_18b']:.0f} Mb",
        f"  correction values         measured "
        f"{result['analytical']['correction_values']:.2e}   paper "
        f"{reference['correction_values']:.1e}",
        f"  streaming on-chip (18b)   measured "
        f"{w18['streaming_onchip_megabits']:.2f} Mb   paper "
        f"{reference['streaming_onchip_megabits']} Mb",
        f"  DRAM bandwidth 18b / 14b  measured {w18['dram_bandwidth_gb_per_s']:.2f} / "
        f"{w14['dram_bandwidth_gb_per_s']:.2f} GB/s   paper "
        f"{reference['dram_bandwidth_gb_per_s_18b']} / "
        f"{reference['dram_bandwidth_gb_per_s_14b']} GB/s",
        f"  circular buffer           {buffer_stats['stall_cycles']:.0f} stalls, "
        f"min fill {buffer_stats['min_fill_words']:.0f}/1024 words with 1k-cycle latency",
        f"  bank conflicts            {result['bank_conflicts_window_128']} "
        f"(128 staggered banks)",
    )

    assert result["analytical"]["reference_entries"] == pytest.approx(2.5e6)
    assert w18["reference_megabits"] == pytest.approx(45.0)
    assert w18["dram_bandwidth_gb_per_s"] == pytest.approx(5.4, abs=0.2)
    assert w14["dram_bandwidth_gb_per_s"] == pytest.approx(4.2, abs=0.2)
    assert buffer_stats["stall_cycles"] == 0
    assert result["bank_conflicts_window_128"] == 0
