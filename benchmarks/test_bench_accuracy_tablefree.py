"""Benchmark E4: TABLEFREE delay accuracy (Section VI-A).

Regenerates the selection-error statistics of the on-the-fly delay generator
against the exact computation: the paper reports a mean absolute selection
error of ~0.2489 samples and a maximum of 2 for the fixed-point
implementation with delta = 0.25.
"""

from __future__ import annotations

import pytest

from repro.analysis.accuracy import sample_volume_points
from repro.config import small_system
from repro.core.tablefree import TableFreeDelayGenerator
from repro.experiments import e04_tablefree_accuracy


@pytest.fixture(scope="module")
def result():
    return e04_tablefree_accuracy.run(small_system(), max_points=400)


def test_bench_tablefree_accuracy(benchmark, result, report):
    system = small_system()
    generator = TableFreeDelayGenerator.from_config(system)
    points = sample_volume_points(system, max_points=200, seed=0)
    benchmark(generator.delay_indices, points)

    fixed = result["fixed_point"]["all_points"]
    flt = result["float"]["all_points"]
    reference = result["paper_reference"]
    report(
        "E4 (Section VI-A): TABLEFREE selection error (delta = 0.25)",
        f"  float datapath      mean |err| {flt['mean_abs']:.4f}, "
        f"max {flt['max_abs']:.1f} samples   (paper theory: 0.204 / 0.5)",
        f"  fixed-point path    mean |err| {fixed['mean_abs']:.4f}, "
        f"max {fixed['max_abs']:.1f} samples   (paper measured: "
        f"{reference['measured_mean_abs']} / {reference['measured_max_abs']})",
        "  delta sweep         "
        + ", ".join(f"delta={d}: mean {entry['mean_abs']:.3f}"
                    for d, entry in result["delta_sweep"].items()),
    )

    assert fixed["max_abs"] <= reference["measured_max_abs"]
    assert fixed["mean_abs"] < 0.45
