"""Benchmark E8: Table II — architecture comparison on the Virtex-7.

Regenerates every column of Table II with the analytical hardware model:
resource utilisation, clock, off-chip DRAM bandwidth, throughput, achievable
volume rate and supported channel count for TABLEFREE, TABLESTEER-14b and
TABLESTEER-18b.
"""

from __future__ import annotations

import pytest

from repro.config import paper_system
from repro.experiments import e08_table2
from repro.hardware.report import table2


@pytest.fixture(scope="module")
def result():
    return e08_table2.run()


def test_bench_table2(benchmark, result, report):
    system = paper_system()
    benchmark(table2, system)

    lines = ["E8 (Table II): Virtex-7 XC7VX1140T architecture comparison",
             "  measured (analytical hardware model):"]
    lines += ["    " + line for line in result["formatted"].splitlines()]
    lines.append("  paper reference:")
    for name, row in result["paper_reference"].items():
        lines.append(
            f"    {name:15s} LUT {row['luts_pct']:3d}%  Reg {row['registers_pct']:3d}%  "
            f"BRAM {row['bram_pct']:3d}%  {row['clock_mhz']} MHz  "
            f"{row['dram_gb_per_s']} GB/s  {row['throughput_tdelays_per_s']} Td/s  "
            f"{row['frame_rate_fps']} fps  {row['channels']}")
    projection = result["ultrascale_projection"]
    lines.append(f"  UltraScale projection: TABLEFREE supports "
                 f"{projection['channels']} channels")
    report(*lines)

    rows = {row["architecture"]: row for row in result["rows"]}
    reference = result["paper_reference"]
    for name, row in rows.items():
        expected = reference[name]
        assert row["luts_pct"] == pytest.approx(expected["luts_pct"], abs=5)
        assert row["registers_pct"] == pytest.approx(expected["registers_pct"], abs=5)
        assert row["bram_pct"] == pytest.approx(expected["bram_pct"], abs=5)
        assert row["clock_mhz"] == pytest.approx(expected["clock_mhz"], abs=1)
        assert row["dram_gb_per_s"] == pytest.approx(expected["dram_gb_per_s"],
                                                     abs=0.3)
        assert row["frame_rate_fps"] == pytest.approx(expected["frame_rate_fps"],
                                                      abs=1.0)
        assert row["channels"] == expected["channels"]
