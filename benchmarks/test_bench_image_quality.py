"""Extension benchmark: image-quality impact of approximate delay generation.

Closes the loop on the paper's implicit claim that +/- a-few-sample delay
errors do not harm the image: cyst contrast, point-spread width and a
delay-error -> image-error curve, computed end to end on synthetic phantoms.
"""

from __future__ import annotations

import pytest

from repro.analysis.image_quality import (
    cyst_contrast_study,
    delay_error_to_image_error,
    resolution_vs_depth_study,
)
from repro.config import tiny_system


@pytest.fixture(scope="module")
def contrast():
    return cyst_contrast_study(tiny_system(), n_scatterers=600, seed=11)


@pytest.fixture(scope="module")
def resolution():
    return resolution_vs_depth_study(tiny_system(), depth_fractions=(0.4, 0.8))


@pytest.fixture(scope="module")
def error_curve():
    return delay_error_to_image_error(tiny_system(),
                                      deltas=(0.125, 0.25, 0.5, 1.0, 2.0))


def test_bench_image_quality(benchmark, contrast, resolution, error_curve, report):
    benchmark.pedantic(cyst_contrast_study, args=(tiny_system(),),
                       kwargs={"n_scatterers": 300, "seed": 3},
                       rounds=3, iterations=1)

    lines = ["Image quality under approximate delay generation",
             "  anechoic-cyst contrast / CNR:"]
    for name, metrics in contrast.items():
        lines.append(f"    {name:12s} contrast {metrics['contrast_db']:5.2f} dB, "
                     f"CNR {metrics['cnr']:4.2f}, "
                     f"NRMS vs exact {metrics['nrms_vs_exact']:.3f}")
    lines.append("  axial FWHM vs depth (samples):")
    for name, rows in resolution.items():
        widths = ", ".join(f"{row['axial_fwhm']:.1f}" for row in rows)
        lines.append(f"    {name:12s} {widths}")
    lines.append("  TABLEFREE delta -> mean delay error -> image NRMS:")
    for row in error_curve:
        lines.append(f"    delta {row['delta']:5.3f} -> "
                     f"{row['mean_delay_error_samples']:.2f} samples -> "
                     f"NRMS {row['image_nrms_vs_exact']:.3f}")
    report(*lines)

    for name, metrics in contrast.items():
        assert metrics["contrast_db"] > 0
    assert error_curve[0]["image_nrms_vs_exact"] <= \
        error_curve[-1]["image_nrms_vs_exact"] + 1e-9
