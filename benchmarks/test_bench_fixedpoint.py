"""Benchmark E6: fixed-point representation impact (Section VI-A).

Regenerates the Monte-Carlo the paper ran in Matlab over 10e6 random inputs:
~33 % of echo-sample selections shift by one when delays are stored as
13-bit integers, < 2 % with the 18-bit (13.5) representation, and the shift
never exceeds one sample.
"""

from __future__ import annotations

import pytest

from repro.analysis.fixedpoint_impact import fixed_point_impact
from repro.experiments import e06_fixedpoint


@pytest.fixture(scope="module")
def result():
    return e06_fixedpoint.run(n_samples=1_000_000)


def test_bench_fixedpoint_impact(benchmark, result, report):
    benchmark(fixed_point_impact, 18, 200_000)

    r13 = result["bits_13"]
    r18 = result["bits_18"]
    reference = result["paper_reference"]
    sweep = ", ".join(f"{entry['total_bits']:.0f}b: "
                      f"{100 * entry['affected_fraction']:.2f}%"
                      for entry in result["sweep"])
    report(
        "E6 (Section VI-A): fixed-point impact on echo-sample selection",
        f"  13-bit integers   measured {100 * r13['affected_fraction']:.1f}% affected, "
        f"max shift {r13['max_index_error']:.0f}   "
        f"(paper ~{100 * reference['affected_fraction_13b']:.0f}%, max 1)",
        f"  18-bit (13.5)     measured {100 * r18['affected_fraction']:.1f}% affected, "
        f"max shift {r18['max_index_error']:.0f}   "
        f"(paper <{100 * reference['affected_fraction_18b']:.0f}%, max 1)",
        f"  width sweep       {sweep}",
    )

    assert r13["affected_fraction"] == pytest.approx(0.33, abs=0.03)
    assert r18["affected_fraction"] < 0.03
    assert r13["max_index_error"] <= 1
    assert r18["max_index_error"] <= 1
