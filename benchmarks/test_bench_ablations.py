"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper tables — they quantify the individual design decisions
the paper's architectures rely on:

* symmetry pruning of the reference table (Section V-A);
* directivity/apodization masking of the worst steering errors (Section VI-A);
* incremental PWL segment tracking instead of a search (Section IV-B);
* keeping correction coefficients fixed through an insonification (Fig. 4);
* integer-index echo addressing versus fractional-delay interpolation;
* single-origin TABLESTEER versus the multi-table cost of synthetic aperture
  (Section V / conclusions).
"""

from __future__ import annotations

import pytest

from repro.analysis.ablation import (
    correction_reuse_ablation,
    directivity_filtering_ablation,
    incremental_tracking_ablation,
    interpolation_ablation,
    symmetry_pruning_ablation,
)
from repro.config import paper_system, small_system, tiny_system
from repro.core.multi_origin import synthetic_aperture_cost_comparison


def test_bench_ablation_symmetry_pruning(benchmark, report):
    result = benchmark(symmetry_pruning_ablation, tiny_system())
    report(
        "Ablation: reference-table symmetry pruning (Section V-A)",
        f"  full table entries        : {result['full_entries']:.0f}",
        f"  stored after pruning      : {result['pruned_entries']:.0f} "
        f"({100 * result['storage_saving_fraction']:.0f}% saved; paper: 75%)",
        f"  reconstruction error      : "
        f"{result['max_reconstruction_error_samples']:.2e} samples (lossless)",
        f"  further directivity pruning possible on "
        f"{100 * result['additional_directivity_prunable_fraction']:.0f}% of entries",
    )
    assert result["max_reconstruction_error_samples"] == 0.0
    assert result["storage_saving_fraction"] == pytest.approx(0.75, abs=0.05)


def test_bench_ablation_directivity_filtering(benchmark, report):
    result = benchmark.pedantic(directivity_filtering_ablation,
                                args=(small_system(),),
                                kwargs={"max_points": 300},
                                rounds=3, iterations=1)
    report(
        "Ablation: directivity filtering of TABLESTEER errors (Section VI-A)",
        f"  max |err| without filtering : "
        f"{result['without_filtering']['max_abs']:.1f} samples",
        f"  max |err| within directivity: "
        f"{result['with_filtering']['max_abs']:.1f} samples "
        f"({result['max_error_reduction_factor']:.1f}x smaller)",
        f"  (point, element) pairs masked: {100 * result['masked_fraction']:.0f}%",
    )
    assert result["with_filtering"]["max_abs"] <= \
        result["without_filtering"]["max_abs"]


def test_bench_ablation_incremental_tracking(benchmark, report):
    result = benchmark.pedantic(incremental_tracking_ablation,
                                args=(small_system(),), rounds=3, iterations=1)
    report(
        "Ablation: incremental PWL segment tracking (Section IV-B)",
        f"  segments                    : {result['segment_count']:.0f}",
        f"  steps per point (scanline)  : mean {result['scanline_mean_steps']:.3f}, "
        f"max {result['scanline_max_steps']:.0f}",
        f"  steps per point (nappe)     : mean {result['nappe_mean_steps']:.3f}, "
        f"max {result['nappe_max_steps']:.0f}",
        f"  binary-search cost avoided  : "
        f"~{result['search_cost_avoided_steps_per_point']:.1f} steps per point",
    )
    assert result["scanline_mean_steps"] < \
        result["search_cost_avoided_steps_per_point"]


def test_bench_ablation_interpolation(benchmark, report):
    result = benchmark.pedantic(interpolation_ablation, args=(tiny_system(),),
                                rounds=3, iterations=1)
    report(
        "Ablation: integer-index addressing vs fractional-delay interpolation",
        f"  image NRMS (nearest vs linear) : {result['nrms_nearest_vs_linear']:.3f}",
        f"  peak amplitude ratio           : {result['peak_ratio']:.3f}",
        f"  buffer reads per focal point   : "
        f"{result['cost_nearest']['buffer_reads']:.0f} (nearest) vs "
        f"{result['cost_linear']['buffer_reads']:.0f} (linear)",
    )
    assert result["nrms_nearest_vs_linear"] < 0.5


def test_bench_ablation_correction_reuse(benchmark, report):
    result = benchmark(correction_reuse_ablation, paper_system())
    report(
        "Ablation: correction-coefficient reuse across an insonification (Fig. 4)",
        f"  naive coefficient reloads per frame     : "
        f"{result['coefficient_reloads_per_frame_naive']:.3e}",
        f"  optimised reloads per frame             : "
        f"{result['coefficient_reloads_per_frame_optimised']:.0f}",
        f"  reload traffic reduction                : "
        f"{result['reload_reduction_factor']:.0f}x",
    )
    assert result["reload_reduction_factor"] > 1e5


def test_bench_ablation_synthetic_aperture_cost(benchmark, report):
    rows = benchmark(synthetic_aperture_cost_comparison, paper_system(),
                     (1, 2, 4, 8, 16))
    lines = ["Ablation: synthetic-aperture origin count vs delay-table storage "
             "(Section V / conclusions)",
             f"  {'origins':>8s}  {'TABLESTEER Mb':>14s}  {'TABLEFREE Mb':>13s}"]
    for row in rows:
        lines.append(f"  {row['origins']:8.0f}  "
                     f"{row['tablesteer_megabits_18b']:14.1f}  "
                     f"{row['tablefree_megabits']:13.1f}")
    report(*lines)
    assert rows[0]["tablesteer_megabits_18b"] == pytest.approx(45.0)
    assert rows[-1]["tablesteer_megabits_18b"] > 10 * rows[0]["tablesteer_megabits_18b"]
    assert all(row["tablefree_megabits"] == 0.0 for row in rows)
