"""Multi-insonification acquisition and coherent compounding.

The paper's throughput budget assumes 64 insonifications per volume with 256
scanlines beamformed per insonification (Section V-B), and mentions
synthetic-aperture schemes that move the transmit origin between
insonifications.  This module models that acquisition structure in software:

* :class:`InsonificationPlan` — how the scanlines of a volume are divided
  across insonifications, and which transmit origin each insonification uses;
* :func:`compound_volume` — acquire every insonification of a plan and sum
  the per-insonification beamformed volumes coherently, each insonification
  beamformed with the delay law of its own origin.

It is the software counterpart of the "multiple precalculated delay tables"
the paper says TABLESTEER would need for such schemes, and it is what the
synthetic-aperture example exercises.

.. note::
   This module predates :mod:`repro.scenarios`, which generalises the idea:
   a registered :class:`repro.scenarios.TransmitScheme` (plane-wave sets,
   per-element synthetic-aperture firings, diverging waves) runs through
   *any* delay architecture and *any* execution backend via the
   transmit/receive delay split, with per-firing coherent compounding on
   :meth:`repro.pipeline.ImagingPipeline.compound_volume`.  The
   :class:`InsonificationPlan` path here stays as the scanline-partitioned,
   exact-delay formulation of Section V-B's throughput bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..acoustics.echo import EchoSimulator
from ..acoustics.phantom import Phantom
from ..beamformer.das import ApodizationSettings, DelayAndSumBeamformer
from ..config import SystemConfig
from ..core.exact import ExactDelayEngine
from ..core.multi_origin import OriginSchedule


@dataclass(frozen=True)
class InsonificationPlan:
    """Assignment of scanlines and transmit origins to insonifications.

    Attributes
    ----------
    schedule:
        The transmit origins, one per insonification (cycled if the plan has
        more insonifications than origins).
    scanline_groups:
        One integer array per insonification holding the flat scanline
        indices (``i_theta * n_phi + i_phi``) reconstructed from it.
    """

    schedule: OriginSchedule
    scanline_groups: tuple[np.ndarray, ...]

    @property
    def insonification_count(self) -> int:
        """Number of transmit events per volume."""
        return len(self.scanline_groups)

    @classmethod
    def from_system(cls, system: SystemConfig,
                    schedule: OriginSchedule | None = None,
                    insonifications: int | None = None) -> "InsonificationPlan":
        """Divide the volume's scanlines evenly across insonifications.

        Defaults to the system's ``insonifications_per_volume`` and a single
        centred origin, i.e. the paper's baseline acquisition.
        """
        if schedule is None:
            schedule = OriginSchedule.single_center()
        if insonifications is None:
            insonifications = system.beamformer.insonifications_per_volume
        total_scanlines = system.volume.scanline_count
        insonifications = max(1, min(insonifications, total_scanlines))
        indices = np.arange(total_scanlines)
        groups = tuple(np.array_split(indices, insonifications))
        return cls(schedule=schedule, scanline_groups=groups)

    def origin_for(self, insonification: int) -> np.ndarray:
        """Transmit origin used by the given insonification."""
        return self.schedule.origins[insonification % self.schedule.count]

    def scanlines_per_insonification(self) -> float:
        """Average number of scanlines reconstructed per transmit event."""
        return float(np.mean([len(group) for group in self.scanline_groups]))


def compound_volume(system: SystemConfig, phantom: Phantom,
                    plan: InsonificationPlan,
                    apodization: ApodizationSettings | None = None,
                    noise_std: float = 0.0,
                    seed: int = 0) -> np.ndarray:
    """Acquire and coherently compound a volume according to a plan.

    For every insonification, channel data are simulated with that
    insonification's transmit origin, its assigned scanlines are beamformed
    with the matching (exact) delay law, and the results are accumulated into
    the output volume.  Returns the beamformed RF volume of shape
    ``(n_theta, n_phi, n_depth)``.
    """
    n_theta = system.volume.n_theta
    n_phi = system.volume.n_phi
    n_depth = system.volume.n_depth
    volume = np.zeros((n_theta, n_phi, n_depth))
    coverage = np.zeros((n_theta, n_phi), dtype=int)

    for insonification, group in enumerate(plan.scanline_groups):
        origin = plan.origin_for(insonification)
        simulator = EchoSimulator.from_config(system, origin=origin)
        channel_data = simulator.simulate(phantom, noise_std=noise_std,
                                          seed=seed + insonification)
        provider = ExactDelayEngine.from_config(system, origin=origin)
        beamformer = DelayAndSumBeamformer(system, provider,
                                           apodization=apodization)
        for flat_index in group:
            i_theta, i_phi = divmod(int(flat_index), n_phi)
            volume[i_theta, i_phi, :] += beamformer.beamform_scanline(
                channel_data, i_theta, i_phi)
            coverage[i_theta, i_phi] += 1

    if np.any(coverage == 0):
        raise RuntimeError("insonification plan left some scanlines unreconstructed")
    return volume


def acquisition_summary(system: SystemConfig, plan: InsonificationPlan) -> dict[str, float]:
    """Throughput bookkeeping for an acquisition plan (Section V-B numbers).

    Reports the insonification rate, scanlines per insonification and the
    delay values consumed per second, matching the arithmetic the paper uses
    to derive its 960 insonifications/s and 2.5e12 delays/s figures.
    """
    frame_rate = system.beamformer.frame_rate
    insonifications_per_second = plan.insonification_count * frame_rate
    delays_per_scanline = system.volume.n_depth * system.transducer.element_count
    delays_per_second = (system.volume.scanline_count * delays_per_scanline
                         * frame_rate)
    return {
        "insonifications_per_volume": float(plan.insonification_count),
        "insonifications_per_second": float(insonifications_per_second),
        "scanlines_per_insonification": plan.scanlines_per_insonification(),
        "delay_values_per_second": float(delays_per_second),
        "distinct_origins": float(plan.schedule.count),
    }
