"""High-level imaging pipeline: phantom -> echoes -> beamforming -> image.

This module wires together the acoustic simulator, a delay generator and the
delay-and-sum beamformer into a single object so that examples, experiments
and downstream users can go from a phantom description to an envelope image
(or volume) in one call, selecting the delay architecture by name — the way
an end user of the paper's system would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..runtime.cache import DelayTableCache

from ..acoustics.echo import ChannelData, EchoSimulator
from ..acoustics.phantom import Phantom
from ..beamformer.das import ApodizationSettings, DelayAndSumBeamformer, DelayProvider
from ..beamformer.drivers import (
    BeamformedVolume,
    reconstruct_nappe_order,
    reconstruct_plane,
    reconstruct_scanline_order,
)
from ..beamformer.image import envelope, log_compress
from ..beamformer.interpolation import InterpolationKind
from ..config import SystemConfig
from ..core.exact import ExactDelayEngine
from ..core.tablefree import TableFreeConfig, TableFreeDelayGenerator
from ..core.tablesteer import TableSteerConfig, TableSteerDelayGenerator
from ..geometry.transducer import MatrixTransducer
from ..geometry.volume import FocalGrid


class DelayArchitecture(str, Enum):
    """Selectable delay-generation architectures."""

    EXACT = "exact"
    TABLEFREE = "tablefree"
    TABLESTEER = "tablesteer"
    TABLESTEER_FLOAT = "tablesteer_float"


def make_delay_provider(system: SystemConfig,
                        architecture: DelayArchitecture | str,
                        tablefree_config: TableFreeConfig | None = None,
                        tablesteer_bits: int = 18) -> DelayProvider:
    """Instantiate the delay generator for the requested architecture."""
    architecture = DelayArchitecture(architecture)
    if architecture is DelayArchitecture.EXACT:
        return ExactDelayEngine.from_config(system)
    if architecture is DelayArchitecture.TABLEFREE:
        return TableFreeDelayGenerator.from_config(
            system, tablefree_config or TableFreeConfig())
    if architecture is DelayArchitecture.TABLESTEER:
        return TableSteerDelayGenerator.from_config(
            system, TableSteerConfig(total_bits=tablesteer_bits))
    if architecture is DelayArchitecture.TABLESTEER_FLOAT:
        return TableSteerDelayGenerator.from_config(
            system, TableSteerConfig(total_bits=None))
    raise ValueError(f"unknown architecture: {architecture!r}")


@dataclass
class ImagingPipeline:
    """A complete receive-imaging chain bound to one delay architecture.

    ``backend`` selects the execution backend used by :meth:`image_volume`:
    ``reference`` keeps the classic per-scanline drivers, ``vectorized`` and
    ``sharded`` route volume reconstruction through the batched
    :mod:`repro.runtime` backends (sharing delay tensors via ``cache`` when
    one is provided).  ``simulator``, ``transducer`` and ``grid`` accept
    pre-built objects so several pipelines over the same system (e.g. one
    per delay architecture) can share them instead of rebuilding.
    """

    system: SystemConfig
    architecture: DelayArchitecture = DelayArchitecture.EXACT
    apodization: ApodizationSettings = field(default_factory=ApodizationSettings)
    interpolation: InterpolationKind = InterpolationKind.NEAREST
    tablefree_config: TableFreeConfig | None = None
    tablesteer_bits: int = 18
    backend: str = "reference"
    cache: "DelayTableCache | None" = None
    simulator: EchoSimulator | None = None
    transducer: MatrixTransducer | None = None
    grid: FocalGrid | None = None

    def __post_init__(self) -> None:
        self.architecture = DelayArchitecture(self.architecture)
        self._simulator = self.simulator or EchoSimulator.from_config(self.system)
        self._provider = make_delay_provider(
            self.system, self.architecture,
            tablefree_config=self.tablefree_config,
            tablesteer_bits=self.tablesteer_bits)
        self._beamformer = DelayAndSumBeamformer(
            self.system, self._provider, apodization=self.apodization,
            interpolation=self.interpolation,
            transducer=self.transducer, grid=self.grid)
        self._runtime_backend = None
        if self.backend != "reference":
            # Imported lazily: repro.runtime depends on this module.
            from ..runtime.backends import make_backend
            self._runtime_backend = make_backend(
                self.backend, self._beamformer, cache=self.cache)

    @property
    def delay_provider(self) -> DelayProvider:
        """The underlying delay generator."""
        return self._provider

    @property
    def beamformer(self) -> DelayAndSumBeamformer:
        """The underlying delay-and-sum beamformer."""
        return self._beamformer

    # -------------------------------------------------------------- acquire
    def acquire(self, phantom: Phantom, noise_std: float = 0.0,
                seed: int = 0) -> ChannelData:
        """Simulate one insonification of ``phantom``."""
        return self._simulator.simulate(phantom, noise_std=noise_std, seed=seed)

    # ---------------------------------------------------------- reconstruct
    def image_plane(self, channel_data: ChannelData,
                    i_phi: int | None = None,
                    dynamic_range_db: float | None = None) -> np.ndarray:
        """Reconstruct one (theta, depth) plane and return its envelope.

        With ``dynamic_range_db`` set, the image is additionally
        log-compressed to that range.
        """
        rf = reconstruct_plane(self._beamformer, channel_data, i_phi=i_phi)
        env = envelope(rf, axis=1)
        if dynamic_range_db is None:
            return env
        return log_compress(env, dynamic_range_db)

    def image_volume(self, channel_data: ChannelData,
                     order: str = "nappe") -> BeamformedVolume:
        """Reconstruct the full volume.

        With the default ``reference`` backend the volume is built by the
        classic drivers in the requested traversal ``order``; the batched
        runtime backends reconstruct all scanlines at once (both traversal
        orders yield the identical volume) and tag the volume with the
        backend name instead.
        """
        if order not in ("nappe", "scanline"):
            raise ValueError("order must be 'nappe' or 'scanline'")
        if self._runtime_backend is not None:
            rf = self._runtime_backend.beamform_volume(channel_data)
            return BeamformedVolume(rf=rf, order=self.backend)
        if order == "nappe":
            return reconstruct_nappe_order(self._beamformer, channel_data)
        return reconstruct_scanline_order(self._beamformer, channel_data)

    def image_phantom(self, phantom: Phantom, noise_std: float = 0.0,
                      seed: int = 0, i_phi: int | None = None) -> np.ndarray:
        """One-call convenience: acquire a phantom and image the centre plane."""
        channel_data = self.acquire(phantom, noise_std=noise_std, seed=seed)
        return self.image_plane(channel_data, i_phi=i_phi)


def compare_architectures(system: SystemConfig, phantom: Phantom,
                          architectures: tuple[str, ...] = ("exact", "tablefree",
                                                            "tablesteer"),
                          noise_std: float = 0.0,
                          seed: int = 0) -> dict[str, np.ndarray]:
    """Image the same phantom with several architectures (shared channel data).

    Returns a mapping from architecture name to envelope image of the centre
    elevation plane; the channel data are simulated once so the images differ
    only through the delay generation.  The simulator, transducer and focal
    grid are likewise built once and shared by every per-architecture
    pipeline — only the delay providers differ.
    """
    simulator = EchoSimulator.from_config(system)
    transducer = MatrixTransducer.from_config(system)
    grid = FocalGrid.from_config(system)
    channel_data = simulator.simulate(phantom, noise_std=noise_std, seed=seed)
    images = {}
    for name in architectures:
        pipeline = ImagingPipeline(system, architecture=name,
                                   simulator=simulator, transducer=transducer,
                                   grid=grid)
        images[name] = pipeline.image_plane(channel_data)
    return images
