"""High-level imaging pipeline: phantom -> echoes -> beamforming -> image.

This module wires together the acoustic simulator, a delay generator and the
delay-and-sum beamformer into a single object so that examples, experiments
and downstream users can go from a phantom description to an envelope image
(or volume) in one call, selecting the delay architecture by name — the way
an end user of the paper's system would.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..runtime.cache import PlanCache

from ..acoustics.echo import ChannelData, EchoSimulator
from ..acoustics.phantom import Phantom
from ..architectures import (
    ARCHITECTURES,
    architecture_name,
    legacy_architecture_options,
)
from ..beamformer.das import ApodizationSettings, DelayAndSumBeamformer, DelayProvider
from ..beamformer.drivers import (
    BeamformedVolume,
    reconstruct_nappe_order,
    reconstruct_plane,
    reconstruct_scanline_order,
)
from ..beamformer.image import envelope, log_compress
from ..beamformer.interpolation import InterpolationKind
from ..config import SystemConfig
from ..core.tablefree import TableFreeConfig
from ..geometry.transducer import MatrixTransducer
from ..geometry.volume import FocalGrid
from ..kernels import Precision, resolve_precision
from ..observability.tracing import resolve_tracer


class DelayArchitecture(str, Enum):
    """The four built-in delay-generation architectures.

    Kept for backward compatibility; the open set of architectures now
    lives in :data:`repro.architectures.ARCHITECTURES`, and every
    construction path accepts plain registered names (including ones not in
    this enum).
    """

    EXACT = "exact"
    TABLEFREE = "tablefree"
    TABLESTEER = "tablesteer"
    TABLESTEER_FLOAT = "tablesteer_float"


def make_delay_provider(system: SystemConfig,
                        architecture: DelayArchitecture | str,
                        tablefree_config: TableFreeConfig | None = None,
                        tablesteer_bits: int = 18,
                        options: object | None = None) -> DelayProvider:
    """Instantiate the delay generator for the requested architecture.

    .. deprecated::
        Thin shim over ``ARCHITECTURES.create(name, system, options=...)``;
        call the registry directly.  The historical ``tablefree_config`` /
        ``tablesteer_bits`` knobs are mapped onto the registered options
        dataclasses when ``options`` is not given.
    """
    warnings.warn(
        "make_delay_provider() is deprecated; use "
        "repro.architectures.ARCHITECTURES.create(name, system, "
        "options=...) instead",
        DeprecationWarning, stacklevel=2)
    name = architecture_name(architecture)
    if options is None:
        options = legacy_architecture_options(
            name, tablefree_config=tablefree_config,
            tablesteer_bits=tablesteer_bits)
    return ARCHITECTURES.create(name, system, options=options)


@dataclass
class ImagingPipeline:
    """A complete receive-imaging chain bound to one delay architecture.

    ``backend`` selects the execution backend used by :meth:`image_volume`:
    ``reference`` keeps the classic per-scanline drivers, ``vectorized`` and
    ``sharded`` route volume reconstruction through the batched
    :mod:`repro.runtime` backends (sharing delay tensors via ``cache`` when
    one is provided).  ``simulator``, ``transducer`` and ``grid`` accept
    pre-built objects so several pipelines over the same system (e.g. one
    per delay architecture) can share them instead of rebuilding.
    """

    system: SystemConfig
    architecture: DelayArchitecture | str = "exact"
    apodization: ApodizationSettings = field(default_factory=ApodizationSettings)
    interpolation: InterpolationKind = InterpolationKind.NEAREST
    architecture_options: object | None = None
    tablefree_config: TableFreeConfig | None = None
    tablesteer_bits: int = 18
    backend: str = "reference"
    backend_options: object | None = None
    precision: Precision | str | None = None
    quantization: object | None = None
    """Optional :class:`repro.kernels.QuantizationSpec` (or bit width /
    Q-format string / dict spelling) enabling the bit-true fixed-point
    kernel path for every reconstruction this pipeline performs."""
    scheme: object | str | None = None
    """Transmit scheme: a registered :data:`repro.scenarios.SCHEMES` name
    or a pre-built :class:`repro.scenarios.TransmitScheme`; ``None``
    resolves to the focused single-firing baseline.  Multi-firing schemes
    are exercised through :meth:`acquire_firings` /
    :meth:`compound_volume` / :meth:`image_scheme`; the single-acquisition
    methods below are unaffected."""
    scheme_options: object | None = None
    """Options dataclass/dict for a scheme given by name."""
    cache: "PlanCache | None" = None
    simulator: EchoSimulator | None = None
    transducer: MatrixTransducer | None = None
    grid: FocalGrid | None = None
    provider: DelayProvider | None = None
    """Pre-built delay provider; skips registry construction when given
    (e.g. to share one provider across several per-backend pipelines)."""
    memory_budget_bytes: int | str | None = None
    """Plan-memory budget for every backend this pipeline builds (bytes or
    a suffixed string like ``"8G"``).  Grids whose whole-grid plan would
    exceed it execute tiled (:class:`repro.kernels.TiledPlan`),
    bit-identical to untiled; budgets too small for one scanline are
    rejected at construction.  ``None`` = unbounded (historical
    behaviour)."""
    tracer: object | None = None
    """Optional :class:`repro.observability.Tracer`; spans cover acoustic
    ``simulate``, the runtime backend's ``compile``/``execute`` stages and
    scheme ``compound``.  ``None`` resolves to the process default."""

    def __post_init__(self) -> None:
        from ..kernels import QuantizationSpec
        from ..scenarios.transmit import resolve_scheme
        self.architecture = architecture_name(self.architecture)
        self.precision = resolve_precision(self.precision)
        self.tracer = resolve_tracer(self.tracer)
        self.quantization = QuantizationSpec.coerce(self.quantization)
        self.scheme = resolve_scheme(self.system, self.scheme,
                                     self.scheme_options)
        self._scheme_engine = None
        self._simulator = self.simulator or EchoSimulator.from_config(self.system)
        if self.provider is not None:
            self._provider = self.provider
        else:
            options = self.architecture_options
            if options is None:
                options = legacy_architecture_options(
                    self.architecture, tablefree_config=self.tablefree_config,
                    tablesteer_bits=self.tablesteer_bits)
            self._provider = ARCHITECTURES.create(
                self.architecture, self.system, options=options)
        self._beamformer = DelayAndSumBeamformer(
            self.system, self._provider, apodization=self.apodization,
            interpolation=self.interpolation,
            transducer=self.transducer, grid=self.grid,
            precision=self.precision, quantization=self.quantization)
        self._runtime_backend = None
        if self.backend != "reference":
            # Imported lazily: repro.runtime depends on this module.
            from ..runtime.backends import BACKENDS
            self._runtime_backend = BACKENDS.create(
                self.backend, self._beamformer, self.cache, self.precision,
                options=self.backend_options)
            self._runtime_backend.tracer = self.tracer
            if self.memory_budget_bytes is not None:
                self._runtime_backend.set_memory_budget(
                    self.memory_budget_bytes)
        elif self.memory_budget_bytes is not None:
            # The reference drivers stream one scanline at a time and never
            # compile a plan, so any scanline-feasible budget holds; still
            # validate it (and normalise to an int) so an impossible budget
            # fails here exactly as it does on the plan-based backends.
            from ..kernels.tiling import TilePlanner, parse_memory_budget
            budget = parse_memory_budget(self.memory_budget_bytes)
            TilePlanner.for_beamformer(self._beamformer, budget,
                                       precision=self.precision)
            self.memory_budget_bytes = budget

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the execution backend(s) this pipeline constructed.

        Shuts the ``sharded`` backend's worker pool down and closes the
        lazily built scheme engine's per-firing backends; shared caches are
        untouched.  Idempotent, and the pipeline stays usable (pools
        rebuild lazily).  The pipeline is a context manager::

            with ImagingPipeline(system, backend="sharded") as pipeline:
                pipeline.image_volume(channel_data)
        """
        if self._runtime_backend is not None:
            self._runtime_backend.close()
        if self._scheme_engine is not None:
            self._scheme_engine.close()

    def __enter__(self) -> "ImagingPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def delay_provider(self) -> DelayProvider:
        """The underlying delay generator."""
        return self._provider

    @property
    def beamformer(self) -> DelayAndSumBeamformer:
        """The underlying delay-and-sum beamformer."""
        return self._beamformer

    # -------------------------------------------------------------- acquire
    def acquire(self, phantom: Phantom, noise_std: float = 0.0,
                seed: int = 0) -> ChannelData:
        """Simulate one insonification of ``phantom``."""
        with self.tracer.span("simulate"):
            return self._simulator.simulate(phantom, noise_std=noise_std,
                                            seed=seed)

    # ---------------------------------------------------------- reconstruct
    def image_plane(self, channel_data: ChannelData,
                    i_phi: int | None = None,
                    dynamic_range_db: float | None = None) -> np.ndarray:
        """Reconstruct one (theta, depth) plane and return its envelope.

        With ``dynamic_range_db`` set, the image is additionally
        log-compressed to that range.
        """
        rf = reconstruct_plane(self._beamformer, channel_data, i_phi=i_phi)
        env = envelope(rf, axis=1)
        if dynamic_range_db is None:
            return env
        return log_compress(env, dynamic_range_db)

    def image_volume(self, channel_data: ChannelData,
                     order: str = "nappe") -> BeamformedVolume:
        """Reconstruct the full volume.

        With the default ``reference`` backend the volume is built by the
        classic drivers in the requested traversal ``order``; the batched
        runtime backends reconstruct all scanlines at once (both traversal
        orders yield the identical volume) and tag the volume with the
        backend name instead.
        """
        if order not in ("nappe", "scanline"):
            raise ValueError("order must be 'nappe' or 'scanline'")
        if self._runtime_backend is not None:
            rf = self._runtime_backend.beamform_volume(channel_data)
            return BeamformedVolume(rf=rf, order=self.backend)
        if order == "nappe":
            return reconstruct_nappe_order(self._beamformer, channel_data)
        return reconstruct_scanline_order(self._beamformer, channel_data)

    def image_phantom(self, phantom: Phantom, noise_std: float = 0.0,
                      seed: int = 0, i_phi: int | None = None) -> np.ndarray:
        """One-call convenience: acquire a phantom and image the centre plane."""
        channel_data = self.acquire(phantom, noise_std=noise_std, seed=seed)
        return self.image_plane(channel_data, i_phi=i_phi)

    # ----------------------------------------------------------- schemes
    def _engine(self):
        """The lazy per-firing compounding engine for this pipeline's scheme."""
        if self._scheme_engine is None:
            from ..scenarios.engine import SchemeEngine
            self._scheme_engine = SchemeEngine(
                self._beamformer, self.scheme, backend=self.backend,
                backend_options=self.backend_options, cache=self.cache,
                precision=self.precision, tracer=self.tracer,
                memory_budget_bytes=self.memory_budget_bytes)
        return self._scheme_engine

    def acquire_firings(self, phantom: Phantom, noise_std: float = 0.0,
                        seed: int = 0) -> list[ChannelData]:
        """Simulate every firing of the pipeline's transmit scheme.

        Firing 0 uses ``seed`` directly (the focused baseline is exactly
        one :meth:`acquire` call); later firings seed their noise RNG
        with the ``(seed, i)`` entropy pair — see
        :func:`repro.scenarios.acquire_firings` for why.
        """
        from ..scenarios.engine import acquire_firings
        return acquire_firings(self._simulator, self.scheme, phantom,
                               noise_std=noise_std, seed=seed)

    def compound_volume(self, firings: "list[ChannelData]"
                        ) -> BeamformedVolume:
        """Coherently compound pre-acquired firings into one volume.

        One channel-data frame per scheme event (see
        :meth:`acquire_firings`); each firing is beamformed with its own
        transmit-adjusted delays on this pipeline's backend and the
        per-firing volumes are summed in event order.
        """
        rf = self._engine().beamform_volume(firings)
        return BeamformedVolume(rf=rf, order=self.backend)

    def compound_batch(self, frames: "list[list[ChannelData]]") -> np.ndarray:
        """Compound a cine batch, shape ``(n_frames, n_theta, n_phi, n_depth)``.

        Each firing index is batched across frames in one stacked kernel
        execution; bit-identical to per-frame :meth:`compound_volume`.
        """
        return self._engine().beamform_batch(frames)

    def image_scheme(self, phantom: Phantom, noise_std: float = 0.0,
                     seed: int = 0) -> BeamformedVolume:
        """One-call convenience: acquire all firings and compound them."""
        return self.compound_volume(self.acquire_firings(
            phantom, noise_std=noise_std, seed=seed))


def compare_architectures(system: SystemConfig, phantom: Phantom,
                          architectures: tuple[str, ...] = ("exact", "tablefree",
                                                            "tablesteer"),
                          noise_std: float = 0.0,
                          seed: int = 0) -> dict[str, np.ndarray]:
    """Image the same phantom with several architectures (shared channel data).

    Returns a mapping from architecture name to envelope image of the centre
    elevation plane; the channel data are simulated once so the images differ
    only through the delay generation.

    .. deprecated::
        Delegates to :meth:`repro.api.Session.sweep`, which additionally
        sweeps backends and accepts arbitrary registered architectures;
        call that instead.
    """
    warnings.warn(
        "compare_architectures() is deprecated; use "
        "repro.api.Session(EngineSpec(system=system)).sweep(phantom, "
        "architectures=...) instead",
        DeprecationWarning, stacklevel=2)
    from ..api import EngineSpec, Session  # lazy: repro.api sits above us

    session = Session(EngineSpec(system=system))
    return session.sweep(phantom, architectures=architectures,
                         noise_std=noise_std, seed=seed)
