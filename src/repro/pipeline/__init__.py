"""High-level imaging pipeline and multi-insonification acquisition."""

from .compounding import InsonificationPlan, acquisition_summary, compound_volume
from .imaging import (
    DelayArchitecture,
    ImagingPipeline,
    architecture_name,
    compare_architectures,
    make_delay_provider,
)

__all__ = [
    "DelayArchitecture",
    "ImagingPipeline",
    "architecture_name",
    "make_delay_provider",
    "compare_architectures",
    "InsonificationPlan",
    "compound_volume",
    "acquisition_summary",
]
