"""Transmit schemes: how an acquisition insonifies the imaging volume.

The paper evaluates its delay architectures on the classic focused
acquisition — one spherical wavefront per volume, emitted from the
transducer centre — but Section V explicitly discusses schemes that move
the sound origin between insonifications (synthetic aperture) and the
beamforming literature leans heavily on plane-wave compounding.  Both
stress exactly the datapath the paper optimises: the *transmit* leg of the
two-way delay changes per firing while the receive leg stays fixed.

This module models that axis as first-class objects:

* :class:`TransmitEvent` — one firing: a spherical wavefront from an
  origin (focused / synthetic-aperture / diverging-wave firings) or a
  plane wavefront with a steering direction.  The event knows its
  transmit distance to any field point, which is all the echo simulator
  and the delay layer need.
* :class:`TransmitScheme` — a named, ordered set of events making up one
  volume acquisition (the unit the compounding layer sums over).
* :data:`SCHEMES` — the open registry of scheme factories
  (``focused`` / ``planewave`` / ``synthetic_aperture`` / ``diverging``),
  the acquisition counterpart of
  :data:`repro.architectures.ARCHITECTURES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..config import SystemConfig
from ..geometry.coordinates import spherical_to_cartesian
from ..registry import Registry


class Wavefront(str, Enum):
    """Geometric model of one transmitted wavefront."""

    SPHERICAL = "spherical"
    """Point source at ``origin``: transmit distance is ``|S - origin|``
    (focused, synthetic-aperture and diverging-wave firings)."""

    PLANE = "plane"
    """Plane wave through ``origin`` with unit ``direction``: transmit
    distance is the signed projection ``(S - origin) . direction``."""


@dataclass(frozen=True, eq=False)
class TransmitEvent:
    """One firing of a transmit scheme.

    Equality and hashing go through :meth:`token` (wavefront + origin +
    direction; the cosmetic ``label`` is excluded) — the dataclass
    defaults would raise on the ndarray fields.

    Attributes
    ----------
    wavefront:
        Geometric wavefront model (spherical or plane).
    origin:
        Wavefront origin, shape ``(3,)`` [m] — the point source for
        spherical events, the zero-delay reference point for plane waves.
    direction:
        Unit propagation direction, shape ``(3,)`` (plane waves only;
        spherical events keep the default broadside ``+z``).
    label:
        Human-readable tag used in reports and cache keys.
    """

    wavefront: Wavefront = Wavefront.SPHERICAL
    origin: np.ndarray = field(default_factory=lambda: np.zeros(3))
    direction: np.ndarray = field(
        default_factory=lambda: np.array([0.0, 0.0, 1.0]))
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "wavefront", Wavefront(self.wavefront))
        origin = np.asarray(self.origin, dtype=np.float64).reshape(3)
        direction = np.asarray(self.direction, dtype=np.float64).reshape(3)
        if not np.all(np.isfinite(origin)):
            raise ValueError("transmit origin must be finite")
        norm = float(np.linalg.norm(direction))
        if not np.isfinite(norm) or norm <= 0:
            raise ValueError("transmit direction must be a finite nonzero "
                             "vector")
        object.__setattr__(self, "origin", origin)
        object.__setattr__(self, "direction", direction / norm)

    # ----------------------------------------------------------- factories
    @classmethod
    def focused(cls, origin: np.ndarray | None = None,
                label: str = "focused") -> "TransmitEvent":
        """A spherical firing from ``origin`` (the probe centre by default)."""
        return cls(wavefront=Wavefront.SPHERICAL,
                   origin=np.zeros(3) if origin is None else origin,
                   label=label)

    @classmethod
    def plane_wave(cls, theta: float, phi: float = 0.0,
                   label: str = "") -> "TransmitEvent":
        """A plane wave steered to ``(theta, phi)`` through the probe centre."""
        direction = spherical_to_cartesian(theta, phi, 1.0).reshape(3)
        return cls(wavefront=Wavefront.PLANE, direction=direction,
                   label=label or f"pw({theta:+.3f},{phi:+.3f})")

    # ----------------------------------------------------------- geometry
    def transmit_distance(self, point: np.ndarray) -> float:
        """Transmit path length to one field point [m].

        For spherical events this is arithmetic-identical to the legacy
        per-scatterer expression in :meth:`repro.acoustics.EchoSimulator
        .simulate`, so a focused event reproduces the historical channel
        data bit for bit.
        """
        point = np.asarray(point, dtype=np.float64).reshape(3)
        if self.wavefront is Wavefront.SPHERICAL:
            return float(np.linalg.norm(point - self.origin))
        return float(np.dot(point - self.origin, self.direction))

    def transmit_distances(self, points: np.ndarray) -> np.ndarray:
        """Transmit path lengths for many field points, shape ``(n,)`` [m]."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if self.wavefront is Wavefront.SPHERICAL:
            return np.linalg.norm(points - self.origin[None, :], axis=-1)
        return (points - self.origin[None, :]) @ self.direction

    def transmit_delays_seconds(self, points: np.ndarray,
                                speed_of_sound: float) -> np.ndarray:
        """Transmit delays for many field points, shape ``(n,)`` [s]."""
        return self.transmit_distances(points) / speed_of_sound

    def token(self) -> tuple:
        """Hashable identity used in plan cache keys."""
        return (self.wavefront.value, tuple(self.origin),
                tuple(self.direction))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransmitEvent):
            return NotImplemented
        return self.token() == other.token()

    def __hash__(self) -> int:
        return hash(self.token())

    def is_centred_focused(self) -> bool:
        """True for the paper's baseline firing (spherical at the centre)."""
        return (self.wavefront is Wavefront.SPHERICAL
                and bool(np.all(self.origin == 0.0)))


@dataclass(frozen=True, eq=False)
class TransmitScheme:
    """A named, ordered set of transmit events forming one acquisition.

    The scheme is the unit the compounding layer iterates over: one
    :class:`repro.acoustics.ChannelData` is acquired per event, each firing
    is beamformed with its own transmit-adjusted delays, and the
    per-firing volumes are summed coherently.  Equality and hashing go
    through :meth:`token`.
    """

    name: str
    events: tuple[TransmitEvent, ...]

    def __post_init__(self) -> None:
        events = tuple(self.events)
        if not events:
            raise ValueError("a transmit scheme needs at least one event")
        object.__setattr__(self, "events", events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def firing_count(self) -> int:
        """Number of transmit events (insonifications) per volume."""
        return len(self.events)

    def is_trivial(self) -> bool:
        """True for the single centred focused firing — the legacy path.

        Engines may keep their historical single-acquisition code path for
        trivial schemes; everything else goes through per-event
        compounding.
        """
        return len(self.events) == 1 and self.events[0].is_centred_focused()

    def token(self) -> tuple:
        """Hashable identity of the whole scheme."""
        return (self.name, tuple(event.token() for event in self.events))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransmitScheme):
            return NotImplemented
        return self.token() == other.token()

    def __hash__(self) -> int:
        return hash(self.token())

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"{self.name} ({self.firing_count} firing" \
               f"{'s' if self.firing_count != 1 else ''})"


# ------------------------------------------------------------------ registry
SCHEMES = Registry("scheme")
"""Registry of transmit schemes (factory: ``(system, options)``)."""


@dataclass(frozen=True)
class FocusedOptions:
    """Options for the ``focused`` scheme."""

    origin: tuple[float, float, float] = (0.0, 0.0, 0.0)
    """Transmit origin [m]; the default is the paper's probe centre."""


@dataclass(frozen=True)
class PlaneWaveOptions:
    """Options for the ``planewave`` scheme."""

    n_angles: int = 5
    """Number of steered plane waves compounded per volume."""

    max_angle_fraction: float = 0.5
    """Steering span as a fraction of the volume's ``theta_max``."""

    elevation_fraction: float = 0.0
    """Fixed elevation steering as a fraction of ``phi_max``."""


@dataclass(frozen=True)
class SyntheticApertureOptions:
    """Options for the ``synthetic_aperture`` scheme."""

    every: int = 4
    """Element stride: one spherical firing per ``every``-th element."""


@dataclass(frozen=True)
class DivergingOptions:
    """Options for the ``diverging`` scheme."""

    count: int = 4
    """Number of virtual sources spread across the aperture."""

    standoff_wavelengths: float = 16.0
    """Stand-off of the virtual sources behind the probe [wavelengths]."""


@SCHEMES.register(
    "focused", options=FocusedOptions,
    description="single spherical transmit (the paper's baseline)")
def _build_focused(system: SystemConfig,
                   options: FocusedOptions) -> TransmitScheme:
    event = TransmitEvent.focused(origin=np.asarray(options.origin,
                                                    dtype=np.float64))
    return TransmitScheme(name="focused", events=(event,))


@SCHEMES.register(
    "planewave", options=PlaneWaveOptions,
    description="steered plane waves, coherently compounded")
def _build_planewave(system: SystemConfig,
                     options: PlaneWaveOptions) -> TransmitScheme:
    if options.n_angles < 1:
        raise ValueError("planewave scheme needs at least one angle")
    span = options.max_angle_fraction * system.volume.theta_max
    phi = options.elevation_fraction * system.volume.phi_max
    if options.n_angles == 1:
        thetas = np.array([0.0])
    else:
        thetas = np.linspace(-span, span, options.n_angles)
    events = tuple(TransmitEvent.plane_wave(float(theta), phi)
                   for theta in thetas)
    return TransmitScheme(name="planewave", events=events)


@SCHEMES.register(
    "synthetic_aperture", options=SyntheticApertureOptions,
    description="per-element spherical firings (decimated), compounded")
def _build_synthetic_aperture(system: SystemConfig,
                              options: SyntheticApertureOptions
                              ) -> TransmitScheme:
    if options.every < 1:
        raise ValueError("synthetic_aperture element stride must be >= 1")
    from ..geometry.transducer import MatrixTransducer
    positions = MatrixTransducer.from_config(system).positions[::options.every]
    events = tuple(
        TransmitEvent(wavefront=Wavefront.SPHERICAL, origin=position,
                      label=f"sa[{i}]")
        for i, position in enumerate(positions))
    return TransmitScheme(name="synthetic_aperture", events=events)


@SCHEMES.register(
    "diverging", options=DivergingOptions,
    description="virtual sources behind the probe (diverging waves)")
def _build_diverging(system: SystemConfig,
                     options: DivergingOptions) -> TransmitScheme:
    from ..core.multi_origin import OriginSchedule
    schedule = OriginSchedule.virtual_sources_behind_probe(
        system, count=options.count,
        standoff_wavelengths=options.standoff_wavelengths)
    events = tuple(
        TransmitEvent(wavefront=Wavefront.SPHERICAL, origin=origin,
                      label=f"vs[{i}]")
        for i, origin in enumerate(schedule.origins))
    return TransmitScheme(name="diverging", events=events)


def resolve_scheme(system: SystemConfig,
                   scheme: TransmitScheme | str | None = None,
                   options: object | None = None) -> TransmitScheme:
    """Coerce a scheme selector into a :class:`TransmitScheme`.

    ``None`` resolves to the registered ``focused`` default; strings go
    through :data:`SCHEMES`; pre-built instances pass through unchanged
    (``options`` must then be ``None``).
    """
    if isinstance(scheme, TransmitScheme):
        if options is not None:
            raise ValueError("options cannot be combined with a pre-built "
                             "TransmitScheme")
        return scheme
    return SCHEMES.create(scheme or "focused", system, options=options)
