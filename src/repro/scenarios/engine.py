"""Per-firing execution engines and coherent compounding for a scheme.

A :class:`SchemeEngine` turns one configured
:class:`repro.beamformer.das.DelayAndSumBeamformer` plus a
:class:`repro.scenarios.TransmitScheme` into a bank of per-firing
execution backends: each transmit event gets a
:class:`repro.scenarios.delays.TransmitAdjustedProvider` (the
architecture's delays with the transmit leg swapped), its own beamformer
sharing the transducer/grid/apodization/precision/quantisation of the
base, and an execution backend resolved through
:data:`repro.runtime.backends.BACKENDS` — so every scheme runs on every
backend, per frame or batched, without new kernel code.

Compounding is a plain ordered sum of per-firing volumes.  The summation
order is the event order of the scheme in both the per-frame and the
batched path, so the compounded volume is bit-identical across backends
and batching whenever the per-firing volumes are (which the kernel layer
pins at ``float64``).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..acoustics.echo import ChannelData, EchoSimulator
from ..acoustics.phantom import Phantom
from ..beamformer.das import DelayAndSumBeamformer
from ..observability.tracing import resolve_tracer
from ..runtime.backends import BACKENDS
from .delays import TransmitAdjustedProvider
from .transmit import TransmitScheme


def acquire_firings(simulator: EchoSimulator, scheme: TransmitScheme,
                    phantom: Phantom, noise_std: float = 0.0,
                    seed: int = 0) -> list[ChannelData]:
    """Simulate one frame of ``phantom`` under every firing of ``scheme``.

    Firing 0 uses ``seed`` directly, so the trivial focused scheme
    reproduces :meth:`EchoSimulator.simulate` bit for bit (noise
    included).  Later firings seed their RNG with the ``(seed, index)``
    entropy pair — **not** ``seed + index``, which would collide with the
    consecutive per-frame seeds the cine scenarios hand out and inject
    bit-identical noise into adjacent frames.
    """
    return [simulator.simulate_event(phantom, event, noise_std=noise_std,
                                     seed=seed if index == 0
                                     else (seed, index))
            for index, event in enumerate(scheme.events)]


class SchemeEngine:
    """Bank of per-firing backends + coherent compounding for one scheme.

    Parameters
    ----------
    beamformer:
        The configured base beamformer; its delay provider, apodization,
        interpolation, precision and quantisation are shared by every
        per-firing engine.
    scheme:
        The transmit scheme; one execution backend is built per event.
    backend:
        Registered execution-backend name (``reference`` included — the
        conformance matrix runs every scheme on every backend).
    cache:
        Optional shared :class:`repro.runtime.cache.PlanCache`; per-firing
        plans have distinct keys (the firing is part of the provider
        design), so a shared cache never mixes firings.
    tracer:
        Optional :class:`repro.observability.Tracer`, shared with every
        per-firing backend; compounding opens a ``compound`` span whose
        children are the per-firing ``compile``/``execute`` spans.
        ``None`` resolves to the process default (normally a no-op).
    memory_budget_bytes:
        Optional plan-memory budget applied to every per-firing backend
        (see :meth:`repro.runtime.backends.ExecutionBackend.set_memory_budget`);
        a shared cache is byte-bounded once and the per-firing segment
        plans stream through it.
    """

    def __init__(self, beamformer: DelayAndSumBeamformer,
                 scheme: TransmitScheme, backend: str = "vectorized",
                 backend_options: Any = None, cache: Any = None,
                 precision: Any = None, tracer: Any = None,
                 memory_budget_bytes: int | str | None = None) -> None:
        self.beamformer = beamformer
        self.scheme = scheme
        self.backend_name = backend
        self.tracer = resolve_tracer(tracer)
        if cache is not None and hasattr(cache, "reserve"):
            # One plan slot per firing, or a smaller shared cache would
            # evict and recompile the whole event bank every frame.
            cache.reserve(scheme.firing_count)
        self.backends = []
        for event in scheme.events:
            provider = TransmitAdjustedProvider.from_provider(
                beamformer.delays, event, beamformer.system,
                grid=beamformer.grid)
            event_beamformer = DelayAndSumBeamformer(
                beamformer.system, provider,
                apodization=beamformer.apodization,
                interpolation=beamformer.interpolation,
                transducer=beamformer.transducer, grid=beamformer.grid,
                precision=beamformer.precision,
                quantization=beamformer.quantization)
            event_backend = BACKENDS.create(
                backend, event_beamformer, cache, precision,
                options=backend_options)
            event_backend.tracer = self.tracer
            if memory_budget_bytes is not None:
                event_backend.set_memory_budget(memory_budget_bytes)
            self.backends.append(event_backend)

    @property
    def firing_count(self) -> int:
        """Number of transmit events (channel-data frames per volume)."""
        return self.scheme.firing_count

    # ------------------------------------------------------------ acquire
    def acquire(self, simulator: EchoSimulator, phantom: Phantom,
                noise_std: float = 0.0, seed: int = 0) -> list[ChannelData]:
        """Simulate the scheme's firings for one frame (see
        :func:`acquire_firings`)."""
        return acquire_firings(simulator, self.scheme, phantom,
                               noise_std=noise_std, seed=seed)

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close every per-firing backend (idempotent).

        Frees the ``sharded`` backends' worker pools; the facades that
        build a :class:`SchemeEngine` (service, pipeline) forward their
        own ``close()`` here so a multi-firing engine never leaks one pool
        per transmit event.
        """
        for backend in self.backends:
            backend.close()

    def __enter__(self) -> "SchemeEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_firings(self, firings: Sequence[ChannelData]) -> None:
        if len(firings) != self.firing_count:
            raise ValueError(
                f"scheme {self.scheme.name!r} expects "
                f"{self.firing_count} firing(s) per frame, got "
                f"{len(firings)}")

    # ------------------------------------------------------------ execute
    def beamform_volume(self, firings: Sequence[ChannelData]) -> np.ndarray:
        """Coherently compound one frame's firings into an RF volume."""
        self._check_firings(firings)
        volume = None
        with self.tracer.span("compound", firings=self.firing_count):
            for backend, firing in zip(self.backends, firings):
                contribution = backend.beamform_volume(firing)
                volume = contribution if volume is None \
                    else volume + contribution
        return volume

    def beamform_batch(self, frames: Sequence[Sequence[ChannelData]]
                       ) -> np.ndarray:
        """Compound a cine batch, shape ``(n_frames, n_theta, n_phi, n_depth)``.

        Each firing index is batched across frames on its own backend
        (one stacked gather per event), then the per-event batches are
        summed in event order — the same per-voxel addition order as
        :meth:`beamform_volume`, so batching never changes the bits.
        """
        if len(frames) == 0:
            grid_shape = self.beamformer.grid.shape
            return np.empty((0, *grid_shape),
                            dtype=self.beamformer.precision.dtype)
        for firings in frames:
            self._check_firings(firings)
        volumes = None
        with self.tracer.span("compound", firings=self.firing_count,
                              frames=len(frames)):
            for index, backend in enumerate(self.backends):
                contribution = backend.beamform_batch(
                    [firings[index] for firings in frames])
                volumes = contribution if volumes is None \
                    else volumes + contribution
        return volumes
