"""Per-run image-quality scoring for registered scan scenarios.

Every cell of a scenario x scheme x architecture sweep produces an RF
volume; this module turns it into a small, fixed dictionary of figures of
merit — FWHM (axial/lateral), CNR, gCNR and region contrast — so
experiments E10/E11 and :meth:`repro.api.Session.sweep` can compare image
quality across the grid with one uniform schema.

Scorers are registered per scenario name in :data:`SCORERS` (point-like
scenarios measure the PSF, cyst-like scenarios measure contrast inside
vs around their registered region); unknown scenarios fall back to the
point scorer.  Keys absent from a scorer's result are filled with NaN, so
:func:`score_volume` always returns every key in :data:`SCORE_KEYS`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from ..beamformer.image import (
    contrast_ratio_db,
    contrast_to_noise_ratio,
    envelope,
    generalized_cnr,
    point_spread_metrics,
)
from ..config import SystemConfig
from ..geometry.volume import FocalGrid

SCORE_KEYS: tuple[str, ...] = ("fwhm_axial", "fwhm_lateral", "cnr", "gcnr",
                               "contrast_db", "peak_value")
"""Every key :func:`score_volume` reports (missing figures become NaN)."""

Scorer = Callable[[SystemConfig, np.ndarray, Any], Dict[str, float]]

SCORERS: dict[str, Scorer] = {}
"""Scenario name -> scorer; extend alongside ``SCENARIOS`` registrations."""


def register_scorer(*names: str) -> Callable[[Scorer], Scorer]:
    """Decorator attaching a scorer to one or more scenario names."""
    def decorator(scorer: Scorer) -> Scorer:
        for name in names:
            SCORERS[name] = scorer
        return scorer
    return decorator


def center_plane_envelope(volume: np.ndarray) -> np.ndarray:
    """Envelope of the centre-elevation ``(theta, depth)`` plane."""
    volume = np.asarray(volume, dtype=np.float64)
    if volume.ndim != 3:
        raise ValueError("expected an RF volume of shape "
                         "(n_theta, n_phi, n_depth)")
    return envelope(volume[:, volume.shape[1] // 2, :], axis=1)


def plane_region_masks(grid: FocalGrid, center_depth: float, radius: float,
                       center_theta: float = 0.0
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Inside/ring masks of a spherical region on the centre plane.

    Absolute units [m]; the single definition of the cyst-region geometry
    (:func:`repro.analysis.image_quality.cyst_contrast_study` and the
    scoring hook share it).  The ring spans 1.5-3x the region radius —
    far enough out to be clean background, close enough to share
    depth-dependent gain; ``inside`` keeps a 0.8x margin off the rim.
    """
    thetas = grid.thetas[:, None]
    depths = grid.depths[None, :]
    x = depths * np.sin(thetas)
    z = depths * np.cos(thetas)
    cx = center_depth * np.sin(center_theta)
    cz = center_depth * np.cos(center_theta)
    distance = np.sqrt((x - cx) ** 2 + (z - cz) ** 2)
    inside = distance < 0.8 * radius
    ring = (distance > 1.5 * radius) & (distance < 3.0 * radius)
    return inside, ring


def region_masks(system: SystemConfig, depth_fraction: float,
                 radius_fraction: float, theta_fraction: float = 0.0
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Fractional-coordinate wrapper of :func:`plane_region_masks`."""
    volume = system.volume
    return plane_region_masks(
        FocalGrid.from_config(system),
        center_depth=volume.depth_min + depth_fraction * volume.depth_span,
        radius=radius_fraction * volume.depth_span,
        center_theta=theta_fraction * volume.theta_max)


@register_scorer("static_point", "moving_point", "wire_grid",
                 "moving_scatterers")
def score_point_volume(system: SystemConfig, volume: np.ndarray,
                       options: Any = None) -> dict[str, float]:
    """PSF figures of merit: FWHM along depth (axial) and azimuth (lateral)."""
    image = center_plane_envelope(volume)
    peak_theta, peak_depth = np.unravel_index(np.argmax(image), image.shape)
    axial = point_spread_metrics(image[peak_theta, :])
    lateral = point_spread_metrics(image[:, peak_depth])
    return {
        "fwhm_axial": axial.fwhm_samples,
        "fwhm_lateral": lateral.fwhm_samples,
        "peak_value": float(np.max(image)),
    }


@register_scorer("cyst", "multi_cyst")
def score_contrast_volume(system: SystemConfig, volume: np.ndarray,
                          options: Any = None) -> dict[str, float]:
    """Contrast figures of merit of the scenario's (first) anechoic region."""
    contrasts = getattr(options, "contrasts", None)
    radius_fraction = getattr(options, "radius_fraction", 0.12)
    if contrasts is not None:
        # multi_cyst spreads its regions in depth; score the first one,
        # at the position (and overlap-clamped radius) the phantom
        # builder actually used.
        from ..acoustics.phantom import multi_cyst_layout
        depth_fractions, radius_fraction = multi_cyst_layout(
            len(contrasts), radius_fraction)
        depth_fraction = float(depth_fractions[0])
    else:
        depth_fraction = getattr(options, "depth_fraction", 0.55)
    inside, ring = region_masks(system, depth_fraction, radius_fraction)
    image = center_plane_envelope(volume)
    if not inside.any() or not ring.any():
        return {"peak_value": float(np.max(image))}
    return {
        "cnr": contrast_to_noise_ratio(image[inside], image[ring]),
        "gcnr": generalized_cnr(image[inside], image[ring]),
        "contrast_db": contrast_ratio_db(image, inside, ring),
        "peak_value": float(np.max(image)),
    }


@register_scorer("speckle")
def score_speckle_volume(system: SystemConfig, volume: np.ndarray,
                         options: Any = None) -> dict[str, float]:
    """Speckle has no target: report only the envelope peak."""
    image = center_plane_envelope(volume)
    return {"peak_value": float(np.max(image))}


def score_volume(system: SystemConfig, volume: np.ndarray,
                 scenario: str | None = None,
                 options: Any = None) -> dict[str, float]:
    """Score one beamformed RF volume for one scenario.

    Dispatches to the scorer registered for ``scenario`` (the point scorer
    when unknown) and pads the result so every :data:`SCORE_KEYS` entry is
    present — NaN marks figures the scenario does not define.  With
    ``options`` omitted, a registered scenario is scored with its
    registered default options, so the measured region always matches the
    phantom the scenario actually built.
    """
    if options is None and scenario:
        from .scan import SCENARIOS
        if scenario in SCENARIOS:
            options = SCENARIOS.get(scenario).make_options(None)
    scorer = SCORERS.get(scenario or "", score_point_volume)
    scores = scorer(system, volume, options)
    return {key: float(scores.get(key, float("nan"))) for key in SCORE_KEYS}
