"""Transmit/receive delay split over any registered delay architecture.

Every delay provider in :mod:`repro.core` produces the *two-way* delay for
its canonical transmit origin: ``t(S, D) = (tx(S) + rx(S, D)) / c`` with
``tx(S) = |S - origin|``.  A different transmit scheme changes only the
transmit leg, so instead of teaching every architecture about plane waves
and per-element firings, :class:`TransmitAdjustedProvider` rewrites the
transmit term on top of the architecture's output::

    delays'(S, D) = delays(S, D) - tx_canonical(S) + tx_event(S)

The correction is exact float64 geometry applied identically to every
architecture and backend, so the paper's accuracy story is untouched: the
architecture still owns the (approximate) two-way generation, the scheme
owns the exact transmit swap.  For the canonical focused event the
correction is *exactly zero* (the two transmit terms are the same
arithmetic), making the wrapped provider bit-identical to its base — the
property the delay-split conformance tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..config import SystemConfig
from ..geometry.volume import FocalGrid
from .transmit import TransmitEvent


@dataclass(frozen=True, eq=False)
class TransmitAdjustedProvider:
    """A delay provider with its transmit leg swapped for a scheme event.

    Satisfies the full :class:`repro.beamformer.das.DelayProvider`
    protocol, so it drops into the classic per-scanline path, plan
    compilation and every runtime backend unchanged.  Identity equality
    (``eq=False``), like the architecture providers it wraps; plan-level
    identity lives in :attr:`design`.
    """

    base: Any
    """The wrapped architecture provider (two-way delays, canonical origin)."""

    event: TransmitEvent
    """The firing whose transmit leg replaces the canonical one."""

    system: SystemConfig
    grid: FocalGrid
    reference: TransmitEvent = field(default=None)  # type: ignore[assignment]
    """Canonical transmit of ``base`` (spherical at its origin); defaults to
    the base provider's ``origin`` attribute (the probe centre when absent)."""

    @classmethod
    def from_provider(cls, base: Any, event: TransmitEvent,
                      system: SystemConfig,
                      grid: FocalGrid | None = None
                      ) -> "TransmitAdjustedProvider":
        """Wrap ``base`` for ``event`` (grid defaults to the system's)."""
        return cls(base=base, event=event, system=system,
                   grid=grid or FocalGrid.from_config(system))

    def __post_init__(self) -> None:
        if self.reference is None:
            origin = getattr(self.base, "origin", None)
            reference = TransmitEvent.focused(
                origin=None if origin is None else origin,
                label="canonical")
            object.__setattr__(self, "reference", reference)

    # ------------------------------------------------------- plan identity
    @property
    def origin(self) -> np.ndarray:
        """The event origin (read by :func:`repro.kernels.plan_key`)."""
        return self.event.origin

    @property
    def design(self) -> tuple:
        """Composite design identity: base architecture design + event.

        Feeds :func:`repro.kernels.plan_key` so plans compiled for two
        different firings (or a firing vs the bare architecture) can never
        be served from the same cache slot.
        """
        return (type(self.base).__name__,
                repr(getattr(self.base, "design", None)),
                self.event.token(), self.reference.token())

    # ----------------------------------------------------------- correction
    def transmit_correction_samples(self, points: np.ndarray) -> np.ndarray:
        """Per-point transmit swap, in fractional samples, shape ``(n,)``.

        Exactly zero when the event equals the canonical transmit: both
        terms are then the same function of the same inputs.
        """
        acoustic = self.system.acoustic
        delta = (self.event.transmit_distances(points)
                 - self.reference.transmit_distances(points))
        return (delta / acoustic.speed_of_sound) * acoustic.sampling_frequency

    # ------------------------------------------------------ DelayProvider
    def delays_samples(self, points: np.ndarray) -> np.ndarray:
        """Delays in fractional samples, shape ``(n_points, n_elements)``."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        base = self.base.delays_samples(points)
        return base + self.transmit_correction_samples(points)[:, None]

    def scanline_delays_samples(self, i_theta: int, i_phi: int) -> np.ndarray:
        """Delays for a grid scanline, shape ``(n_depth, n_elements)``."""
        base = self.base.scanline_delays_samples(i_theta, i_phi)
        points = self.grid.scanline_points(i_theta, i_phi)
        return base + self.transmit_correction_samples(points)[:, None]

    def nappe_delays_samples(self, i_depth: int) -> np.ndarray:
        """Delays for a grid nappe, shape ``(n_theta, n_phi, n_elements)``."""
        base = self.base.nappe_delays_samples(i_depth)
        points = self.grid.nappe_points(i_depth)
        correction = self.transmit_correction_samples(points.reshape(-1, 3))
        return base + correction.reshape(points.shape[:-1])[..., None]

    def volume_delays_samples(self) -> np.ndarray:
        """Delays for the whole grid, ``(n_theta, n_phi, n_depth, n_elements)``."""
        base = np.asarray(self.base.volume_delays_samples())
        points = self.grid.all_points()
        correction = self.transmit_correction_samples(points.reshape(-1, 3))
        return base + correction.reshape(points.shape[:-1])[..., None]
