"""Registered cine scan scenarios: what the runtime images, frame by frame.

The :data:`SCENARIOS` registry maps a public name to a factory
``(system, scan, options) -> list[FrameRequest]`` (``scan`` is the
:class:`repro.api.ScanSpec` — duck-typed here to keep this package below
:mod:`repro.api` — supplying ``frames`` / ``noise_std`` / ``seed``).  The
original three entries (``moving_point`` / ``static_point`` / ``speckle``)
moved here from :mod:`repro.api.specs`; the richer imaging targets
(anechoic cyst, wire grid, multi-cyst contrast phantom, drifting
scatterer cloud) give the transmit schemes and the quantized kernels
realistic images to be judged on via the scoring hook in
:mod:`repro.scenarios.scoring`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..acoustics.phantom import (
    Phantom,
    cyst_phantom,
    multi_cyst_phantom,
    point_grid,
    point_target,
    speckle_phantom,
)
from ..config import SystemConfig
from ..geometry.coordinates import spherical_to_cartesian
from ..geometry.volume import FocalGrid
from ..registry import Registry
from ..runtime.scheduler import FrameRequest, moving_point_cine

SCENARIOS = Registry("scenario")
"""Registry of cine scan scenarios (factory: ``(system, scan, options)``)."""


# ------------------------------------------------------------------ options
@dataclass(frozen=True)
class MovingPointOptions:
    """Options for the ``moving_point`` scenario."""

    depth_fractions: tuple[float, float] = (0.35, 0.65)
    """Start/end depth as fractions of the imaging range."""

    theta_fraction: float = 0.0
    """Azimuth steering of the scanline the target drifts along."""


@dataclass(frozen=True)
class StaticPointOptions:
    """Options for the ``static_point`` scenario."""

    depth_fraction: float = 0.5
    """Target depth as a fraction of the imaging range (grid-snapped)."""

    theta_fraction: float = 0.0
    """Azimuth steering as a fraction of ``theta_max`` (grid-snapped)."""


@dataclass(frozen=True)
class SpeckleOptions:
    """Options for the ``speckle`` scenario."""

    n_scatterers: int = 2000
    """Number of diffuse scatterers filling the volume."""


@dataclass(frozen=True)
class CystOptions:
    """Options for the ``cyst`` scenario."""

    n_scatterers: int = 1500
    """Speckle scatterers in the background."""

    depth_fraction: float = 0.55
    """Cyst depth as a fraction of the imaging range."""

    radius_fraction: float = 0.12
    """Cyst radius as a fraction of the imaging range."""


@dataclass(frozen=True)
class WireGridOptions:
    """Options for the ``wire_grid`` scenario."""

    n_depths: int = 3
    """Number of wire depths across the imaging range."""

    n_thetas: int = 3
    """Number of wire azimuth positions (centred, including broadside)."""


@dataclass(frozen=True)
class MultiCystOptions:
    """Options for the ``multi_cyst`` scenario."""

    n_scatterers: int = 2000
    """Speckle scatterers in the background."""

    contrasts: tuple[float, ...] = (0.0, 0.25, 4.0)
    """Amplitude scale of each contrast region (0 = anechoic)."""

    radius_fraction: float = 0.06
    """Region radius as a fraction of the imaging range (clamped by
    :func:`repro.acoustics.phantom.multi_cyst_layout` so regions never
    overlap)."""


@dataclass(frozen=True)
class MovingScatterersOptions:
    """Options for the ``moving_scatterers`` scenario."""

    n_scatterers: int = 12
    """Size of the drifting scatterer cloud."""

    drift_fraction: float = 0.2
    """Total axial drift over the cine, as a fraction of the range."""


# ---------------------------------------------------------------- factories
@SCENARIOS.register(
    "moving_point", options=MovingPointOptions,
    description="point scatterer drifting in depth across the cine")
def _build_moving_point(system: SystemConfig, scan,
                        options: MovingPointOptions) -> list[FrameRequest]:
    base = moving_point_cine(system, n_frames=scan.frames,
                             depth_fractions=tuple(options.depth_fractions),
                             theta_fraction=options.theta_fraction)
    return [replace(request, noise_std=scan.noise_std,
                    seed=request.seed + scan.seed)
            for request in base]


@SCENARIOS.register(
    "static_point", options=StaticPointOptions,
    description="the same grid-snapped point target replayed every frame")
def _build_static_point(system: SystemConfig, scan,
                        options: StaticPointOptions) -> list[FrameRequest]:
    volume = system.volume
    grid = FocalGrid.from_config(system)
    requested = volume.depth_min + options.depth_fraction * volume.depth_span
    depth = float(grid.depths[np.argmin(np.abs(grid.depths - requested))])
    theta = float(grid.thetas[np.argmin(
        np.abs(grid.thetas - options.theta_fraction * volume.theta_max))])
    phantom = point_target(depth=depth, theta=theta)
    return [FrameRequest(frame_id=i, phantom=phantom,
                         noise_std=scan.noise_std, seed=scan.seed)
            for i in range(scan.frames)]


@SCENARIOS.register(
    "speckle", options=SpeckleOptions,
    description="diffuse speckle phantom, per-frame noise realisations")
def _build_speckle(system: SystemConfig, scan,
                   options: SpeckleOptions) -> list[FrameRequest]:
    phantom = speckle_phantom(system, n_scatterers=options.n_scatterers,
                              seed=scan.seed)
    return [FrameRequest(frame_id=i, phantom=phantom,
                         noise_std=scan.noise_std, seed=scan.seed + i)
            for i in range(scan.frames)]


@SCENARIOS.register(
    "cyst", options=CystOptions,
    description="anechoic cyst in speckle (contrast/CNR/gCNR target)")
def _build_cyst(system: SystemConfig, scan,
                options: CystOptions) -> list[FrameRequest]:
    volume = system.volume
    phantom = cyst_phantom(
        system,
        cyst_depth=volume.depth_min + options.depth_fraction
        * volume.depth_span,
        cyst_radius=options.radius_fraction * volume.depth_span,
        n_scatterers=options.n_scatterers, seed=scan.seed + 99)
    return [FrameRequest(frame_id=i, phantom=phantom,
                         noise_std=scan.noise_std, seed=scan.seed + i)
            for i in range(scan.frames)]


@SCENARIOS.register(
    "wire_grid", options=WireGridOptions,
    description="grid of wire targets in one plane (resolution target)")
def _build_wire_grid(system: SystemConfig, scan,
                     options: WireGridOptions) -> list[FrameRequest]:
    volume = system.volume
    depths = np.linspace(volume.depth_min + 0.15 * volume.depth_span,
                         volume.depth_max - 0.15 * volume.depth_span,
                         options.n_depths)
    thetas = (np.linspace(-0.6, 0.6, options.n_thetas) * volume.theta_max
              if options.n_thetas > 1 else np.array([0.0]))
    phantom = point_grid(system, depths=depths, thetas=thetas,
                         phis=np.array([0.0]))
    return [FrameRequest(frame_id=i, phantom=phantom,
                         noise_std=scan.noise_std, seed=scan.seed + i)
            for i in range(scan.frames)]


@SCENARIOS.register(
    "multi_cyst", options=MultiCystOptions,
    description="speckle with anechoic/hypo/hyperechoic contrast regions")
def _build_multi_cyst(system: SystemConfig, scan,
                      options: MultiCystOptions) -> list[FrameRequest]:
    phantom = multi_cyst_phantom(
        system, contrasts=tuple(options.contrasts),
        radius_fraction=options.radius_fraction,
        n_scatterers=options.n_scatterers, seed=scan.seed + 7)
    return [FrameRequest(frame_id=i, phantom=phantom,
                         noise_std=scan.noise_std, seed=scan.seed + i)
            for i in range(scan.frames)]


@SCENARIOS.register(
    "moving_scatterers", options=MovingScatterersOptions,
    description="scatterer cloud drifting in depth (streaming sequence)")
def _build_moving_scatterers(system: SystemConfig, scan,
                             options: MovingScatterersOptions
                             ) -> list[FrameRequest]:
    volume = system.volume
    rng = np.random.default_rng(scan.seed + 2024)
    thetas = rng.uniform(-0.5 * volume.theta_max, 0.5 * volume.theta_max,
                         options.n_scatterers)
    phis = rng.uniform(-0.5 * volume.phi_max, 0.5 * volume.phi_max,
                       options.n_scatterers)
    depths = rng.uniform(volume.depth_min + 0.2 * volume.depth_span,
                         volume.depth_min + 0.6 * volume.depth_span,
                         options.n_scatterers)
    amplitudes = np.abs(rng.normal(1.0, 0.25, options.n_scatterers))
    drift = options.drift_fraction * volume.depth_span
    requests = []
    for i in range(scan.frames):
        fraction = i / (scan.frames - 1) if scan.frames > 1 else 0.0
        positions = spherical_to_cartesian(thetas, phis,
                                           depths + fraction * drift)
        phantom = Phantom(positions=positions, amplitudes=amplitudes,
                          name=f"moving_scatterers[{i}]")
        requests.append(FrameRequest(frame_id=i, phantom=phantom,
                                     noise_std=scan.noise_std,
                                     seed=scan.seed + i))
    return requests
