"""repro.scenarios: acquisition schemes, scan scenarios and scoring.

The scenario subsystem answers three questions the lower layers leave
open — *how is the medium insonified* (:mod:`repro.scenarios.transmit`:
:class:`TransmitScheme` / :data:`SCHEMES`), *what is imaged*
(:mod:`repro.scenarios.scan`: :data:`SCENARIOS` cine builders) and *how
good is the result* (:mod:`repro.scenarios.scoring`: FWHM/CNR/gCNR per
run).  The glue is the transmit/receive delay split
(:class:`repro.scenarios.delays.TransmitAdjustedProvider`) and the
per-firing compounding engine (:class:`repro.scenarios.engine
.SchemeEngine`), which run every scheme through every registered delay
architecture and execution backend with no new kernel code.

Layering: this package sits above :mod:`repro.runtime` and below
:mod:`repro.api` (which re-exports the registries); the pipeline and the
streaming service import it lazily.
"""

from .delays import TransmitAdjustedProvider
from .engine import SchemeEngine, acquire_firings
from .scan import (
    SCENARIOS,
    CystOptions,
    MovingPointOptions,
    MovingScatterersOptions,
    MultiCystOptions,
    SpeckleOptions,
    StaticPointOptions,
    WireGridOptions,
)
from .scoring import SCORE_KEYS, SCORERS, register_scorer, score_volume
from .transmit import (
    SCHEMES,
    DivergingOptions,
    FocusedOptions,
    PlaneWaveOptions,
    SyntheticApertureOptions,
    TransmitEvent,
    TransmitScheme,
    Wavefront,
    resolve_scheme,
)

__all__ = [
    "SCENARIOS",
    "SCHEMES",
    "SCORE_KEYS",
    "SCORERS",
    "CystOptions",
    "DivergingOptions",
    "FocusedOptions",
    "MovingPointOptions",
    "MovingScatterersOptions",
    "MultiCystOptions",
    "PlaneWaveOptions",
    "SchemeEngine",
    "SpeckleOptions",
    "StaticPointOptions",
    "SyntheticApertureOptions",
    "TransmitAdjustedProvider",
    "TransmitEvent",
    "TransmitScheme",
    "Wavefront",
    "WireGridOptions",
    "acquire_firings",
    "register_scorer",
    "resolve_scheme",
    "score_volume",
]
