"""Command-line interface for running the paper experiments.

Usage::

    python -m repro.cli list                 # list available experiments
    python -m repro.cli run E3               # run one experiment
    python -m repro.cli run all              # run every experiment
    python -m repro.cli table2               # print the Table II comparison
    python -m repro.cli specs                # print the Table I system spec
    python -m repro.cli stream               # stream a cine through the runtime

Each experiment prints measured figures next to the values reported in the
paper (see EXPERIMENTS.md for the recorded comparison).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .config import paper_system, small_system, tiny_system
from .experiments import ALL_EXPERIMENTS

_SYSTEM_PRESETS = {
    "paper": paper_system,
    "small": small_system,
    "tiny": tiny_system,
}

_EXPERIMENT_TITLES = {
    "E1": "Delay-table requirements (Section II-B/II-C)",
    "E2": "Traversal orders (Algorithm 1 / Fig. 1)",
    "E3": "Piecewise-linear square root (Fig. 2)",
    "E4": "TABLEFREE accuracy (Section VI-A)",
    "E5": "TABLESTEER steering accuracy (Section V-A / VI-A, Fig. 3)",
    "E6": "Fixed-point impact (Section VI-A)",
    "E7": "Storage and streaming bandwidth (Section V-B)",
    "E8": "Table II comparison",
    "E9": "Throughput (Section II-C / V-B, Fig. 4)",
    "E10": "End-to-end imaging comparison",
    "E11": "Streaming runtime throughput (backends + delay cache)",
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Available experiments:")
    for key in sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:])):
        print(f"  {key:4s} {_EXPERIMENT_TITLES.get(key, '')}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    requested = args.experiment.upper()
    if requested == "ALL":
        keys = sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:]))
    elif requested in ALL_EXPERIMENTS:
        keys = [requested]
    else:
        print(f"unknown experiment {args.experiment!r}; "
              f"use 'list' to see the available ones", file=sys.stderr)
        return 2
    for key in keys:
        module = ALL_EXPERIMENTS[key]
        print("=" * 72)
        print(f"{key}: {_EXPERIMENT_TITLES.get(key, '')}")
        print("=" * 72)
        start = time.perf_counter()
        module.main()
        elapsed = time.perf_counter() - start
        print(f"[{key} finished in {elapsed:.1f} s]")
        print()
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .experiments import e08_table2
    system = _SYSTEM_PRESETS[args.system]()
    result = e08_table2.run(system)
    print(result["formatted"])
    return 0


def _cmd_specs(args: argparse.Namespace) -> int:
    system = _SYSTEM_PRESETS[args.system]()
    acoustic = system.acoustic
    transducer = system.transducer
    volume = system.volume
    print(f"System preset: {system.name}")
    print("  Physical")
    print(f"    speed of sound           : {acoustic.speed_of_sound:.0f} m/s")
    print("  Transducer head")
    print(f"    center frequency         : {acoustic.center_frequency / 1e6:.1f} MHz")
    print(f"    bandwidth                : {acoustic.bandwidth / 1e6:.1f} MHz")
    print(f"    matrix size              : {transducer.elements_x} x "
          f"{transducer.elements_y}")
    print(f"    wavelength               : {acoustic.wavelength * 1e3:.3f} mm")
    print(f"    pitch                    : {transducer.pitch * 1e3:.4f} mm")
    print(f"    aperture                 : {transducer.aperture_x * 1e3:.2f} x "
          f"{transducer.aperture_y * 1e3:.2f} mm")
    print("  Beamformer")
    print(f"    imaging volume           : "
          f"{2 * volume.theta_max * 180 / 3.141592653589793:.0f} deg x "
          f"{2 * volume.phi_max * 180 / 3.141592653589793:.0f} deg x "
          f"{volume.depth_max / acoustic.wavelength:.0f} lambda")
    print(f"    sampling frequency       : {acoustic.sampling_frequency / 1e6:.0f} MHz")
    print(f"    focal points             : {volume.n_theta} x {volume.n_phi} x "
          f"{volume.n_depth}")
    print(f"    echo buffer              : {system.echo_buffer_samples} samples")
    print(f"    target volume rate       : {system.beamformer.frame_rate:.0f} /s")
    print(f"    delay values per volume  : {system.theoretical_delay_count:.3e}")
    print(f"    delay values per second  : {system.delay_throughput_required:.3e}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .runtime import BeamformingService, DelayTableCache, moving_point_cine

    if args.frames < 1:
        print("--frames must be at least 1", file=sys.stderr)
        return 2
    system = _SYSTEM_PRESETS[args.system]()
    cache = DelayTableCache()
    service = BeamformingService(system, architecture=args.architecture,
                                 backend=args.backend, cache=cache)
    frames = moving_point_cine(system, n_frames=args.frames)
    print(f"Streaming {len(frames)} frames on system '{system.name}' "
          f"(architecture={args.architecture}, backend={args.backend})")
    for result in service.stream(frames):
        print(f"  frame {result.frame_id:3d}: "
              f"acquire {result.acquire_seconds * 1e3:8.2f} ms, "
              f"beamform {result.beamform_seconds * 1e3:8.2f} ms")
    stats = service.stats()
    print("Aggregate:")
    print(f"  frames                   : {stats.frames}")
    print(f"  volume rate              : {stats.frames_per_second:.2f} frames/s")
    print(f"  voxel rate               : {stats.voxels_per_second:.3e} voxels/s")
    print(f"  mean latency             : {stats.mean_latency_seconds * 1e3:.2f} ms")
    print(f"  delay-table cache        : {stats.cache.hits} hits, "
          f"{stats.cache.misses} misses, {stats.cache.evictions} evictions")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DATE 2015 delay-table reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment or 'all'")
    run_parser.add_argument("experiment", help="experiment id (E1..E10) or 'all'")
    run_parser.set_defaults(handler=_cmd_run)

    table_parser = subparsers.add_parser("table2", help="print the Table II model")
    table_parser.add_argument("--system", choices=sorted(_SYSTEM_PRESETS),
                              default="paper")
    table_parser.set_defaults(handler=_cmd_table2)

    specs_parser = subparsers.add_parser("specs", help="print the system spec (Table I)")
    specs_parser.add_argument("--system", choices=sorted(_SYSTEM_PRESETS),
                              default="paper")
    specs_parser.set_defaults(handler=_cmd_specs)

    stream_parser = subparsers.add_parser(
        "stream", help="stream a cine sequence through the beamforming runtime")
    stream_parser.add_argument("--system", choices=sorted(_SYSTEM_PRESETS),
                               default="small")
    stream_parser.add_argument("--architecture",
                               choices=["exact", "tablefree", "tablesteer",
                                        "tablesteer_float"],
                               default="exact")
    stream_parser.add_argument("--backend",
                               choices=["reference", "vectorized", "sharded"],
                               default="vectorized")
    stream_parser.add_argument("--frames", type=int, default=8,
                               help="number of cine frames (default 8)")
    stream_parser.set_defaults(handler=_cmd_stream)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
