"""Command-line interface for running the paper experiments.

Usage::

    python -m repro.cli list                 # experiments + registered plugins
    python -m repro.cli run E3               # run one experiment
    python -m repro.cli run all              # run every experiment
    python -m repro.cli table2               # print the Table II comparison
    python -m repro.cli specs                # print the Table I system spec
    python -m repro.cli spec                 # print an EngineSpec as JSON
    python -m repro.cli stream               # stream a cine through the runtime
    python -m repro.cli serve                # multiplex sessions via the server
    python -m repro.cli sweep                # resumable scored grid sweeps

The ``run``, ``spec`` and ``stream`` commands all speak the declarative
:mod:`repro.api` surface: ``--spec file.json`` loads an
:class:`repro.api.EngineSpec` document, ``--set key=value`` applies dotted
overrides (``--set architecture_options.total_bits=14``), and architecture /
backend names are validated against the registries, so user-registered
plugins work without CLI changes.

Each experiment prints measured figures next to the values reported in the
paper (see EXPERIMENTS.md for the recorded comparison).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from .config import PRESETS, get_preset
from .experiments import ALL_EXPERIMENTS

_EXPERIMENT_TITLES = {
    "E1": "Delay-table requirements (Section II-B/II-C)",
    "E2": "Traversal orders (Algorithm 1 / Fig. 1)",
    "E3": "Piecewise-linear square root (Fig. 2)",
    "E4": "TABLEFREE accuracy (Section VI-A)",
    "E5": "TABLESTEER steering accuracy (Section V-A / VI-A, Fig. 3)",
    "E6": "Fixed-point impact (Section VI-A)",
    "E7": "Storage and streaming bandwidth (Section V-B)",
    "E8": "Table II comparison",
    "E9": "Throughput (Section II-C / V-B, Fig. 4)",
    "E10": "End-to-end imaging comparison",
    "E11": "Streaming runtime throughput (backends + delay cache)",
}


# ------------------------------------------------------------ spec plumbing
def _merged_spec_data(args: argparse.Namespace,
                      default_system: str | None = None,
                      default_backend: str | None = None) -> dict:
    """Merge spec-file / flags / ``--set`` overrides into one spec dict.

    Precedence (lowest to highest): built-in defaults, spec-file document,
    explicit ``--system`` / ``--architecture`` / ``--backend`` flags,
    ``--set`` overrides.
    """
    from .api import apply_overrides

    data: dict = {}
    spec_path = getattr(args, "spec", None)
    if spec_path:
        try:
            data = json.loads(Path(spec_path).read_text())
        except OSError as exc:
            raise ValueError(f"cannot read spec file {spec_path!r}: {exc}") \
                from None
        except json.JSONDecodeError as exc:
            raise ValueError(f"spec file {spec_path!r} is not valid JSON: "
                             f"{exc}") from None
    if getattr(args, "system", None):
        data["system"] = args.system
    elif "system" not in data and default_system is not None:
        data["system"] = default_system
    if getattr(args, "architecture", None):
        data["architecture"] = args.architecture
    if getattr(args, "backend", None):
        data["backend"] = args.backend
    elif "backend" not in data and default_backend is not None:
        data["backend"] = default_backend
    if getattr(args, "dtype", None):
        data["precision"] = args.dtype
    if getattr(args, "qformat", None):
        # "--qformat 18" (total bits) or "--qformat U13.5" / "S13.4"
        # (delay Q-format); both resolve through QuantizationSpec.coerce.
        data["quantization"] = args.qformat
    if getattr(args, "scheme", None):
        data["scheme"] = args.scheme
    if getattr(args, "memory_budget", None):
        # "--memory-budget 512M" / "8G" / plain bytes; parsed and
        # validated against the system by EngineSpec.
        data["memory_budget_bytes"] = args.memory_budget
    return apply_overrides(data, getattr(args, "set", None) or [])


def _resolve_engine_spec(args: argparse.Namespace,
                         default_system: str | None = None,
                         default_backend: str | None = None):
    """Build a validated :class:`repro.api.EngineSpec` from CLI flags.

    Raises :class:`ValueError` with the registry listings for unknown names.
    """
    from .api import EngineSpec

    return EngineSpec.from_dict(
        _merged_spec_data(args, default_system=default_system,
                          default_backend=default_backend))


def _add_spec_arguments(parser: argparse.ArgumentParser,
                        default_system: str) -> None:
    """The shared ``--spec`` / ``--system`` / ``--set`` flag family."""
    parser.add_argument("--spec", metavar="FILE",
                        help="EngineSpec JSON document to start from")
    parser.add_argument("--system", default=None,
                        help=f"system preset ({', '.join(sorted(PRESETS))}) "
                             f"[default: {default_system}]")
    parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                        help="dotted spec override, e.g. "
                             "--set architecture_options.total_bits=14 "
                             "(repeatable)")


# ----------------------------------------------------------------- commands
def _cmd_list(_args: argparse.Namespace) -> int:
    from .api import ARCHITECTURES, BACKENDS, SCENARIOS, SCHEMES

    print("Available experiments:")
    for key in sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:])):
        print(f"  {key:4s} {_EXPERIMENT_TITLES.get(key, '')}")
    print("System presets:")
    for name in sorted(PRESETS):
        print(f"  {name}")
    for title, registry in (("architectures", ARCHITECTURES),
                            ("backends", BACKENDS),
                            ("transmit schemes", SCHEMES),
                            ("scan scenarios", SCENARIOS)):
        print(f"Registered {title}:")
        for name, entry in registry.items():
            print(f"  {name:18s} {entry.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    requested = args.experiment.upper()
    if requested == "ALL":
        keys = sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:]))
    elif requested in ALL_EXPERIMENTS:
        keys = [requested]
    else:
        print(f"unknown experiment {args.experiment!r}; "
              f"use 'list' to see the available ones", file=sys.stderr)
        return 2
    system = None
    if args.spec or args.system or args.set:
        try:
            from .api import EngineSpec
            data = _merged_spec_data(args)
            spec = EngineSpec.from_dict(data)
            # Experiments consume only the spec's *system*, and only when
            # one was actually named — each experiment otherwise keeps its
            # own default (often the paper system), rather than silently
            # inheriting EngineSpec's 'small'.
            if "system" in data:
                system = spec.resolve_system()
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    for key in keys:
        module = ALL_EXPERIMENTS[key]
        print("=" * 72)
        print(f"{key}: {_EXPERIMENT_TITLES.get(key, '')}")
        print("=" * 72)
        start = time.perf_counter()
        if getattr(args, "trace", False):
            # Experiments build their sessions/services internally, so the
            # tracer is installed as the process default; every layer that
            # takes tracer=None picks it up.
            from .observability import Tracer, render_span_summary, use_tracer
            tracer = Tracer()
            with use_tracer(tracer):
                module.main(system=system)
            print(f"Span summary ({key}):")
            print(render_span_summary(tracer))
        else:
            module.main(system=system)
        elapsed = time.perf_counter() - start
        print(f"[{key} finished in {elapsed:.1f} s]")
        print()
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .experiments import e08_table2
    system = get_preset(args.system)
    result = e08_table2.run(system)
    print(result["formatted"])
    return 0


def _cmd_specs(args: argparse.Namespace) -> int:
    system = get_preset(args.system)
    acoustic = system.acoustic
    transducer = system.transducer
    volume = system.volume
    print(f"System preset: {system.name}")
    print("  Physical")
    print(f"    speed of sound           : {acoustic.speed_of_sound:.0f} m/s")
    print("  Transducer head")
    print(f"    center frequency         : {acoustic.center_frequency / 1e6:.1f} MHz")
    print(f"    bandwidth                : {acoustic.bandwidth / 1e6:.1f} MHz")
    print(f"    matrix size              : {transducer.elements_x} x "
          f"{transducer.elements_y}")
    print(f"    wavelength               : {acoustic.wavelength * 1e3:.3f} mm")
    print(f"    pitch                    : {transducer.pitch * 1e3:.4f} mm")
    print(f"    aperture                 : {transducer.aperture_x * 1e3:.2f} x "
          f"{transducer.aperture_y * 1e3:.2f} mm")
    print("  Beamformer")
    print(f"    imaging volume           : "
          f"{2 * volume.theta_max * 180 / 3.141592653589793:.0f} deg x "
          f"{2 * volume.phi_max * 180 / 3.141592653589793:.0f} deg x "
          f"{volume.depth_max / acoustic.wavelength:.0f} lambda")
    print(f"    sampling frequency       : {acoustic.sampling_frequency / 1e6:.0f} MHz")
    print(f"    focal points             : {volume.n_theta} x {volume.n_phi} x "
          f"{volume.n_depth}")
    print(f"    echo buffer              : {system.echo_buffer_samples} samples")
    print(f"    target volume rate       : {system.beamformer.frame_rate:.0f} /s")
    print(f"    delay values per volume  : {system.theoretical_delay_count:.3e}")
    print(f"    delay values per second  : {system.delay_throughput_required:.3e}")
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    try:
        spec = _resolve_engine_spec(args, default_system="small")
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    text = spec.to_json()
    if args.out:
        try:
            Path(args.out).write_text(text + "\n")
        except OSError as exc:
            print(f"cannot write spec file {args.out!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .api import ScanSpec, Session
    from .observability import (
        render_runtime_stats,
        render_span_tree,
        write_metrics,
        write_trace,
    )

    if args.frames < 1:
        print("--frames must be at least 1", file=sys.stderr)
        return 2
    if args.batch < 1:
        print("--batch must be at least 1", file=sys.stderr)
        return 2
    tracing = args.trace or args.trace_out is not None
    try:
        spec = _resolve_engine_spec(args, default_system="small",
                                    default_backend="vectorized")
        if tracing:
            spec = spec.with_updates(trace=True)
        session = Session(spec)
        scan = ScanSpec(scenario=args.scenario, frames=args.frames)
        service = session.service()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    frames = scan.build_frames(session.system)
    quantized = f", quantized [{service.quantization.describe()}]" \
        if service.quantization is not None else ""
    print(f"Streaming {len(frames)} frames on system '{session.system.name}' "
          f"(architecture={service.architecture}, "
          f"backend={service.backend_name}, "
          f"dtype={service.precision.value}, batch={args.batch}, "
          f"scheme={service.scheme.describe()}, "
          f"scenario={scan.scenario}{quantized})")
    for result in service.stream(frames, batch_size=args.batch):
        print(f"  frame {result.frame_id:3d}: "
              f"acquire {result.acquire_seconds * 1e3:8.2f} ms, "
              f"beamform {result.beamform_seconds * 1e3:8.2f} ms")
    print("Aggregate:")
    print(render_runtime_stats(service.stats()))
    if args.trace:
        print("Trace:")
        print(render_span_tree(session.tracer))
    try:
        if args.trace_out is not None:
            write_trace(args.trace_out, session.tracer)
            print(f"wrote trace to {args.trace_out}")
        if args.metrics_out is not None:
            write_metrics(args.metrics_out, service.export_metrics())
            print(f"wrote metrics to {args.metrics_out}")
    except OSError as exc:
        print(f"cannot write observability output: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .api import ScanSpec, apply_overrides
    from .observability import write_metrics
    from .server import BeamformingServer, ServerSpec

    if args.sessions < 1:
        print("--sessions must be at least 1", file=sys.stderr)
        return 2
    if args.frames < 1:
        print("--frames must be at least 1", file=sys.stderr)
        return 2
    try:
        data: dict = {}
        if args.spec:
            try:
                data = json.loads(Path(args.spec).read_text())
            except OSError as exc:
                raise ValueError(
                    f"cannot read spec file {args.spec!r}: {exc}") from None
            except json.JSONDecodeError as exc:
                raise ValueError(f"spec file {args.spec!r} is not valid "
                                 f"JSON: {exc}") from None
        # Engine-level flags land inside the nested engine document.
        for key, value in (("system", args.system),
                           ("architecture", args.architecture),
                           ("backend", args.backend),
                           ("scheme", args.scheme)):
            if value:
                data.setdefault("engine", {})[key] = value
        data.setdefault("engine", {}).setdefault("system", "small")
        data.setdefault("engine", {}).setdefault("backend", "vectorized")
        for key, value in (("workers", args.workers),
                           ("queue_capacity", args.queue_capacity),
                           ("policy", args.policy),
                           ("session_memory_budget_bytes",
                            args.memory_budget)):
            if value is not None:
                data[key] = value
        data = apply_overrides(data, args.set or [])
        spec = ServerSpec.from_dict(data)
        scan = ScanSpec(scenario=args.scenario, frames=args.frames)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.check:
        print(spec.to_json())
        return 0
    with BeamformingServer(spec) as server:
        system = spec.engine.resolve_system()
        frames = scan.build_frames(system)
        print(f"Serving {args.sessions} sessions x {len(frames)} frames on "
              f"system '{system.name}' (workers={server.workers}, "
              f"queue={spec.queue_capacity}, policy={spec.policy.value}, "
              f"backend={spec.engine.backend}, scenario={scan.scenario})")
        handles = [server.open_session() for _ in range(args.sessions)]
        start = time.perf_counter()
        tickets = [(handle, [handle.submit(frame) for frame in frames])
                   for handle in handles]
        for handle, session_tickets in tickets:
            for ticket in session_tickets:
                try:
                    ticket.result()
                except Exception as exc:  # dropped frames stay visible
                    print(f"  {handle.session_id} frame "
                          f"{ticket.frame_id}: {exc}")
        server.drain()
        elapsed = time.perf_counter() - start
        stats = server.stats()
        for session in stats.sessions:
            print(f"  session {session.session_id}: "
                  f"{session.frames} frames, {session.drops} drops, "
                  f"p50 {session.p50_latency_seconds * 1e3:7.2f} ms, "
                  f"p99 {session.p99_latency_seconds * 1e3:7.2f} ms")
        rate = stats.voxels / elapsed if elapsed else 0.0
        print(f"Aggregate: {stats.frames} frames, {stats.drops} drops in "
              f"{elapsed:.2f} s — {rate:.3e} voxels/s "
              f"(p99 {stats.p99_latency_seconds * 1e3:.2f} ms)")
        try:
            if args.metrics_out is not None:
                write_metrics(args.metrics_out, server.export_metrics())
                print(f"wrote metrics to {args.metrics_out}")
        except OSError as exc:
            print(f"cannot write observability output: {exc}",
                  file=sys.stderr)
            return 2
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .api import Session, apply_overrides
    from .observability import render_span_tree, write_metrics, write_trace
    from .sweep import SweepExecutor, SweepRunSpec

    try:
        data: dict = {}
        if args.spec:
            try:
                data = json.loads(Path(args.spec).read_text())
            except OSError as exc:
                raise ValueError(
                    f"cannot read spec file {args.spec!r}: {exc}") from None
            except json.JSONDecodeError as exc:
                raise ValueError(f"spec file {args.spec!r} is not valid "
                                 f"JSON: {exc}") from None
        # Engine-level flags land inside the nested engine document.
        for key, value in (("system", args.system),
                           ("architecture", args.architecture),
                           ("backend", args.backend),
                           ("scheme", args.scheme)):
            if value:
                data.setdefault("engine", {})[key] = value
        data.setdefault("engine", {}).setdefault("system", "small")
        data.setdefault("engine", {}).setdefault("backend", "vectorized")
        if args.store is not None:
            data["store"] = args.store
        if args.workers is not None:
            data["workers"] = args.workers
        if args.resume is not None:
            data["resume"] = args.resume
        if args.overwrite:
            data["overwrite"] = True
        data = apply_overrides(data, args.set or [])
        spec = SweepRunSpec.from_dict(data)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.check:
        print(spec.to_json())
        return 0
    tracing = args.trace or args.trace_out is not None
    engine = spec.engine.with_updates(trace=True) if tracing else spec.engine
    with Session(engine) as session:
        executor = SweepExecutor(session, store=spec.store,
                                 workers=spec.workers, resume=spec.resume,
                                 overwrite=spec.overwrite)
        sweep = spec.sweep
        architectures, backends, _ = sweep.resolve_grid(
            engine.architecture, engine.backend)
        cells = (len(sweep.scenarios) * len(sweep.schemes)
                 * len(architectures) * len(backends))
        store_text = spec.store if spec.store else "none (in-memory)"
        print(f"Sweeping {cells} cells on system "
              f"'{session.system.name}' "
              f"({len(sweep.scenarios)} scenarios x "
              f"{len(sweep.schemes)} schemes x "
              f"{len(architectures)} architectures x "
              f"{len(backends)} backends; store={store_text}, "
              f"workers={spec.workers}, resume={spec.resume}, "
              f"overwrite={spec.overwrite})")
        start = time.perf_counter()
        try:
            results = executor.run(sweep)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - start
        for key, cell in results.items():
            status = executor.statuses.get(key, "computed")
            label = " x ".join(key)
            metrics = cell.get("metrics")
            detail = ""
            if metrics:
                detail = (f"  fwhm_lat {metrics['fwhm_lateral']:8.3e}  "
                          f"cnr {metrics['cnr']:7.3f}")
            print(f"  [{status:8s}] {label}{detail}")
        print(f"Summary: {len(results)} cells — "
              f"{executor.completed:.0f} computed, "
              f"{executor.cached:.0f} cached, "
              f"{executor.failed:.0f} failed in {elapsed:.2f} s")
        if args.trace:
            print("Trace:")
            print(render_span_tree(session.tracer))
        try:
            if args.trace_out is not None:
                write_trace(args.trace_out, session.tracer)
                print(f"wrote trace to {args.trace_out}")
            if args.metrics_out is not None:
                write_metrics(args.metrics_out, session.metrics)
                print(f"wrote metrics to {args.metrics_out}")
        except OSError as exc:
            print(f"cannot write observability output: {exc}",
                  file=sys.stderr)
            return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser.

    Architecture/backend names are deliberately *not* closed ``choices``
    lists: they are validated against the registries when the command runs,
    so plugins registered by user code (or named in spec files) work and
    unknown names fail with the registered listing.
    """
    parser = argparse.ArgumentParser(
        prog="repro", description="DATE 2015 delay-table reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list experiments and registered plugins")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="run one experiment or 'all'",
        epilog="experiments consume only the spec's system (--system or the "
               "spec file's \"system\"); other spec fields are validated "
               "but not used by 'run'")
    run_parser.add_argument("experiment", help="experiment id (E1..E11) or 'all'")
    _add_spec_arguments(run_parser, default_system="per-experiment")
    run_parser.add_argument("--trace", action="store_true",
                            help="install a process-wide tracer for the "
                                 "experiment and print its span summary")
    run_parser.set_defaults(handler=_cmd_run, architecture=None, backend=None)

    table_parser = subparsers.add_parser("table2", help="print the Table II model")
    table_parser.add_argument("--system", choices=sorted(PRESETS),
                              default="paper")
    table_parser.set_defaults(handler=_cmd_table2)

    specs_parser = subparsers.add_parser("specs", help="print the system spec (Table I)")
    specs_parser.add_argument("--system", choices=sorted(PRESETS),
                              default="paper")
    specs_parser.set_defaults(handler=_cmd_specs)

    spec_parser = subparsers.add_parser(
        "spec", help="resolve an EngineSpec document and print it as JSON")
    _add_spec_arguments(spec_parser, default_system="small")
    spec_parser.add_argument("--architecture", default=None,
                             help="delay architecture (see 'list')")
    spec_parser.add_argument("--backend", default=None,
                             help="execution backend (see 'list')")
    spec_parser.add_argument("--qformat", metavar="SPEC", default=None,
                             help="bit-true quantized execution: a total "
                                  "bit width (e.g. 18) or a delay Q-format "
                                  "like U13.5 / S13.4")
    spec_parser.add_argument("--scheme", default=None,
                             help="transmit scheme (see 'list') "
                                  "[default: focused]")
    spec_parser.add_argument("--memory-budget", metavar="BYTES", default=None,
                             help="plan-memory budget; plain bytes or a "
                                  "suffixed size like 512M or 8G "
                                  "[default: unbounded]")
    spec_parser.add_argument("--out", metavar="FILE", default=None,
                             help="write the JSON to FILE instead of stdout")
    spec_parser.set_defaults(handler=_cmd_spec)

    stream_parser = subparsers.add_parser(
        "stream", help="stream a cine sequence through the beamforming runtime")
    _add_spec_arguments(stream_parser, default_system="small")
    stream_parser.add_argument("--architecture", default=None,
                               help="delay architecture (see 'list')")
    stream_parser.add_argument("--backend", default=None,
                               help="execution backend (see 'list') "
                                    "[default: vectorized]")
    stream_parser.add_argument("--scheme", default=None,
                               help="transmit scheme (see 'list'); "
                                    "multi-firing schemes compound one "
                                    "volume per frame [default: focused]")
    stream_parser.add_argument("--scenario", default="moving_point",
                               help="scan scenario (see 'list')")
    stream_parser.add_argument("--frames", type=int, default=8,
                               help="number of cine frames (default 8)")
    stream_parser.add_argument("--dtype", choices=["float64", "float32"],
                               default=None,
                               help="kernel execution precision "
                                    "[default: float64 (exact)]")
    stream_parser.add_argument("--qformat", metavar="SPEC", default=None,
                               help="bit-true quantized execution: a total "
                                    "bit width (e.g. 18) or a delay "
                                    "Q-format like U13.5 / S13.4 "
                                    "[default: off]")
    stream_parser.add_argument("--batch", type=int, default=1,
                               help="frames per batched kernel execution "
                                    "(default 1 = per-frame)")
    stream_parser.add_argument("--memory-budget", metavar="BYTES",
                               default=None,
                               help="plan-memory budget; execution tiles "
                                    "the volume so cached plan segments "
                                    "never exceed it (e.g. 512K, 8G) "
                                    "[default: unbounded]")
    stream_parser.add_argument("--trace", action="store_true",
                               help="record a span trace and print the "
                                    "per-stage tree after streaming")
    stream_parser.add_argument("--trace-out", metavar="FILE", default=None,
                               help="write the span trace as JSON lines "
                                    "(implies tracing)")
    stream_parser.add_argument("--metrics-out", metavar="FILE", default=None,
                               help="write a Prometheus-style metrics "
                                    "snapshot of the run")
    stream_parser.set_defaults(handler=_cmd_stream)

    serve_parser = subparsers.add_parser(
        "serve", help="multiplex concurrent cine sessions through the "
                      "multi-stream beamforming server")
    serve_parser.add_argument("--spec", metavar="FILE",
                              help="ServerSpec JSON document to start from")
    serve_parser.add_argument("--system", default=None,
                              help="system preset for the default engine "
                                   f"({', '.join(sorted(PRESETS))}) "
                                   "[default: small]")
    serve_parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                              help="dotted ServerSpec override, e.g. "
                                   "--set engine.backend=sharded or "
                                   "--set queue_capacity=4 (repeatable)")
    serve_parser.add_argument("--architecture", default=None,
                              help="delay architecture for the default "
                                   "engine (see 'list')")
    serve_parser.add_argument("--backend", default=None,
                              help="execution backend for the default "
                                   "engine (see 'list') "
                                   "[default: vectorized]")
    serve_parser.add_argument("--scheme", default=None,
                              help="transmit scheme for the default engine "
                                   "(see 'list') [default: focused]")
    serve_parser.add_argument("--scenario", default="moving_point",
                              help="scan scenario every session streams "
                                   "(see 'list')")
    serve_parser.add_argument("--sessions", type=int, default=4,
                              help="concurrent sessions (default 4)")
    serve_parser.add_argument("--frames", type=int, default=4,
                              help="frames per session (default 4)")
    serve_parser.add_argument("--workers", type=int, default=None,
                              help="worker threads [default: auto]")
    serve_parser.add_argument("--queue-capacity", type=int, default=None,
                              help="per-session queue bound [default: 8]")
    serve_parser.add_argument("--policy", default=None,
                              help="backpressure policy: block, "
                                   "drop_oldest or drop_latest "
                                   "[default: block]")
    serve_parser.add_argument("--memory-budget", metavar="BYTES",
                              default=None,
                              help="default per-session plan-memory budget "
                                   "(e.g. 512K, 8G); sessions whose engine "
                                   "carries its own budget keep it "
                                   "[default: unbounded]")
    serve_parser.add_argument("--check", action="store_true",
                              help="validate and print the resolved "
                                   "ServerSpec JSON, then exit without "
                                   "serving")
    serve_parser.add_argument("--metrics-out", metavar="FILE", default=None,
                              help="write a Prometheus-style metrics "
                                   "snapshot of the run")
    serve_parser.set_defaults(handler=_cmd_serve)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a scored scenario x scheme x architecture grid "
                      "through the resumable content-addressed executor")
    sweep_parser.add_argument("--spec", metavar="FILE",
                              help="SweepRunSpec JSON document to start from")
    sweep_parser.add_argument("--system", default=None,
                              help="system preset for the engine "
                                   f"({', '.join(sorted(PRESETS))}) "
                                   "[default: small]")
    sweep_parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                              help="dotted SweepRunSpec override, e.g. "
                                   "--set sweep.scenarios='[\"cyst\"]' or "
                                   "--set engine.quantization=18 "
                                   "(repeatable)")
    sweep_parser.add_argument("--architecture", default=None,
                              help="delay architecture for the engine (see "
                                   "'list'); grid axes come from "
                                   "sweep.architectures")
    sweep_parser.add_argument("--backend", default=None,
                              help="execution backend for the engine (see "
                                   "'list') [default: vectorized]")
    sweep_parser.add_argument("--scheme", default=None,
                              help="engine transmit scheme; grid axes come "
                                   "from sweep.schemes [default: focused]")
    sweep_parser.add_argument("--store", metavar="DIR", default=None,
                              help="content-addressed result store; "
                                   "completed cells are skipped on rerun "
                                   "[default: in-memory only]")
    sweep_parser.add_argument("--workers", type=int, default=None,
                              help="parallel cell-dispatch processes "
                                   "(requires --store) [default: 1]")
    sweep_parser.add_argument("--resume", default=None,
                              action=argparse.BooleanOptionalAction,
                              help="serve store-completed cells instead of "
                                   "recomputing them [default: on]")
    sweep_parser.add_argument("--overwrite", action="store_true",
                              help="recompute and refresh every cell even "
                                   "when the store already holds it")
    sweep_parser.add_argument("--check", action="store_true",
                              help="validate and print the resolved "
                                   "SweepRunSpec JSON, then exit without "
                                   "sweeping")
    sweep_parser.add_argument("--trace", action="store_true",
                              help="record a span trace and print the "
                                   "per-cell tree after the sweep")
    sweep_parser.add_argument("--trace-out", metavar="FILE", default=None,
                              help="write the span trace as JSON lines "
                                   "(implies tracing)")
    sweep_parser.add_argument("--metrics-out", metavar="FILE", default=None,
                              help="write a Prometheus-style metrics "
                                   "snapshot of the run (includes the "
                                   "sweep_cells_* counters)")
    sweep_parser.set_defaults(handler=_cmd_sweep)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
