"""Delay-and-sum receive beamformer core.

Implements Eq. (1) of the paper: for every focal point ``S`` the echo samples
of all elements, fetched at the per-element delay ``tp(O, S, D)``, are
weighted and summed.  The beamformer is agnostic to *how* the delays are
produced — any object following :class:`DelayProvider` works — which is
exactly the property the paper relies on when it argues that image quality
depends only on delay accuracy, not on the generation architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from ..acoustics.echo import ChannelData
from ..config import SystemConfig
from ..geometry.apodization import WindowType, aperture_apodization, directivity_weights
from ..geometry.coordinates import off_axis_angle
from ..geometry.transducer import MatrixTransducer
from ..geometry.volume import FocalGrid
from ..kernels.ops import delay_and_sum
from ..kernels.precision import Precision, resolve_precision
from .interpolation import InterpolationKind

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..kernels.quantized import QuantizationSpec


@runtime_checkable
class DelayProvider(Protocol):
    """Anything that can produce per-element delays for focal points.

    All three delay engines of :mod:`repro.core` (exact, TABLEFREE,
    TABLESTEER) satisfy this protocol.
    """

    def delays_samples(self, points: np.ndarray) -> np.ndarray:
        """Delays in fractional sample units, shape ``(n_points, n_elements)``."""
        ...  # pragma: no cover - protocol definition

    def scanline_delays_samples(self, i_theta: int, i_phi: int) -> np.ndarray:
        """Delays for a grid scanline, shape ``(n_depth, n_elements)``."""
        ...  # pragma: no cover - protocol definition

    def nappe_delays_samples(self, i_depth: int) -> np.ndarray:
        """Delays for a grid nappe, shape ``(n_theta, n_phi, n_elements)``."""
        ...  # pragma: no cover - protocol definition

    def volume_delays_samples(self) -> np.ndarray:
        """Delays for the whole grid, shape ``(n_theta, n_phi, n_depth, n_elements)``.

        All providers in :mod:`repro.core` inherit a scanline-stacking
        default from :class:`repro.core.bulk.BulkDelayProviderMixin`.
        """
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class ApodizationSettings:
    """Receive apodization configuration."""

    window: WindowType = WindowType.HANN
    use_directivity: bool = True
    directivity_rolloff: float = 0.1


class DelayAndSumBeamformer:
    """Weighted delay-and-sum beamformer over a focal grid.

    Parameters
    ----------
    system:
        System configuration (defines the focal grid and sampling rate).
    delays:
        Delay provider used to address the echo buffers.
    apodization:
        Receive apodization settings; directivity weighting suppresses the
        contribution of elements that physically cannot see the focal point,
        which is also what masks the worst TABLESTEER errors in the paper.
    interpolation:
        Echo-sample interpolation strategy.  ``NEAREST`` (default) models the
        integer-index hardware addressing of the paper; ``LINEAR`` performs
        fractional-delay interpolation and is used by the ablation study.
    precision:
        Execution dtype policy of the gather/weight/accumulate arithmetic
        (see :class:`repro.kernels.Precision`).  ``float64`` (default)
        reproduces the historical behaviour exactly; ``float32`` trades a
        documented tolerance for memory bandwidth.  Delay *generation* is
        always ``float64`` either way.
    quantization:
        Optional :class:`repro.kernels.QuantizationSpec` switching the
        beamformer (and every plan compiled from it) to the bit-true
        fixed-point datapath of the paper's hardware: delays, samples,
        weights and the accumulating sum are each quantised to their
        Q-format.  Requires ``float64`` precision (the fixed-point codes
        are carried exactly in doubles) and ``NEAREST`` interpolation (the
        hardware's integer echo addressing).
    """

    def __init__(self, system: SystemConfig, delays: DelayProvider,
                 apodization: ApodizationSettings | None = None,
                 interpolation: InterpolationKind = InterpolationKind.NEAREST,
                 transducer: MatrixTransducer | None = None,
                 grid: FocalGrid | None = None,
                 precision: Precision | str | None = None,
                 quantization: "QuantizationSpec | str | int | None" = None
                 ) -> None:
        # Imported here, not at module top: repro.kernels.quantized builds
        # on repro.kernels.plan, which imports our sibling interpolation
        # module — a top-level import would deadlock `import repro.kernels`.
        from ..kernels.quantized import QuantizationSpec

        self.system = system
        self.delays = delays
        self.apodization = apodization or ApodizationSettings()
        self.interpolation = interpolation
        self.precision = resolve_precision(precision)
        self.quantization = QuantizationSpec.coerce(quantization)
        if self.quantization is not None:
            self.quantization.validate_for(self.precision, interpolation,
                                           system.echo_buffer_samples)
        self.transducer = transducer or MatrixTransducer.from_config(system)
        self.grid = grid or FocalGrid.from_config(system)
        self._aperture_weights = aperture_apodization(
            self.transducer, self.apodization.window).ravel()
        # The focal grid is static for the lifetime of the beamformer, so the
        # per-scanline receive weights are computed once and reused across
        # every frame (they used to be rebuilt for every scanline of every
        # volume, dominating the reference path's run time).
        self._scanline_weights: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------- weights
    def weights_for_scanline(self, i_theta: int, i_phi: int) -> np.ndarray:
        """Receive weights for one grid scanline, cached per ``(i_theta, i_phi)``."""
        key = (i_theta, i_phi)
        weights = self._scanline_weights.get(key)
        if weights is None:
            weights = self.weights_for_points(
                self.grid.scanline_points(i_theta, i_phi))
            self._scanline_weights[key] = weights
        return weights

    def volume_weights(self) -> np.ndarray:
        """Receive weights for every grid point, shape ``(n_theta, n_phi, n_depth, n_elements)``.

        Assembled from (and seeding) the per-scanline cache so the batched
        runtime backends use the exact same values as the scanline path.
        """
        n_theta, n_phi, n_depth = self.grid.shape
        out = np.empty((n_theta, n_phi, n_depth,
                        self.transducer.element_count))
        for i_theta in range(n_theta):
            for i_phi in range(n_phi):
                out[i_theta, i_phi] = self.weights_for_scanline(i_theta, i_phi)
        return out

    def weights_for_points(self, points: np.ndarray) -> np.ndarray:
        """Receive weights ``w(S)`` for each (point, element) pair."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        weights = np.broadcast_to(self._aperture_weights,
                                  (points.shape[0], self.transducer.element_count)).copy()
        if self.apodization.use_directivity:
            angles = off_axis_angle(points, self.transducer.positions)
            weights *= directivity_weights(
                angles,
                self.transducer.config.directivity_max_angle,
                self.apodization.directivity_rolloff)
        return weights

    # ---------------------------------------------------------------- core
    def beamform_points(self, channel_data: ChannelData,
                        points: np.ndarray) -> np.ndarray:
        """Beamformed (RF) samples for arbitrary focal points, shape ``(n_points,)``."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        delays = self.delays.delays_samples(points)
        return self._sum_with_delays(channel_data, delays,
                                     self.weights_for_points(points))

    def beamform_scanline(self, channel_data: ChannelData,
                          i_theta: int, i_phi: int) -> np.ndarray:
        """Beamformed samples along one grid scanline, shape ``(n_depth,)``."""
        delays = self.delays.scanline_delays_samples(i_theta, i_phi)
        return self._sum_with_delays(channel_data, delays,
                                     self.weights_for_scanline(i_theta, i_phi))

    def beamform_nappe(self, channel_data: ChannelData,
                       i_depth: int) -> np.ndarray:
        """Beamformed samples of one nappe, shape ``(n_theta, n_phi)``."""
        delays = self.delays.nappe_delays_samples(i_depth)
        n_theta, n_phi, n_elements = delays.shape
        points = self.grid.nappe_points(i_depth).reshape(-1, 3)
        flat = self._sum_with_delays(channel_data,
                                     delays.reshape(-1, n_elements),
                                     self.weights_for_points(points))
        return flat.reshape(n_theta, n_phi)

    def _sum_with_delays(self, channel_data: ChannelData,
                         delays_samples: np.ndarray,
                         weights: np.ndarray) -> np.ndarray:
        if self.quantization is not None:
            from ..kernels.quantized import quantized_delay_and_sum
            return quantized_delay_and_sum(channel_data.samples,
                                           delays_samples, weights,
                                           self.quantization,
                                           kind=self.interpolation)
        return delay_and_sum(channel_data.samples, delays_samples, weights,
                             kind=self.interpolation,
                             dtype=self.precision.dtype)
