"""Image formation and quality metrics.

Beamformed RF values become displayable images after envelope detection and
logarithmic compression.  This module also provides the quality metrics the
imaging experiments report: point-spread-function width, peak position error
and cyst contrast — the quantities through which delay-generation error
ultimately shows up as image degradation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import hilbert


def envelope(rf: np.ndarray, axis: int = -1) -> np.ndarray:
    """Envelope detection via the analytic signal along ``axis``.

    For very short traces (fewer than 8 samples) the magnitude is used
    directly, since the Hilbert transform is meaningless there.
    """
    rf = np.asarray(rf, dtype=np.float64)
    if rf.shape[axis] < 8:
        return np.abs(rf)
    return np.abs(hilbert(rf, axis=axis))


def log_compress(env: np.ndarray, dynamic_range_db: float = 60.0) -> np.ndarray:
    """Log-compress an envelope image to ``[-dynamic_range_db, 0]`` dB."""
    env = np.asarray(env, dtype=np.float64)
    peak = np.max(np.abs(env))
    if peak <= 0:
        return np.full_like(env, -dynamic_range_db)
    db = 20.0 * np.log10(np.maximum(np.abs(env) / peak, 1e-12))
    return np.clip(db, -dynamic_range_db, 0.0)


@dataclass(frozen=True)
class PointSpreadMetrics:
    """Metrics of a point-target response along one axis."""

    peak_index: int
    peak_value: float
    fwhm_samples: float
    peak_to_sidelobe_db: float


def point_spread_metrics(profile: np.ndarray) -> PointSpreadMetrics:
    """Analyse a 1-D profile through a point-target image.

    Returns the peak location, the full width at half maximum (in samples,
    linearly interpolated) and the ratio of the main lobe to the highest
    value outside the main lobe.
    """
    profile = np.abs(np.asarray(profile, dtype=np.float64))
    if profile.size == 0:
        raise ValueError("profile must not be empty")
    peak_index = int(np.argmax(profile))
    peak_value = float(profile[peak_index])
    if peak_value <= 0:
        return PointSpreadMetrics(peak_index=peak_index, peak_value=0.0,
                                  fwhm_samples=float(profile.size),
                                  peak_to_sidelobe_db=0.0)
    half = peak_value / 2.0

    # Walk outward from the peak to the half-maximum crossings.
    left = peak_index
    while left > 0 and profile[left] > half:
        left -= 1
    right = peak_index
    while right < profile.size - 1 and profile[right] > half:
        right += 1
    left_cross = _interpolate_crossing(profile, left, left + 1, half) \
        if profile[left] <= half else float(left)
    right_cross = _interpolate_crossing(profile, right - 1, right, half) \
        if profile[right] <= half else float(right)
    fwhm = max(right_cross - left_cross, 0.0)

    # Sidelobe level: highest value outside the main lobe.  The main lobe
    # extends past the half-maximum crossings down to the first local minimum
    # on each side, so the skirt of the main lobe is not mistaken for a
    # sidelobe.
    lobe_left = left
    while lobe_left > 0 and profile[lobe_left - 1] <= profile[lobe_left]:
        lobe_left -= 1
    lobe_right = right
    while lobe_right < profile.size - 1 and profile[lobe_right + 1] <= profile[lobe_right]:
        lobe_right += 1
    main_lobe = np.zeros(profile.size, dtype=bool)
    main_lobe[max(0, lobe_left):min(profile.size, lobe_right + 1)] = True
    outside = profile[~main_lobe]
    if outside.size == 0 or np.max(outside) <= 0:
        psl_db = 120.0
    else:
        psl_db = 20.0 * np.log10(peak_value / np.max(outside))
    return PointSpreadMetrics(peak_index=peak_index, peak_value=peak_value,
                              fwhm_samples=float(fwhm),
                              peak_to_sidelobe_db=float(psl_db))


def _interpolate_crossing(profile: np.ndarray, i_low: int, i_high: int,
                          level: float) -> float:
    """Linear interpolation of the index where ``profile`` crosses ``level``."""
    lo, hi = profile[i_low], profile[i_high]
    if hi == lo:
        return float(i_low)
    frac = (level - lo) / (hi - lo)
    return float(i_low + np.clip(frac, 0.0, 1.0))


def contrast_ratio_db(image: np.ndarray, inside_mask: np.ndarray,
                      outside_mask: np.ndarray) -> float:
    """Contrast between two regions of an envelope image, in dB.

    Defined as ``20 log10(mean(outside) / mean(inside))``: for an anechoic
    cyst the contrast is positive and larger is better.
    """
    image = np.abs(np.asarray(image, dtype=np.float64))
    inside = image[inside_mask]
    outside = image[outside_mask]
    if inside.size == 0 or outside.size == 0:
        raise ValueError("both masks must select at least one pixel")
    mean_in = float(np.mean(inside))
    mean_out = float(np.mean(outside))
    if mean_in <= 0:
        mean_in = 1e-12
    if mean_out <= 0:
        mean_out = 1e-12
    return 20.0 * np.log10(mean_out / mean_in)


def contrast_to_noise_ratio(inside: np.ndarray,
                            outside: np.ndarray) -> float:
    """CNR between two sample populations of an envelope image.

    ``|mean(outside) - mean(inside)| / sqrt(var(inside) + var(outside))`` —
    the classic cyst figure of merit.  Invariant under a common positive
    amplitude scaling of both populations.
    """
    inside = np.asarray(inside, dtype=np.float64).ravel()
    outside = np.asarray(outside, dtype=np.float64).ravel()
    if inside.size == 0 or outside.size == 0:
        raise ValueError("both regions must contain at least one sample")
    denominator = float(np.sqrt(np.var(inside) + np.var(outside)))
    if denominator == 0.0:
        return float("inf") if np.mean(inside) != np.mean(outside) else 0.0
    return float(abs(np.mean(outside) - np.mean(inside)) / denominator)


def generalized_cnr(inside: np.ndarray, outside: np.ndarray,
                    bins: int = 64) -> float:
    """gCNR between two sample populations: ``1 - OVL`` of their histograms.

    The generalized contrast-to-noise ratio (Rodriguez-Molares et al.) is
    one minus the overlap of the two amplitude distributions, estimated on
    a shared ``bins``-bin histogram spanning both populations.  Bounded in
    ``[0, 1]``; invariant under any common positive amplitude scaling and
    under permutation of the samples, which makes it immune to the
    dynamic-range manipulation that inflates plain CNR.
    """
    inside = np.asarray(inside, dtype=np.float64).ravel()
    outside = np.asarray(outside, dtype=np.float64).ravel()
    if inside.size == 0 or outside.size == 0:
        raise ValueError("both regions must contain at least one sample")
    lo = float(min(inside.min(), outside.min()))
    hi = float(max(inside.max(), outside.max()))
    if lo == hi:
        return 0.0
    edges = np.linspace(lo, hi, bins + 1)
    p_inside, _ = np.histogram(inside, bins=edges)
    p_outside, _ = np.histogram(outside, bins=edges)
    overlap = np.sum(np.minimum(p_inside / inside.size,
                                p_outside / outside.size))
    return float(1.0 - overlap)


def normalized_rms_difference(reference: np.ndarray, test: np.ndarray) -> float:
    """RMS difference between two images, normalised by the reference RMS.

    Used to quantify how much an approximate delay generator changes the
    reconstructed image relative to the exact-delay reference.
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError("images must have the same shape")
    ref_rms = float(np.sqrt(np.mean(reference ** 2)))
    if ref_rms == 0:
        return 0.0 if np.allclose(test, 0) else np.inf
    return float(np.sqrt(np.mean((reference - test) ** 2)) / ref_rms)
