"""Volume reconstruction drivers: scanline-by-scanline and nappe-by-nappe.

Algorithm 1 of the paper gives two equivalent loop nests for reconstructing
the volume.  Both drivers here produce the identical beamformed volume array
of shape ``(n_theta, n_phi, n_depth)``; they differ only in traversal order,
which matters for how the delay generator's internal state (table slices,
PWL segment trackers) is exercised — exactly the co-design point Section II-A
makes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..acoustics.echo import ChannelData
from .das import DelayAndSumBeamformer


@dataclass(frozen=True)
class BeamformedVolume:
    """A reconstructed volume of beamformed RF values.

    Attributes
    ----------
    rf:
        Beamformed (pre-envelope) values, shape ``(n_theta, n_phi, n_depth)``.
    order:
        Traversal order used to produce the volume ("scanline" or "nappe").
    """

    rf: np.ndarray
    order: str

    @property
    def shape(self) -> tuple[int, int, int]:
        """Volume grid shape ``(n_theta, n_phi, n_depth)``."""
        return self.rf.shape


def reconstruct_scanline_order(beamformer: DelayAndSumBeamformer,
                               channel_data: ChannelData) -> BeamformedVolume:
    """Reconstruct the whole volume scanline-by-scanline (depth innermost)."""
    grid = beamformer.grid
    n_theta, n_phi, n_depth = grid.shape
    rf = np.zeros((n_theta, n_phi, n_depth),
                  dtype=beamformer.precision.dtype)
    for i_theta in range(n_theta):
        for i_phi in range(n_phi):
            rf[i_theta, i_phi, :] = beamformer.beamform_scanline(
                channel_data, i_theta, i_phi)
    return BeamformedVolume(rf=rf, order="scanline")


def reconstruct_nappe_order(beamformer: DelayAndSumBeamformer,
                            channel_data: ChannelData) -> BeamformedVolume:
    """Reconstruct the whole volume nappe-by-nappe (depth outermost)."""
    grid = beamformer.grid
    n_theta, n_phi, n_depth = grid.shape
    rf = np.zeros((n_theta, n_phi, n_depth),
                  dtype=beamformer.precision.dtype)
    for i_depth in range(n_depth):
        rf[:, :, i_depth] = beamformer.beamform_nappe(channel_data, i_depth)
    return BeamformedVolume(rf=rf, order="nappe")


def reconstruct_plane(beamformer: DelayAndSumBeamformer,
                      channel_data: ChannelData,
                      i_phi: int | None = None) -> np.ndarray:
    """Reconstruct a single (theta, depth) image plane at fixed elevation.

    A cheap alternative to the full volume for examples and tests: the
    returned array has shape ``(n_theta, n_depth)``.
    """
    grid = beamformer.grid
    n_theta, n_phi, n_depth = grid.shape
    if i_phi is None:
        i_phi = n_phi // 2
    image = np.zeros((n_theta, n_depth), dtype=beamformer.precision.dtype)
    for i_theta in range(n_theta):
        image[i_theta, :] = beamformer.beamform_scanline(channel_data,
                                                         i_theta, i_phi)
    return image
