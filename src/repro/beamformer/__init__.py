"""Receive beamforming substrate: delay-and-sum core, drivers and image formation."""

from .das import ApodizationSettings, DelayAndSumBeamformer, DelayProvider
from .drivers import (
    BeamformedVolume,
    reconstruct_nappe_order,
    reconstruct_plane,
    reconstruct_scanline_order,
)
from .interpolation import (
    InterpolationKind,
    fetch_linear,
    fetch_nearest,
    fetch_samples,
    interpolation_cost_model,
)
from .image import (
    PointSpreadMetrics,
    contrast_ratio_db,
    envelope,
    log_compress,
    normalized_rms_difference,
    point_spread_metrics,
)

__all__ = [
    "DelayProvider",
    "ApodizationSettings",
    "DelayAndSumBeamformer",
    "BeamformedVolume",
    "reconstruct_scanline_order",
    "reconstruct_nappe_order",
    "reconstruct_plane",
    "InterpolationKind",
    "fetch_samples",
    "fetch_nearest",
    "fetch_linear",
    "interpolation_cost_model",
    "envelope",
    "log_compress",
    "point_spread_metrics",
    "PointSpreadMetrics",
    "contrast_ratio_db",
    "normalized_rms_difference",
]
