"""Echo-sample interpolation strategies for the delay-and-sum beamformer.

The hardware architectures in the paper address the echo buffer with an
*integer* sample index (that is what the delay generators produce), which is
equivalent to nearest-neighbour interpolation and is the source of the
half-sample quantisation error the accuracy analysis tracks.  Software
beamformers often spend a little more arithmetic on *linear* (fractional
delay) interpolation between the two neighbouring samples, which removes the
quantisation error at the cost of a second buffer read and a multiply-add
per element.

This module provides both strategies behind a common interface so the
ablation experiments can quantify what integer indexing costs in image
quality — the flip side of the paper's argument that +/-1-sample errors are
acceptable.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..acoustics.echo import ChannelData


class InterpolationKind(str, Enum):
    """Supported echo-sample interpolation strategies."""

    NEAREST = "nearest"
    """Round the delay to the nearest integer index (the hardware behaviour)."""

    LINEAR = "linear"
    """Linearly interpolate between the two neighbouring samples."""


def fetch_nearest(channel_data: ChannelData,
                  element_indices: np.ndarray,
                  delays_samples: np.ndarray) -> np.ndarray:
    """Fetch echo samples with nearest-neighbour (integer index) addressing."""
    indices = np.floor(np.asarray(delays_samples, dtype=np.float64) + 0.5)
    return channel_data.sample_at(element_indices, indices.astype(np.int64))


def fetch_linear(channel_data: ChannelData,
                 element_indices: np.ndarray,
                 delays_samples: np.ndarray) -> np.ndarray:
    """Fetch echo samples with linear (fractional delay) interpolation."""
    delays = np.asarray(delays_samples, dtype=np.float64)
    lower = np.floor(delays)
    fraction = delays - lower
    lower_idx = lower.astype(np.int64)
    upper_idx = lower_idx + 1
    below = channel_data.sample_at(element_indices, lower_idx)
    above = channel_data.sample_at(element_indices, upper_idx)
    return (1.0 - fraction) * below + fraction * above


def fetch_samples(channel_data: ChannelData,
                  element_indices: np.ndarray,
                  delays_samples: np.ndarray,
                  kind: InterpolationKind = InterpolationKind.NEAREST) -> np.ndarray:
    """Fetch echo samples with the requested interpolation strategy."""
    if kind is InterpolationKind.NEAREST:
        return fetch_nearest(channel_data, element_indices, delays_samples)
    if kind is InterpolationKind.LINEAR:
        return fetch_linear(channel_data, element_indices, delays_samples)
    raise ValueError(f"unknown interpolation kind: {kind!r}")


def interpolation_cost_model(kind: InterpolationKind,
                             n_channels: int) -> dict[str, float]:
    """Rough per-focal-point arithmetic cost of each interpolation strategy.

    Used by the ablation experiment to put the image-quality benefit of
    fractional delays against its hardware cost: linear interpolation doubles
    the echo-buffer read bandwidth and adds one multiply-add per channel.
    """
    if kind is InterpolationKind.NEAREST:
        return {"buffer_reads": float(n_channels),
                "multiplies": 0.0,
                "additions": float(n_channels)}
    if kind is InterpolationKind.LINEAR:
        return {"buffer_reads": 2.0 * n_channels,
                "multiplies": 2.0 * n_channels,
                "additions": 2.0 * n_channels}
    raise ValueError(f"unknown interpolation kind: {kind!r}")
