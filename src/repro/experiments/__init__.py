"""Experiment harness: one module per paper table/figure (see DESIGN.md index).

Every module exposes ``run(system=None, ...) -> dict`` returning the measured
figures alongside a ``paper_reference`` entry holding the values printed in
the paper, plus a ``main()`` that formats the comparison for humans.  The
benchmarks under ``benchmarks/`` call ``run`` and print the same rows.
"""

from . import (
    e01_requirements,
    e02_traversal,
    e03_piecewise,
    e04_tablefree_accuracy,
    e05_tablesteer_accuracy,
    e06_fixedpoint,
    e07_storage,
    e08_table2,
    e09_throughput,
    e10_imaging,
    e11_runtime_throughput,
)

ALL_EXPERIMENTS = {
    "E1": e01_requirements,
    "E2": e02_traversal,
    "E3": e03_piecewise,
    "E4": e04_tablefree_accuracy,
    "E5": e05_tablesteer_accuracy,
    "E6": e06_fixedpoint,
    "E7": e07_storage,
    "E8": e08_table2,
    "E9": e09_throughput,
    "E10": e10_imaging,
    "E11": e11_runtime_throughput,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "e01_requirements",
    "e02_traversal",
    "e03_piecewise",
    "e04_tablefree_accuracy",
    "e05_tablesteer_accuracy",
    "e06_fixedpoint",
    "e07_storage",
    "e08_table2",
    "e09_throughput",
    "e10_imaging",
    "e11_runtime_throughput",
]
