"""Experiment E1: delay-table scale of the naive approach (Section II-B/II-C).

Paper claims for the 100x100 / 128x128x1000 system:

* ~164 x 10^9 delay coefficients without any optimisation;
* ~2.5 x 10^12 delay values/s needed at 15 volumes/s;
* storage/bandwidth far beyond any off-chip memory system;
* TABLESTEER's decomposition shrinks storage to 2.5 x 10^6 table entries
  (45 Mb at 18 bit) plus 832 x 10^3 correction values (14.3 Mb).
"""

from __future__ import annotations

from ..analysis.requirements import requirements_report
from ..config import SystemConfig, paper_system
from ..hardware.report import full_table_row


def run(system: SystemConfig | None = None) -> dict[str, object]:
    """Run the requirements analysis and return the paper-comparable figures."""
    system = system or paper_system()
    report = requirements_report(system)
    baseline = full_table_row(system)
    return {
        "system": system.name,
        "requirements": report.as_dict(),
        "full_table_baseline": baseline,
        "paper_reference": {
            "naive_coefficients": 164e9,
            "required_delay_rate_per_second": 2.5e12,
            "symmetric_table_entries": 2.5e6,
            "symmetric_table_megabits_18b": 45.0,
            "correction_values": 832e3,
            "correction_megabits_18b": 14.3,
        },
    }


def main(system: SystemConfig | None = None) -> None:
    """Print the requirements report for the paper system."""
    result = run(system=system)
    requirements = result["requirements"]
    print("Experiment E1: delay-table requirements (paper system)")
    print(f"  focal points                : {requirements['focal_points']:.3e}")
    print(f"  receive elements            : {requirements['elements']:.0f}")
    print(f"  naive coefficients          : {requirements['naive_coefficients']:.3e}"
          f"   (paper ~1.64e11)")
    print(f"  required delay rate         : "
          f"{requirements['required_delay_rate_per_second']:.3e} /s (paper ~2.5e12)")
    print(f"  naive storage               : "
          f"{requirements['naive_storage_gigabytes']:.1f} GB")
    print(f"  naive access bandwidth      : "
          f"{requirements['naive_bandwidth_terabytes_per_second']:.2f} TB/s")
    print(f"  TABLESTEER table entries    : "
          f"{requirements['symmetric_table_entries']:.3e} (paper 2.5e6)")
    print(f"  TABLESTEER table storage    : "
          f"{requirements['symmetric_table_megabits_18b']:.1f} Mb (paper 45 Mb)")
    print(f"  TABLESTEER corrections      : "
          f"{requirements['correction_values']:.3e} (paper 832e3)")
    print(f"  TABLESTEER correction bits  : "
          f"{requirements['correction_megabits_18b']:.1f} Mb (paper 14.3 Mb)")


if __name__ == "__main__":
    main()
