"""Experiment E9: delay-generation throughput (Section II-C / V-B, Fig. 4).

Paper claims:

* realtime 3D imaging needs ~2.5 x 10^12 delay values/s at 15 volumes/s;
* one Fig. 4 block (1 BRAM read + 8 x-corrections + 16 y-corrections) emits
  128 steered delays per clock using 136 adders;
* 128 such blocks reach a peak 3.3 Tdelays/s at 200 MHz, i.e. ~20 volumes/s;
* TABLEFREE delivers one delay per element per clock, ~1 fps per 20 MHz, so
  167 MHz gives ~8 fps.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig, paper_system
from ..core.reference_table import ReferenceDelayTable
from ..kernels import TilePlanner, parse_memory_budget, plan_storage_bytes
from ..core.steering import SteeringCorrections
from ..hardware.architecture import BlockGeometry, DelayComputeBlock, paper_block_array
from ..hardware.timing import (
    frames_per_second_per_mhz,
    required_delay_rate,
    tablefree_throughput,
    tablesteer_throughput,
)


def run(system: SystemConfig | None = None) -> dict[str, object]:
    """Compute throughput figures and validate the Fig. 4 block dataflow."""
    system = system or paper_system()
    array = paper_block_array()
    geometry = array.geometry

    tablesteer = tablesteer_throughput(
        system, n_blocks=array.n_blocks,
        delays_per_block_per_cycle=geometry.delays_per_cycle,
        clock_hz=200e6)
    tablefree = tablefree_throughput(
        system, n_units=system.transducer.element_count, clock_hz=167e6)

    # Functional check of the block dataflow on synthetic values: the block's
    # two-stage adder tree must equal the direct reference+correction sum.
    rng = np.random.default_rng(9)
    block = DelayComputeBlock(geometry=geometry)
    reference_sample = float(rng.uniform(100, 8000))
    x_corr = rng.uniform(-100, 100, geometry.nx)
    y_corr = rng.uniform(-100, 100, geometry.ny)
    block_output = block.process_cycle(reference_sample, x_corr, y_corr)
    direct = np.floor(reference_sample + x_corr[:, None] + y_corr[None, :] + 0.5)
    dataflow_matches = bool(np.array_equal(block_output, direct.astype(np.int64)))

    # Software-runtime counterpart of the storage argument: a compiled
    # repro.kernels plan is the "full delay table" in software form.  At
    # paper scale it does not fit (terabytes) — the reason both the paper's
    # hardware and our streaming runtime generate/compile once and reuse —
    # while the float32 policy shaves the weight tensor by 4 bytes/entry.
    n_points = system.volume.focal_point_count
    n_elements = system.transducer.element_count
    plan_storage = {
        "entries": n_points * n_elements,
        "float64_bytes": plan_storage_bytes(n_points, n_elements, "float64"),
        "float32_bytes": plan_storage_bytes(n_points, n_elements, "float32"),
    }

    # Tiled execution closes the storage gap: under a commodity memory
    # budget the planner streams budget-sized delay segments through the
    # byte-bounded plan cache, so the resident plan bytes never exceed the
    # budget while the swept volume is bit-identical to the untiled plan.
    budget = parse_memory_budget("8G")
    planner = TilePlanner(
        (system.volume.n_theta, system.volume.n_phi, system.volume.n_depth),
        n_elements, budget)
    memory_budget = {
        "budget_bytes": budget,
        "untiled_plan_bytes": planner.untiled_bytes,
        "n_tiles": planner.n_tiles,
        "tile_points": planner.tile_points,
        "tile_bytes": planner.tile_bytes,
        "peak_plan_bytes_bound": planner.tile_bytes,
        "fits_budget": planner.tile_bytes <= budget,
    }

    return {
        "system": system.name,
        "required_delay_rate": required_delay_rate(system),
        "plan_storage": plan_storage,
        "memory_budget": memory_budget,
        "block": {
            "adders": geometry.adder_count,
            "rounding_adders": geometry.rounding_adder_count,
            "delays_per_cycle": geometry.delays_per_cycle,
            "dataflow_matches_direct_sum": dataflow_matches,
        },
        "array": {
            "n_blocks": array.n_blocks,
            "total_adders": array.total_adders,
            "delays_per_cycle": array.delays_per_cycle,
            "peak_rate_at_200mhz": array.peak_delay_rate(200e6),
            "streaming_bram_megabits": array.total_bram_bits / 1e6,
        },
        "tablesteer_throughput": {
            "delay_rate": tablesteer.delay_rate,
            "frame_rate": tablesteer.achievable_frame_rate,
            "meets_target": tablesteer.meets_target,
        },
        "tablefree_throughput": {
            "delay_rate": tablefree.delay_rate,
            "frame_rate": tablefree.achievable_frame_rate,
            "fps_per_mhz": frames_per_second_per_mhz(system),
            "meets_target": tablefree.meets_target,
        },
        "paper_reference": {
            "required_delay_rate": 2.5e12,
            "block_adders": 136,
            "block_delays_per_cycle": 128,
            "peak_rate": 3.3e12,
            "tablesteer_frame_rate": 19.7,
            "tablefree_frame_rate": 7.8,
            "fps_per_20mhz": 1.0,
        },
    }


def run_with_real_tables(system: SystemConfig) -> dict[str, object]:
    """Drive one Fig. 4 block with real table/correction values (small systems).

    Streams an actual reference-table depth sequence through a block with the
    system's real correction coefficients for one group of scanlines, and
    verifies the emitted indices against the direct TABLESTEER computation.
    Intended for scaled-down systems in tests.
    """
    reference = ReferenceDelayTable.build(system)
    corrections = SteeringCorrections.build(system)
    nx = min(8, len(reference.grid.thetas))
    ny = min(16, len(reference.grid.phis))
    geometry = BlockGeometry(nx=nx, ny=ny)
    block = DelayComputeBlock(geometry=geometry)

    element_ix, element_iy = 0, 0
    depth_sequence = np.arange(len(reference.grid.depths))
    reference_samples = reference.delays[element_ix, element_iy, depth_sequence]
    # One correction per (theta, phi) in the block's window, for this element.
    x_corr = corrections.x_terms[element_ix, :nx, 0]
    y_corr = corrections.y_terms[element_iy, :ny]
    emitted = block.process_sequence(reference_samples, x_corr, y_corr)

    direct = np.floor(reference_samples[:, None, None]
                      + x_corr[None, :, None] + y_corr[None, None, :] + 0.5)
    return {
        "matches_direct": bool(np.array_equal(emitted, direct.astype(np.int64))),
        "emitted_shape": emitted.shape,
        "delays_per_cycle": geometry.delays_per_cycle,
    }


def run_tiled_demo(memory_budget_bytes: int | str = "256K",
                   frames: int = 2) -> dict[str, object]:
    """Execute a budgeted tiled sweep and report budget vs achieved peak.

    Runs the ``tiny`` preset once untiled and once under
    ``memory_budget_bytes`` (small enough to force several tiles), checks
    the two volume streams are bit-identical, and reports the measured
    peak resident plan bytes against the budget.  This is the executable
    counterpart of the analytic paper-scale tiling in :func:`run`.
    """
    from ..api import EngineSpec, ScanSpec, Session

    spec = EngineSpec(system="tiny", backend="vectorized")
    scan = ScanSpec(scenario="moving_point", frames=frames)
    budget = parse_memory_budget(memory_budget_bytes)

    with Session(spec) as session:
        frame_requests = scan.build_frames(session.system)
        with session.service() as service:
            untiled = [result.rf
                       for result in service.stream_all(frame_requests)]

    tiled_spec = spec.with_updates(memory_budget_bytes=budget)
    with Session(tiled_spec) as session:
        frame_requests = scan.build_frames(session.system)
        with session.service() as service:
            tiled = [result.rf
                     for result in service.stream_all(frame_requests)]
        stats = session.cache.stats

    bit_identical = len(tiled) == len(untiled) and all(
        np.array_equal(a, b) for a, b in zip(tiled, untiled))
    return {
        "system": "tiny",
        "frames": frames,
        "memory_budget_bytes": budget,
        "peak_plan_bytes": stats.peak_bytes,
        "within_budget": stats.peak_bytes <= budget,
        "evictions": stats.evictions,
        "bit_identical_to_untiled": bit_identical,
    }


def main(system: SystemConfig | None = None) -> None:
    """Print the throughput analysis."""
    result = run(system=system)
    print("Experiment E9: delay-generation throughput (paper system)")
    print(f"  required delay rate       : {result['required_delay_rate']:.3e} /s "
          f"(paper 2.5e12)")
    block = result["block"]
    print(f"  Fig. 4 block              : {block['adders']} adders "
          f"({block['rounding_adders']} rounding), "
          f"{block['delays_per_cycle']} delays/cycle (paper: 136 / 128)")
    array = result["array"]
    print(f"  128-block array           : {array['peak_rate_at_200mhz']:.3e} "
          f"delays/s at 200 MHz (paper 3.3e12)")
    steer = result["tablesteer_throughput"]
    free = result["tablefree_throughput"]
    print(f"  TABLESTEER frame rate     : {steer['frame_rate']:.1f} fps "
          f"(paper 19.7)")
    print(f"  TABLEFREE frame rate      : {free['frame_rate']:.1f} fps at 167 MHz "
          f"(paper 7.8); {20 * free['fps_per_mhz']:.2f} fps per 20 MHz")
    storage = result["plan_storage"]
    print(f"  compiled-plan storage     : {storage['entries']:.3e} entries -> "
          f"{storage['float64_bytes'] / 1e9:.2f} GB float64 / "
          f"{storage['float32_bytes'] / 1e9:.2f} GB float32 "
          f"(why delays must stream, Section II-B)")
    tiling = result["memory_budget"]
    print(f"  tiled under 8 GB budget   : {tiling['n_tiles']} tiles of "
          f"{tiling['tile_points']:.3e} voxels, "
          f"{tiling['tile_bytes'] / 1e9:.2f} GB resident peak "
          f"(untiled {tiling['untiled_plan_bytes'] / 1e12:.2f} TB; "
          f"fits budget: {tiling['fits_budget']})")
    demo = run_tiled_demo()
    print(f"  tiled demo (tiny preset)  : budget "
          f"{demo['memory_budget_bytes']} B -> peak "
          f"{demo['peak_plan_bytes']} B resident "
          f"(within budget: {demo['within_budget']}, "
          f"bit-identical to untiled: {demo['bit_identical_to_untiled']})")


if __name__ == "__main__":
    main()
