"""Experiment E5: TABLESTEER steering accuracy (Section V-A / VI-A, Fig. 3).

Paper claims:

* the theoretical (Lagrange-type) bound on the far-field approximation error
  is very loose: ~6.7 us, i.e. ~214 samples at 32 MHz;
* the worst errors observed in practice are ~3.1 us (99 samples) and sit at
  extreme steering angles / very short distances, where directivity and
  apodization suppress the contribution anyway;
* the volume-average absolute error of the algorithm is ~44.6 ns
  (~1.43 samples);
* the additional fixed-point error is at most +/-1 sample.
"""

from __future__ import annotations

import numpy as np

from ..analysis.accuracy import (
    directivity_mask,
    evaluate_provider,
    sample_volume_points,
    selection_errors,
)
from ..config import SystemConfig, small_system
from ..core.exact import ExactDelayEngine
from ..core.tablesteer import (
    TableSteerConfig,
    TableSteerDelayGenerator,
    lagrange_error_bound_seconds,
)


def run(system: SystemConfig | None = None,
        max_points: int = 600,
        seed: int = 5) -> dict[str, object]:
    """Measure TABLESTEER accuracy against the exact delay engine."""
    system = system or small_system()
    points = sample_volume_points(system, max_points=max_points, seed=seed)
    exact = ExactDelayEngine.from_config(system)
    fs = system.acoustic.sampling_frequency

    results: dict[str, object] = {"system": system.name}

    # Algorithmic (steering) error only: float table, float corrections.
    float_generator = TableSteerDelayGenerator.from_config(
        system, TableSteerConfig(total_bits=None))
    float_report = evaluate_provider(float_generator, system,
                                     "TABLESTEER (float)", points=points)
    results["float"] = float_report.as_dict()

    # Fixed-point design points.
    for bits in (13, 14, 18):
        generator = TableSteerDelayGenerator.from_config(
            system, TableSteerConfig(total_bits=bits))
        report = evaluate_provider(generator, system,
                                   f"TABLESTEER-{bits}b", points=points)
        results[f"fixed_{bits}b"] = report.as_dict()

    # Theoretical bound vs observed maxima, in seconds and samples.
    bound_seconds = lagrange_error_bound_seconds(system)
    errors = selection_errors(float_generator, exact, points)
    mask = directivity_mask(exact, points)
    observed_max_all = float(np.max(np.abs(errors)))
    observed_max_directivity = float(np.max(np.abs(errors[mask]))) \
        if np.any(mask) else observed_max_all
    results["bounds"] = {
        "lagrange_bound_seconds": bound_seconds,
        "lagrange_bound_samples": bound_seconds * fs,
        "observed_max_samples_all": observed_max_all,
        "observed_max_samples_within_directivity": observed_max_directivity,
        "observed_mean_samples": float(np.mean(np.abs(errors))),
        "observed_mean_seconds": float(np.mean(np.abs(errors))) / fs,
    }
    results["paper_reference"] = {
        "lagrange_bound_seconds": 6.7e-6,
        "lagrange_bound_samples": 214,
        "observed_max_seconds": 3.1e-6,
        "observed_max_samples": 99,
        "observed_mean_seconds": 44.641e-9,
        "observed_mean_samples": 1.4285,
        "fixed_point_extra_error_samples": 1,
    }
    return results


def main(system: SystemConfig | None = None) -> None:
    """Print the TABLESTEER accuracy results."""
    result = run(system=system)
    print(f"Experiment E5: TABLESTEER accuracy (system: {result['system']})")
    bounds = result["bounds"]
    print(f"  Lagrange-type bound        : {bounds['lagrange_bound_seconds'] * 1e6:.2f} us "
          f"({bounds['lagrange_bound_samples']:.0f} samples)  [paper: 6.7 us / 214]")
    print(f"  observed max |error|       : "
          f"{bounds['observed_max_samples_all']:.1f} samples "
          f"(within directivity: {bounds['observed_max_samples_within_directivity']:.1f})"
          f"  [paper: 99]")
    print(f"  observed mean |error|      : "
          f"{bounds['observed_mean_samples']:.3f} samples  [paper: 1.43]")
    for key in ("float", "fixed_13b", "fixed_14b", "fixed_18b"):
        stats = result[key]["all_points"]
        print(f"  {key:10s}: mean |err| = {stats['mean_abs']:.3f}, "
              f"max |err| = {stats['max_abs']:.1f} samples")


if __name__ == "__main__":
    main()
