"""Experiment E7: TABLESTEER storage and streaming bandwidth (Section V-B).

Paper claims for the 18-bit design on the paper system:

* reference table: 2.5 x 10^6 entries -> 45 Mb on-chip if stored whole;
* corrections: 832 x 10^3 values -> 14.3 Mb;
* streaming alternative: 128 BRAM banks of 1k x 18 bit (2.3 Mb) fed from
  DRAM at ~5.3 GB/s (4.1 GB/s for the 14-bit variant) with ample latency
  margin, because the nappe-by-nappe beamformer consumes the table one
  constant-depth slice at a time.
"""

from __future__ import annotations

from ..config import SystemConfig, paper_system, small_system
from ..core.reference_table import ReferenceDelayTable
from ..core.steering import SteeringCorrections
from ..fixedpoint.format import tablesteer_formats
from ..hardware.bram import (
    CircularBufferSimulator,
    make_streaming_plan,
    parallel_read_conflicts,
    staggered_bank_assignment,
)
from ..hardware.timing import tablesteer_dram_bandwidth


def _analytical_counts(system: SystemConfig) -> dict[str, float]:
    """Closed-form table/correction sizes (exact, cheap at any scale)."""
    ex, ey = system.transducer.elements_x, system.transducer.elements_y
    quadrant_entries = ((ex + 1) // 2) * ((ey + 1) // 2) * system.volume.n_depth
    correction_values = (ex * system.volume.n_theta
                         * ((system.volume.n_phi + 1) // 2)
                         + ey * system.volume.n_phi)
    return {"reference_entries": float(quadrant_entries),
            "correction_values": float(correction_values)}


def run(system: SystemConfig | None = None,
        build_tables: bool | None = None) -> dict[str, object]:
    """Compute storage and bandwidth figures, optionally building the real tables.

    ``build_tables`` defaults to True for scaled-down systems and False for
    the paper system (whose full reference table is ~10^7 float64 entries —
    buildable, but unnecessary since the counts are closed-form).
    """
    system = system or paper_system()
    if build_tables is None:
        build_tables = system.volume.focal_point_count <= 1_000_000

    counts = _analytical_counts(system)
    results: dict[str, object] = {"system": system.name, "analytical": counts}

    per_width = {}
    for bits in (14, 18):
        ref_fmt, corr_fmt = tablesteer_formats(bits)
        reference_bits = counts["reference_entries"] * ref_fmt.total_bits
        correction_bits = counts["correction_values"] * corr_fmt.total_bits
        bandwidth = tablesteer_dram_bandwidth(
            system, table_entries=int(counts["reference_entries"]),
            entry_bits=ref_fmt.total_bits)
        plan = make_streaming_plan(
            table_entries=int(counts["reference_entries"]),
            entry_bits=ref_fmt.total_bits,
            insonifications_per_second=(system.beamformer.frame_rate
                                        * system.beamformer.insonifications_per_volume))
        per_width[bits] = {
            "reference_megabits": reference_bits / 1e6,
            "correction_megabits": correction_bits / 1e6,
            "streaming_onchip_megabits": plan.on_chip_bits / 1e6,
            "dram_bandwidth_gb_per_s": bandwidth / 1e9,
            "chunks_per_table": plan.chunks_per_table,
        }
    results["per_width"] = per_width

    # Circular-buffer feasibility: each of the 128 banks holds 1k words and
    # must stream its share of the reference table once per insonification.
    # The per-bank consumption rate is well below one word per cycle, so a
    # matched DRAM refill with 1k cycles of latency never starves the banks.
    clock = system.beamformer.clock_frequency
    insonification_rate = (system.beamformer.frame_rate
                           * system.beamformer.insonifications_per_volume)
    cycles_per_insonification = clock / insonification_rate
    words_per_bank_per_insonification = counts["reference_entries"] / 128.0
    consume_per_cycle = (words_per_bank_per_insonification
                         / cycles_per_insonification)
    simulator = CircularBufferSimulator(
        capacity_words=1024,
        consume_words_per_cycle=consume_per_cycle,
        refill_words_per_cycle=consume_per_cycle,
        initial_fill_words=1024)
    results["circular_buffer"] = simulator.run(n_cycles=20_000,
                                               refill_latency_cycles=1000)
    results["circular_buffer"]["consume_words_per_cycle"] = consume_per_cycle

    # Bank staggering: consecutive depths map to different banks.
    assignment = staggered_bank_assignment(system.volume.n_depth, 128)
    results["bank_conflicts_window_128"] = parallel_read_conflicts(
        assignment, min(128, system.volume.n_depth))

    if build_tables:
        reference = ReferenceDelayTable.build(system)
        corrections = SteeringCorrections.build(system)
        results["built"] = {
            "reference_entries": reference.quadrant_entry_count,
            "reference_megabits_18b": reference.storage_megabits(),
            "symmetry_savings": reference.symmetry_savings,
            "directivity_prunable_fraction": reference.prunable_fraction(),
            "correction_values": corrections.precomputed_value_count,
            "correction_megabits_18b": corrections.storage_megabits(),
            "max_correction_samples": corrections.max_correction_samples(),
        }
    results["paper_reference"] = {
        "reference_entries": 2.5e6,
        "reference_megabits_18b": 45.0,
        "correction_values": 832e3,
        "correction_megabits_18b": 14.3,
        "streaming_onchip_megabits": 2.3,
        "dram_bandwidth_gb_per_s_18b": 5.3,
        "dram_bandwidth_gb_per_s_14b": 4.1,
    }
    return results


def main(system: SystemConfig | None = None) -> None:
    """Print the storage / bandwidth analysis for the paper system."""
    result = run(system=system)
    print("Experiment E7: TABLESTEER storage and bandwidth (paper system)")
    analytical = result["analytical"]
    print(f"  reference table entries : {analytical['reference_entries']:.3e} "
          f"(paper 2.5e6)")
    print(f"  correction values       : {analytical['correction_values']:.3e} "
          f"(paper 832e3)")
    for bits, entry in result["per_width"].items():
        print(f"  {bits}-bit design:")
        print(f"    reference storage     : {entry['reference_megabits']:.1f} Mb")
        print(f"    correction storage    : {entry['correction_megabits']:.1f} Mb")
        print(f"    streaming on-chip     : {entry['streaming_onchip_megabits']:.2f} Mb")
        print(f"    DRAM bandwidth        : {entry['dram_bandwidth_gb_per_s']:.2f} GB/s")
    buffer_stats = result["circular_buffer"]
    print(f"  circular buffer stalls  : {buffer_stats['stall_cycles']:.0f} "
          f"(min fill {buffer_stats['min_fill_words']:.0f} words)")
    print(f"  bank conflicts (128-deep window): "
          f"{result['bank_conflicts_window_128']}")


if __name__ == "__main__":
    main()
