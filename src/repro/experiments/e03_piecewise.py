"""Experiment E3: piecewise-linear square root (Section IV-B / Fig. 2).

Paper claims:

* ~70 linear segments bound the square-root approximation error below
  delta = 0.25 delay samples over the system's argument range;
* because the argument changes gradually between consecutive focal points,
  the active segment can be tracked incrementally (no search), which is what
  keeps the per-element hardware down to one multiplier, one adder and a few
  LUTs.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig, paper_system
from ..core.piecewise import PiecewiseSqrt
from ..core.tablefree import TableFreeConfig, TableFreeDelayGenerator


def run(system: SystemConfig | None = None,
        delta: float = 0.25,
        error_samples: int = 20_000,
        seed: int = 3) -> dict[str, object]:
    """Build the PWL segmentation for a system and characterise it.

    The segmentation itself is cheap even for the paper system (it only
    depends on the argument range, not the grid size), so the default runs at
    paper scale.  Segment-tracking statistics are measured along a scanline
    of the given system.
    """
    system = system or paper_system()
    generator = TableFreeDelayGenerator.from_config(
        system, TableFreeConfig(delta=delta))
    pwl = generator.pwl

    rng = np.random.default_rng(seed)
    xs = rng.uniform(pwl.x_min, pwl.x_max, error_samples)
    errors = generator._pwl_exact_coeffs.error(xs)

    # Segment-tracking behaviour along a representative steered scanline.
    mid = len(generator.grid.thetas) // 4
    tracking = generator.segment_step_statistics(i_theta=mid, i_phi=mid,
                                                 element_index=0)

    delta_sweep = {}
    for d in (0.5, 0.25, 0.125):
        sweep_pwl = PiecewiseSqrt.build(pwl.x_min, pwl.x_max, d)
        delta_sweep[d] = sweep_pwl.segment_count

    return {
        "system": system.name,
        "delta": delta,
        "segment_count": pwl.segment_count,
        "max_abs_error_samples": float(np.max(np.abs(errors))),
        "mean_abs_error_samples": float(np.mean(np.abs(errors))),
        "segment_tracking": tracking,
        "segments_vs_delta": delta_sweep,
        "paper_reference": {
            "segment_count": 70,
            "delta": 0.25,
        },
    }


def main(system: SystemConfig | None = None) -> None:
    """Print the PWL square-root characterisation."""
    result = run(system=system)
    print("Experiment E3: piecewise-linear square root "
          f"(system: {result['system']})")
    print(f"  delta (error bound)      : {result['delta']} samples")
    print(f"  segments needed          : {result['segment_count']} (paper: 70)")
    print(f"  measured max |error|     : "
          f"{result['max_abs_error_samples']:.4f} samples")
    print(f"  measured mean |error|    : "
          f"{result['mean_abs_error_samples']:.4f} samples")
    tracking = result["segment_tracking"]
    print(f"  segment steps / point    : mean {tracking['mean_steps']:.4f}, "
          f"max {tracking['max_steps']:.0f}")
    print("  segments vs delta        : "
          + ", ".join(f"delta={d} -> {n}" for d, n in
                      result["segments_vs_delta"].items()))


if __name__ == "__main__":
    main()
