"""Experiment E8: Table II — architecture comparison on the Virtex-7.

Reproduces the resource / clock / bandwidth / throughput / frame-rate rows of
Table II with the analytical hardware model and (optionally) attaches the
measured accuracy numbers from experiments E4 and E5.
"""

from __future__ import annotations

from ..config import SystemConfig, paper_system, small_system
from ..hardware.device import virtex7_xc7vx1140t, virtex_ultrascale_projection
from ..hardware.report import format_table2, table2, tablefree_row
from . import e04_tablefree_accuracy, e05_tablesteer_accuracy

PAPER_TABLE2 = {
    "TABLEFREE": {
        "luts_pct": 100, "registers_pct": 23, "bram_pct": 0,
        "clock_mhz": 167, "dram_gb_per_s": 0.0,
        "mean_abs_error": 0.25, "max_abs_error": 2,
        "throughput_tdelays_per_s": 1.67, "frame_rate_fps": 7.8,
        "channels": "42x42",
    },
    "TABLESTEER-14b": {
        "luts_pct": 91, "registers_pct": 25, "bram_pct": 25,
        "clock_mhz": 200, "dram_gb_per_s": 4.1,
        "mean_abs_error": 1.55, "max_abs_error": 100,
        "throughput_tdelays_per_s": 3.3, "frame_rate_fps": 19.7,
        "channels": "100x100",
    },
    "TABLESTEER-18b": {
        "luts_pct": 100, "registers_pct": 30, "bram_pct": 25,
        "clock_mhz": 200, "dram_gb_per_s": 5.3,
        "mean_abs_error": 1.44, "max_abs_error": 100,
        "throughput_tdelays_per_s": 3.3, "frame_rate_fps": 19.7,
        "channels": "100x100",
    },
}
"""The rows of Table II exactly as printed in the paper, for comparison."""


def run(system: SystemConfig | None = None,
        include_accuracy: bool = False,
        accuracy_system: SystemConfig | None = None) -> dict[str, object]:
    """Generate the Table II rows for a system configuration.

    ``include_accuracy`` additionally runs the (slower) accuracy experiments
    on ``accuracy_system`` (default: the scaled-down system) and attaches
    mean/max selection errors to the rows, completing the "Inaccuracy"
    column.
    """
    system = system or paper_system()
    device = virtex7_xc7vx1140t()
    rows = table2(system, device=device)

    if include_accuracy:
        accuracy_system = accuracy_system or small_system()
        tablefree = e04_tablefree_accuracy.run(accuracy_system)
        tablesteer = e05_tablesteer_accuracy.run(accuracy_system)
        for row in rows:
            if row.name == "TABLEFREE":
                stats = tablefree["fixed_point"]["all_points"]
            elif row.name == "TABLESTEER-14b":
                stats = tablesteer["fixed_14b"]["all_points"]
            else:
                stats = tablesteer["fixed_18b"]["all_points"]
            row.mean_abs_error_samples = stats["mean_abs"]
            row.max_abs_error_samples = stats["max_abs"]

    ultrascale = tablefree_row(system, device=virtex_ultrascale_projection())
    return {
        "system": system.name,
        "rows": [row.as_dict() for row in rows],
        "formatted": format_table2(rows),
        "ultrascale_projection": ultrascale.as_dict(),
        "paper_reference": PAPER_TABLE2,
    }


def main(system: SystemConfig | None = None) -> None:
    """Print the reproduced Table II."""
    result = run(system=system)
    print("Experiment E8: Table II (Virtex-7 XC7VX1140T model)")
    print(result["formatted"])
    projection = result["ultrascale_projection"]
    print(f"\nUltraScale projection (TABLEFREE): channels "
          f"{projection['channels']}, frame rate "
          f"{projection['frame_rate_fps']} fps")


if __name__ == "__main__":
    main()
