"""Experiment E10: end-to-end imaging with the three delay generators.

The paper's argument that "image quality will be the same regardless of how
delays are obtained at runtime, so long as delays are equally accurate"
(Section II-A), and that the TABLESTEER errors are confined to the volume
edges, is exercised here end to end: a point-target phantom is insonified,
synthetic channel data are beamformed with exact, TABLEFREE and TABLESTEER
delays, and the resulting images are compared (peak position, PSF width,
normalised RMS difference).
"""

from __future__ import annotations

import os

import numpy as np

from ..acoustics.echo import EchoSimulator
from ..acoustics.phantom import point_target
from ..architectures import ARCHITECTURES
from ..beamformer.das import DelayAndSumBeamformer
from ..beamformer.drivers import reconstruct_plane
from ..beamformer.image import (
    envelope,
    normalized_rms_difference,
    point_spread_metrics,
)
from ..config import SystemConfig, small_system
from ..geometry.volume import FocalGrid


def run(system: SystemConfig | None = None,
        target_depth_fraction: float = 0.5,
        target_theta_fraction: float = 0.0,
        noise_std: float = 0.0) -> dict[str, object]:
    """Image a point target with all three delay generators and compare.

    The reconstruction is a single (theta, depth) plane at the centre
    elevation, which keeps the experiment tractable while still exercising
    steering (set ``target_theta_fraction`` nonzero to move the target off
    axis, where the TABLESTEER approximation error is larger).  The target is
    snapped to the nearest focal-grid node so that at least one reconstructed
    point coincides with it even on coarse test grids.
    """
    system = system or small_system()
    volume = system.volume
    grid = FocalGrid.from_config(system)
    requested_depth = volume.depth_min + target_depth_fraction * volume.depth_span
    requested_theta = target_theta_fraction * volume.theta_max
    depth = float(grid.depths[np.argmin(np.abs(grid.depths - requested_depth))])
    theta = float(grid.thetas[np.argmin(np.abs(grid.thetas - requested_theta))])
    phantom = point_target(depth=depth, theta=theta)

    simulator = EchoSimulator.from_config(system)
    channel_data = simulator.simulate(phantom, noise_std=noise_std)

    providers = {
        "exact": ARCHITECTURES.create("exact", system),
        "tablefree": ARCHITECTURES.create("tablefree", system),
        "tablesteer_18b": ARCHITECTURES.create(
            "tablesteer", system, options={"total_bits": 18}),
    }

    images: dict[str, np.ndarray] = {}
    metrics: dict[str, object] = {}
    for name, provider in providers.items():
        beamformer = DelayAndSumBeamformer(system, provider)
        rf_plane = reconstruct_plane(beamformer, channel_data)
        env = envelope(rf_plane, axis=1)
        images[name] = env
        # Axial profile through the brightest scanline.
        peak_line = int(np.argmax(np.max(env, axis=1)))
        axial = env[peak_line, :]
        lateral = env[:, int(np.argmax(axial))]
        metrics[name] = {
            "peak_value": float(np.max(env)),
            "peak_theta_index": peak_line,
            "peak_depth_index": int(np.argmax(axial)),
            "axial": point_spread_metrics(axial).__dict__,
            "lateral": point_spread_metrics(lateral).__dict__,
        }

    reference = images["exact"]
    comparisons = {
        name: {
            "nrms_vs_exact": normalized_rms_difference(reference, image),
            "peak_shift_depth": abs(metrics[name]["peak_depth_index"]
                                    - metrics["exact"]["peak_depth_index"]),
            "peak_shift_theta": abs(metrics[name]["peak_theta_index"]
                                    - metrics["exact"]["peak_theta_index"]),
        }
        for name, image in images.items() if name != "exact"
    }
    return {
        "system": system.name,
        "target": {"depth_m": depth, "theta_rad": theta},
        "metrics": metrics,
        "comparisons": comparisons,
    }


def scheme_quality_sweep(system: SystemConfig | None = None,
                         scenarios: tuple[str, ...] = ("static_point",
                                                       "cyst"),
                         schemes: tuple[str, ...] = ("focused", "planewave",
                                                     "synthetic_aperture"),
                         architectures: tuple[str, ...] = ("exact",
                                                           "tablesteer"),
                         bit_widths: tuple[int | None, ...] = (None, 14),
                         store: "object | str | None" = None,
                         ) -> dict[tuple, dict[str, float]]:
    """Image quality across scenario x scheme x architecture x bit width.

    One :class:`repro.api.Session` per kernel bit width (``None`` = float
    datapath) runs the same declarative sweep grid; each cell reports the
    FWHM/CNR/gCNR scoring-hook figures.  This is the image-level complement
    of E6's delay-statistics story: it shows where transmit-scheme choice
    and fixed-point width actually move resolution and contrast.

    ``store`` (a :class:`repro.sweep.SweepStore` or a directory path) opts
    into content-addressed reuse: each width's grid runs through a
    :class:`repro.sweep.SweepExecutor`, so cells already completed by an
    earlier run — or by a ``repro sweep`` invocation sharing the store —
    are read back instead of recomputed (quantisation is part of the cell
    key, so widths never collide).
    """
    from ..api import EngineSpec, Session, SweepSpec
    from ..config import tiny_system

    system = system or tiny_system()
    sweep = SweepSpec(scenarios=scenarios, schemes=schemes,
                      architectures=architectures)
    results: dict[tuple, dict[str, float]] = {}
    for bits in bit_widths:
        with Session(EngineSpec(system=system, quantization=bits)) as session:
            if store is None:
                grid = session.sweep(spec=sweep)
            else:
                from ..sweep import SweepExecutor
                grid = SweepExecutor(session, store=store).run(sweep)
            for key, cell in grid.items():
                results[(*key, bits)] = cell["metrics"]
    return results


def main(system: SystemConfig | None = None) -> None:
    """Print the imaging comparison and the scheme-quality sweep."""
    result = run(system=system)
    print(f"Experiment E10: point-target imaging (system: {result['system']})")
    target = result["target"]
    print(f"  target at depth {1e3 * target['depth_m']:.1f} mm, "
          f"theta {np.degrees(target['theta_rad']):.1f} deg")
    for name, stats in result["metrics"].items():
        print(f"  {name:15s}: peak at (theta idx {stats['peak_theta_index']}, "
              f"depth idx {stats['peak_depth_index']}), "
              f"axial FWHM {stats['axial']['fwhm_samples']:.1f} px")
    for name, comparison in result["comparisons"].items():
        print(f"  {name:15s}: NRMS vs exact = {comparison['nrms_vs_exact']:.3f}, "
              f"peak shift = ({comparison['peak_shift_theta']}, "
              f"{comparison['peak_shift_depth']}) px")

    # The sweep runs on the tiny preset regardless of `system`: 24 cells of
    # compounded acquisitions stay interactive there while showing the
    # same scheme x architecture x bit-width trends.  REPRO_SWEEP_STORE
    # opts into the content-addressed store: reruns (and `repro sweep`
    # invocations sharing the directory) skip completed cells.
    store = os.environ.get("REPRO_SWEEP_STORE") or None
    if store:
        print(f"\n  [sweep store: {store}]")
    sweep = scheme_quality_sweep(store=store)
    print()
    print("  Scheme quality sweep (tiny system; NaN = not applicable):")
    print(f"  {'scenario':14s} {'scheme':20s} {'architecture':12s} "
          f"{'bits':>5s} {'ax.FWHM':>8s} {'CNR':>6s} {'gCNR':>6s}")
    for (scenario, scheme, architecture, bits), metrics in sweep.items():
        print(f"  {scenario:14s} {scheme:20s} {architecture:12s} "
              f"{'float' if bits is None else bits:>5} "
              f"{metrics['fwhm_axial']:8.2f} {metrics['cnr']:6.2f} "
              f"{metrics['gcnr']:6.2f}")


if __name__ == "__main__":
    main()
