"""Experiment E4: TABLEFREE delay accuracy (Section VI-A).

Paper claims (delta = 0.25 samples, fixed-point implementation):

* theoretical error of the two summed square-root approximations:
  mean |error| ~ 0.204 samples, max 0.5 samples;
* measured selection error against an exact computation: mean |error|
  ~ 0.2489 samples, max 2 samples (the increase over theory is a
  fixed-point effect);
* the inaccuracy is tunable via delta and the fixed-point precision.
"""

from __future__ import annotations

import numpy as np

from ..analysis.accuracy import evaluate_provider, sample_volume_points
from ..config import SystemConfig, small_system
from ..core.tablefree import TableFreeConfig, TableFreeDelayGenerator


def run(system: SystemConfig | None = None,
        delta: float = 0.25,
        max_points: int = 800,
        seed: int = 4) -> dict[str, object]:
    """Measure TABLEFREE selection error against the exact delay engine.

    ``max_points`` focal points are sampled over the volume (corners always
    included); each contributes one error per receive element, so the error
    population is ``max_points * element_count``.
    """
    system = system or small_system()
    points = sample_volume_points(system, max_points=max_points, seed=seed)

    results: dict[str, object] = {"system": system.name, "delta": delta}

    # Algorithmic error only (float coefficients, no fixed point).
    float_generator = TableFreeDelayGenerator.from_config(
        system, TableFreeConfig(delta=delta, quantize_coefficients=False,
                                delay_fraction_bits=-1))
    float_report = evaluate_provider(float_generator, system,
                                     "TABLEFREE (float)", points=points)
    # Fixed-point datapath (the hardware design point).
    fixed_generator = TableFreeDelayGenerator.from_config(
        system, TableFreeConfig(delta=delta))
    fixed_report = evaluate_provider(fixed_generator, system,
                                     "TABLEFREE (fixed point)", points=points)

    results["float"] = float_report.as_dict()
    results["fixed_point"] = fixed_report.as_dict()
    results["segment_count"] = fixed_generator.segment_count
    results["paper_reference"] = {
        "theoretical_mean_abs": 0.204,
        "theoretical_max_abs": 0.5,
        "measured_mean_abs": 0.2489,
        "measured_max_abs": 2.0,
    }

    # Delta sweep: accuracy is tunable by the segmentation error bound.
    sweep = {}
    for d in (0.5, 0.25, 0.125):
        generator = TableFreeDelayGenerator.from_config(
            system, TableFreeConfig(delta=d))
        report = evaluate_provider(generator, system, f"delta={d}",
                                   points=points[:max(1, len(points) // 4)])
        sweep[d] = {
            "mean_abs": report.all_points.mean_abs,
            "max_abs": report.all_points.max_abs,
            "segments": generator.segment_count,
        }
    results["delta_sweep"] = sweep
    return results


def main(system: SystemConfig | None = None) -> None:
    """Print the TABLEFREE accuracy results."""
    result = run(system=system)
    print("Experiment E4: TABLEFREE accuracy "
          f"(system: {result['system']}, delta={result['delta']})")
    fixed = result["fixed_point"]["all_points"]
    flt = result["float"]["all_points"]
    print(f"  float datapath   : mean |err| = {flt['mean_abs']:.4f}, "
          f"max |err| = {flt['max_abs']:.1f} samples")
    print(f"  fixed-point path : mean |err| = {fixed['mean_abs']:.4f}, "
          f"max |err| = {fixed['max_abs']:.1f} samples")
    ref = result["paper_reference"]
    print(f"  paper            : mean |err| = {ref['measured_mean_abs']}, "
          f"max |err| = {ref['measured_max_abs']} samples")
    print("  delta sweep:")
    for d, entry in result["delta_sweep"].items():
        print(f"    delta={d:<6}: mean |err| = {entry['mean_abs']:.4f}, "
              f"max |err| = {entry['max_abs']:.1f}, "
              f"segments = {entry['segments']}")


if __name__ == "__main__":
    main()
