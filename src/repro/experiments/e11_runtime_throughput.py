"""Experiment E11: streaming-runtime throughput across execution backends.

The software companion to E9: where E9 reproduces the paper's *hardware*
delay-rate arithmetic (Fig. 4 blocks, Tdelays/s), this experiment measures
what the same amortisation buys in the software runtime.  A cine sequence of
a moving point target is streamed through the :class:`BeamformingService`
once per execution backend; because probe geometry is constant across the
sequence, the delay/weight tensors are generated for the first frame only
and every later frame is served from the :class:`DelayTableCache` — the
software analogue of reading a precomputed table instead of recomputing
delays per sample.

Reported per backend: sustained frames/s and voxels/s, mean per-frame
latency, speedup over the ``reference`` per-scanline path, and the cache
hit/miss counters proving that repeated frames skip delay regeneration.
"""

from __future__ import annotations

from ..api import EngineSpec, ScanSpec, Session
from ..config import SystemConfig, tiny_system
from ..runtime import DelayTableCache


def run(system: SystemConfig | None = None,
        architecture: str = "tablesteer",
        n_frames: int = 8,
        backends: tuple[str, ...] = ("reference", "vectorized", "sharded"),
        ) -> dict[str, object]:
    """Stream ``n_frames`` cine frames through each backend and compare.

    The same pre-simulated channel-data sequence is replayed for every
    backend so the measured differences come from execution strategy alone.
    The engine family is described declaratively: one
    :class:`repro.api.EngineSpec` per backend, all sharing one
    :class:`repro.api.Session`'s simulator and grid.
    """
    spec = EngineSpec(system=system if system is not None else tiny_system(),
                      architecture=architecture)
    session = Session(spec)
    system = session.system
    scan = ScanSpec(scenario="moving_point", frames=n_frames)
    frames = scan.build_frames(system)

    # Pre-simulate the acquisitions once; all backends replay the same data.
    recorded = [session.simulator.simulate(f.phantom, seed=f.seed)
                for f in frames]

    results: dict[str, dict[str, float]] = {}
    for backend in backends:
        # A private cache per backend keeps the hit/miss counters comparable.
        service = session.service(backend=backend, cache=DelayTableCache())
        for data in recorded:
            service.submit_frame(data)
        stats = service.stats()
        results[backend] = {
            "frames": stats.frames,
            "frames_per_second": stats.frames_per_second,
            "voxels_per_second": stats.voxels_per_second,
            "mean_latency_seconds": stats.mean_latency_seconds,
            "cache_hits": stats.cache.hits,
            "cache_misses": stats.cache.misses,
        }

    reference_fps = results.get("reference", {}).get("frames_per_second")
    for backend, row in results.items():
        row["speedup_vs_reference"] = (
            row["frames_per_second"] / reference_fps
            if reference_fps else float("nan"))

    return {
        "system": system.name,
        "architecture": architecture,
        "n_frames": n_frames,
        "voxels_per_frame": system.volume.focal_point_count,
        "backends": results,
        "paper_reference": {
            # Section II-C: the target the hardware streaming architecture
            # is sized for; the software runtime reproduces the *shape* of
            # the argument (amortised tables >> per-sample regeneration),
            # not the absolute FPGA rates.
            "target_volume_rate": 15.0,
            "required_delay_rate": 2.5e12,
        },
    }


def main(system: SystemConfig | None = None) -> None:
    """Print the backend throughput comparison."""
    result = run(system=system)
    print("Experiment E11: streaming runtime throughput "
          f"(system '{result['system']}', architecture {result['architecture']}, "
          f"{result['n_frames']} frames)")
    print(f"  voxels per frame          : {result['voxels_per_frame']}")
    for backend, row in result["backends"].items():
        print(f"  {backend:<10s}: {row['frames_per_second']:8.2f} frames/s  "
              f"{row['voxels_per_second']:.3e} voxels/s  "
              f"{row['speedup_vs_reference']:.2f}x vs reference  "
              f"cache {row['cache_hits']} hits / {row['cache_misses']} misses")
    print("  (paper target: 15 volumes/s sustained, Section II-C)")


if __name__ == "__main__":
    main()
