"""Experiment E11: streaming-runtime throughput across backends x dtypes.

The software companion to E9: where E9 reproduces the paper's *hardware*
delay-rate arithmetic (Fig. 4 blocks, Tdelays/s), this experiment measures
what the same amortisation buys in the software runtime.  A cine sequence of
a moving point target is streamed through the :class:`BeamformingService`
once per (execution backend, kernel precision) pair — and once more through
the batched multi-frame path — so three effects are visible side by side:

* **plan caching** — probe geometry is constant across the sequence, so the
  compiled :class:`repro.kernels.BeamformingPlan` is built for the first
  frame only and every later frame is served from the
  :class:`repro.runtime.cache.PlanCache` (the software analogue of reading
  a precomputed table instead of recomputing delays per sample);
* **dtype policy** — ``float32`` halves the gather/accumulate memory
  traffic against the bit-exact ``float64`` baseline;
* **batching** — ``execute_batch`` amortises index setup and NumPy
  dispatch across frames.

Reported per (backend, dtype): sustained frames/s and voxels/s per-frame
and batched, mean and p50/p95/p99 per-frame latency, speedup over the
``reference`` / ``float64`` per-scanline path, and the cache hit/miss
counters proving that repeated frames skip plan compilation.  Every figure
is read off the :mod:`repro.observability` metrics instruments backing
:meth:`repro.runtime.BeamformingService.stats`.  ``write_bench_json``
serialises the whole table to ``BENCH_runtime.json``; the committed copy at
the repo root (measured on the ``small`` preset) is the baseline
:mod:`repro.observability.benchgate` gates fresh CI runs against
(``python -m repro.experiments.e11_runtime_throughput --json
BENCH_fresh.json --system small`` then ``python -m
repro.observability.benchgate BENCH_runtime.json BENCH_fresh.json``).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..api import EngineSpec, ScanSpec, Session
from ..config import SystemConfig, tiny_system
from ..kernels import numba_available
from ..runtime import PlanCache

DEFAULT_BACKENDS = ("reference", "vectorized", "sharded")
DEFAULT_PRECISIONS = ("float64", "float32")


def default_backends() -> tuple[str, ...]:
    """The backends E11 sweeps on this host.

    Always the three NumPy backends; ``compiled`` joins the sweep when the
    optional numba package is importable, so the same invocation produces
    the extended table on the numba CI leg and the classic one everywhere
    else.
    """
    if numba_available():
        return DEFAULT_BACKENDS + ("compiled",)
    return DEFAULT_BACKENDS


def run(system: SystemConfig | None = None,
        architecture: str = "tablesteer",
        n_frames: int = 8,
        backends: tuple[str, ...] | None = None,
        precisions: tuple[str, ...] = DEFAULT_PRECISIONS,
        batch: int = 4,
        scheme: str = "focused",
        scenario: str = "moving_point") -> dict[str, object]:
    """Stream ``n_frames`` cine frames through each backend x dtype variant.

    The same pre-simulated channel-data sequence is replayed for every
    variant so the measured differences come from execution strategy and
    precision alone.  Each variant is measured twice: per-frame submission
    and batched submission (``batch`` frames per kernel execution).

    ``scheme`` selects the transmit scheme: a multi-firing scheme (e.g.
    ``planewave``) streams pre-recorded per-firing sequences, so each
    frame's beamform time includes the coherent compounding of all its
    firings — the throughput cost of compounding, isolated from its
    acquisition cost.  ``scenario`` picks the registered cine scenario.

    ``backends=None`` resolves to :func:`default_backends` — the NumPy
    trio plus ``compiled`` when numba is installed.
    """
    if backends is None:
        backends = default_backends()
    spec = EngineSpec(system=system if system is not None else tiny_system(),
                      architecture=architecture, scheme=scheme)
    session = Session(spec)
    system = session.system
    scan = ScanSpec(scenario=scenario, frames=n_frames)
    frames = scan.build_frames(system)

    # Pre-simulate the acquisitions once; all variants replay the same data.
    if session.scheme.is_trivial():
        recorded = [session.simulator.simulate(f.phantom, seed=f.seed)
                    for f in frames]
    else:
        recorded = [tuple(session.acquire_firings(f.phantom, seed=f.seed))
                    for f in frames]

    results: dict[str, dict[str, dict[str, float]]] = {}
    for backend in backends:
        results[backend] = {}
        for precision in precisions:
            # A private cache per variant keeps the hit/miss counters
            # comparable across rows.
            service = session.service(backend=backend, cache=PlanCache(),
                                      precision=precision)
            for data in recorded:
                service.submit_frame(data)
            stats = service.stats()

            batched = session.service(backend=backend, cache=PlanCache(),
                                      precision=precision)
            batched.stream_all(list(recorded), batch_size=batch)
            batched_stats = batched.stats()

            results[backend][precision] = {
                "frames": stats.frames,
                "frames_per_second": stats.frames_per_second,
                "voxels_per_second": stats.voxels_per_second,
                "mean_latency_seconds": stats.mean_latency_seconds,
                "latency_p50_seconds": stats.p50_latency_seconds,
                "latency_p95_seconds": stats.p95_latency_seconds,
                "latency_p99_seconds": stats.p99_latency_seconds,
                "cache_hits": stats.cache.hits,
                "cache_misses": stats.cache.misses,
                "batched_frames_per_second": batched_stats.frames_per_second,
                "batched_voxels_per_second": batched_stats.voxels_per_second,
            }

    reference_fps = results.get("reference", {}).get("float64", {}) \
        .get("frames_per_second")
    # None (JSON null) rather than NaN when the sweep excludes the
    # reference row: json.dumps would otherwise emit the non-standard
    # ``NaN`` token and break strict consumers of BENCH_runtime.json.
    for rows in results.values():
        for row in rows.values():
            row["speedup_vs_reference"] = (
                row["frames_per_second"] / reference_fps
                if reference_fps else None)
            row["batched_speedup_vs_reference"] = (
                row["batched_frames_per_second"] / reference_fps
                if reference_fps else None)

    return {
        "system": system.name,
        "architecture": architecture,
        "n_frames": n_frames,
        "batch": batch,
        "scheme": scheme,
        "scenario": scenario,
        "firings_per_frame": session.scheme.firing_count,
        "voxels_per_frame": system.volume.focal_point_count,
        "backends": results,
        "paper_reference": {
            # Section II-C: the target the hardware streaming architecture
            # is sized for; the software runtime reproduces the *shape* of
            # the argument (amortised tables >> per-sample regeneration),
            # not the absolute FPGA rates.
            "target_volume_rate": 15.0,
            "required_delay_rate": 2.5e12,
        },
    }


def write_bench_json(path: str | Path,
                     system: SystemConfig | None = None,
                     **run_kwargs) -> dict[str, object]:
    """Run the sweep and merge the frames/s / voxels/s table into ``path``.

    This is the CI hook: the written ``BENCH_runtime.json`` records the
    per-PR throughput trajectory per backend x dtype.  When ``path``
    already holds a comparable document (same ``system`` preset), the new
    per-backend rows are merged *into* it — a ``compiled``-only sweep on
    the numba CI leg extends the committed NumPy table instead of erasing
    it, and foreign sections (``server_soak``) survive.  A different
    system resets the file wholesale: rows from different presets are not
    comparable and must never cohabit.
    """
    result = run(system=system, **run_kwargs)
    path = Path(path)
    document: dict[str, object] = result
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except json.JSONDecodeError:
            existing = None
        if isinstance(existing, dict) \
                and existing.get("system") == result["system"]:
            merged_backends = dict(existing.get("backends", {}))
            merged_backends.update(result["backends"])
            document = {**existing, **result, "backends": merged_backends}
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True, allow_nan=False)
        + "\n")
    return document


def main(system: SystemConfig | None = None) -> None:
    """Print the backend x dtype throughput comparison."""
    result = run(system=system)
    print("Experiment E11: streaming runtime throughput "
          f"(system '{result['system']}', architecture {result['architecture']}, "
          f"{result['n_frames']} frames, batch={result['batch']}, "
          f"scheme={result['scheme']} "
          f"[{result['firings_per_frame']} firing(s)/frame])")
    print(f"  voxels per frame          : {result['voxels_per_frame']}")
    for backend, rows in result["backends"].items():
        for precision, row in rows.items():
            speedup = row["speedup_vs_reference"]
            speedup_text = (f"{speedup:.2f}x vs reference"
                            if speedup is not None else "(no reference row)")
            print(f"  {backend:<10s} {precision:<8s}: "
                  f"{row['frames_per_second']:8.2f} frames/s  "
                  f"(batched {row['batched_frames_per_second']:8.2f})  "
                  f"{row['voxels_per_second']:.3e} voxels/s  "
                  f"{speedup_text}  "
                  f"cache {row['cache_hits']}h/{row['cache_misses']}m")
    print("  (paper target: 15 volumes/s sustained, Section II-C)")


if __name__ == "__main__":
    import argparse

    from ..config import PRESETS, get_preset

    parser = argparse.ArgumentParser(
        description="E11 streaming runtime throughput")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the result table to FILE "
                             "(e.g. BENCH_runtime.json)")
    parser.add_argument("--system", choices=sorted(PRESETS), default=None,
                        help="system preset to measure on [default: tiny]; "
                             "the committed baseline uses 'small'")
    args = parser.parse_args()
    chosen = get_preset(args.system) if args.system else None
    if args.json:
        result = write_bench_json(args.json, system=chosen)
        print(f"wrote {args.json}")
        rows = result["backends"]
        for backend, by_precision in rows.items():
            for precision, row in by_precision.items():
                print(f"  {backend:<10s} {precision:<8s}: "
                      f"{row['frames_per_second']:8.2f} frames/s "
                      f"(batched {row['batched_frames_per_second']:8.2f})")
    else:
        main(system=chosen)
