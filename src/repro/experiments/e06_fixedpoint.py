"""Experiment E6: fixed-point representation impact (Section VI-A).

Paper claims: with the TABLESTEER datapath summing three values (reference
delay + two steering corrections), the index error versus a high-precision
computation is at most +/-1 sample; ~33 % of echo samples are affected when
delays are stored as plain 13-bit integers, and fewer than 2 % with the
18-bit (13.5) representation.
"""

from __future__ import annotations

import os

from ..analysis.fixedpoint_impact import (
    fixed_point_impact,
    fixed_point_sweep,
    kernel_fixed_point_sweep,
)
from ..config import SystemConfig, paper_system, tiny_system


def run(system: SystemConfig | None = None,
        n_samples: int = 1_000_000,
        seed: int = 2015,
        kernel_system: SystemConfig | None = None,
        store: str | None = None) -> dict[str, object]:
    """Monte-Carlo the fixed-point impact at the paper's two design points.

    Alongside the paper's Monte-Carlo over random delay triples, the same
    bit-width sweep is executed through the bit-true quantized kernel path
    (:func:`repro.analysis.fixedpoint_impact.kernel_fixed_point_sweep`):
    real TABLESTEER delay tensors at each width, compiled into a
    ``QuantizedPlan`` and compared against the unquantised plan.  The
    kernel sweep runs on a scaled preset (``kernel_system``, default
    ``tiny``) because it compiles full delay tensors; the error trends are
    scale-free.  ``store`` (a :class:`repro.sweep.SweepStore` directory)
    opts the kernel sweep into content-addressed reuse across runs.
    """
    system = system or paper_system()
    max_delay = float(system.echo_buffer_samples)
    result_13 = fixed_point_impact(13, n_samples=n_samples,
                                   max_delay_samples=max_delay, seed=seed)
    result_18 = fixed_point_impact(18, n_samples=n_samples,
                                   max_delay_samples=max_delay, seed=seed)
    sweep = fixed_point_sweep(n_samples=max(50_000, n_samples // 5), seed=seed)
    kernel_sweep = kernel_fixed_point_sweep(kernel_system or tiny_system(),
                                            store=store)
    return {
        "system": system.name,
        "bits_13": result_13.as_dict(),
        "bits_18": result_18.as_dict(),
        "sweep": [entry.as_dict() for entry in sweep],
        "kernel_sweep": [entry.as_dict() for entry in kernel_sweep],
        "paper_reference": {
            "affected_fraction_13b": 0.33,
            "affected_fraction_18b": 0.02,
            "max_index_error": 1,
        },
    }


def main(system: SystemConfig | None = None) -> None:
    """Print the fixed-point impact results.

    Setting ``REPRO_SWEEP_STORE`` routes the kernel-path sweep through the
    content-addressed store, so reruns skip the per-width plan compiles.
    """
    store = os.environ.get("REPRO_SWEEP_STORE") or None
    result = run(system=system, n_samples=1_000_000, store=store)
    print("Experiment E6: fixed-point impact on delay selection")
    r13, r18 = result["bits_13"], result["bits_18"]
    print(f"  13-bit integers : {100 * r13['affected_fraction']:.1f}% of samples "
          f"shifted (max {r13['max_index_error']:.0f})  [paper: ~33%, max 1]")
    print(f"  18-bit (13.5)   : {100 * r18['affected_fraction']:.1f}% of samples "
          f"shifted (max {r18['max_index_error']:.0f})  [paper: <2%, max 1]")
    print("  Monte-Carlo sweep:")
    for entry in result["sweep"]:
        print(f"    {entry['total_bits']:.0f} bits -> "
              f"{100 * entry['affected_fraction']:.2f}% affected")
    print("  kernel-path sweep (bit-true QuantizedPlan, tiny preset):")
    for entry in result["kernel_sweep"]:
        print(f"    {entry['total_bits']:.0f} bits -> "
              f"{100 * entry['affected_fraction']:.2f}% of gather indices "
              f"shifted (max {entry['max_index_error']:.0f}), volume RMS "
              f"{100 * entry['volume_rms_error']:.3f}% of peak")


if __name__ == "__main__":
    main()
