"""Experiment E2: beamforming traversal orders (Algorithm 1 / Fig. 1).

Verifies that the scanline-by-scanline and nappe-by-nappe loop nests visit
exactly the same focal points (so image quality cannot depend on the order)
and quantifies how differently they stress a depth-organised delay table:
the nappe order stays within one constant-depth table slice for an entire
nappe (n_theta x n_phi points), whereas the scanline order changes slice at
every single point.
"""

from __future__ import annotations

from ..config import SystemConfig, small_system
from ..geometry.traversal import compare_orders, orders_visit_same_points


def run(system: SystemConfig | None = None) -> dict[str, object]:
    """Compare the two traversal orders for a system configuration.

    The comparison is exact but materialises the full index list, so the
    default uses the scaled-down system; the statistics are closed-form
    functions of the grid dimensions and scale trivially to the paper system
    (reported alongside).
    """
    system = system or small_system()
    stats = compare_orders(system)
    same_points = orders_visit_same_points(system)

    # Closed-form projection to the paper-scale volume.
    n_theta, n_phi, n_depth = 128, 128, 1000
    paper_points = n_theta * n_phi * n_depth
    return {
        "system": system.name,
        "orders_visit_same_points": same_points,
        "scanline": {
            "depth_switches": stats["scanline"].depth_switches,
            "slice_reuse_factor": stats["scanline"].slice_reuse_factor,
            "max_run_in_slice": stats["scanline"].max_consecutive_same_depth,
        },
        "nappe": {
            "depth_switches": stats["nappe"].depth_switches,
            "slice_reuse_factor": stats["nappe"].slice_reuse_factor,
            "max_run_in_slice": stats["nappe"].max_consecutive_same_depth,
        },
        "paper_scale_projection": {
            "points": paper_points,
            "scanline_slice_reuse": 1.0,
            "nappe_slice_reuse": float(n_theta * n_phi),
        },
    }


def main(system: SystemConfig | None = None) -> None:
    """Print the traversal comparison."""
    result = run(system=system)
    print("Experiment E2: traversal order comparison "
          f"(system: {result['system']})")
    print(f"  both orders visit the same focal points: "
          f"{result['orders_visit_same_points']}")
    for order in ("scanline", "nappe"):
        stats = result[order]
        print(f"  {order:9s}: depth switches = {stats['depth_switches']:8d}, "
              f"points per table-slice visit = {stats['slice_reuse_factor']:8.1f}")
    projection = result["paper_scale_projection"]
    print(f"  paper-scale projection: nappe order reuses each table slice "
          f"{projection['nappe_slice_reuse']:.0f}x vs "
          f"{projection['scanline_slice_reuse']:.0f}x for scanline order")


if __name__ == "__main__":
    main()
