"""The delay-generation architecture registry.

This is the open counterpart of the paper's fixed architecture family: each
entry bundles a factory ``(system, options) -> DelayProvider``, an options
dataclass describing its numerical design knobs, and a one-line description.
The four built-in entries reproduce the paper's design space —

``exact``
    Float64 two-way geometric delays, the ground-truth reference engine.
``tablefree``
    On-the-fly computation with the piecewise-linear square root
    (Section IV); options: :class:`repro.core.tablefree.TableFreeConfig`.
``tablesteer``
    Reference table plus steering corrections in fixed point (Section V);
    options: :class:`repro.core.tablesteer.TableSteerConfig`.
``tablesteer_float``
    TABLESTEER with the quantisation disabled, isolating the algorithmic
    (far-field Taylor) error.

— and a new architecture is one ``@ARCHITECTURES.register(...)`` plus an
options dataclass, with no edits to the pipeline, runtime, CLI or spec
layers (they all resolve names through this registry).
"""

from __future__ import annotations

from .config import SystemConfig
from .core.exact import ExactDelayEngine
from .core.tablefree import TableFreeConfig, TableFreeDelayGenerator
from .core.tablesteer import TableSteerConfig, TableSteerDelayGenerator
from .registry import Registry

ARCHITECTURES = Registry("architecture")
"""Registry of delay-generation architectures (factory: ``(system, options)``)."""


def architecture_name(architecture) -> str:
    """Normalise an architecture selector (enum member or string) to its name."""
    return getattr(architecture, "value", architecture)


@ARCHITECTURES.register(
    "exact",
    description="float64 two-way geometric delays (ground truth)")
def _build_exact(system: SystemConfig, options: None) -> ExactDelayEngine:
    return ExactDelayEngine.from_config(system)


@ARCHITECTURES.register(
    "tablefree", options=TableFreeConfig,
    description="on-the-fly delays via piecewise-linear sqrt (Section IV)")
def _build_tablefree(system: SystemConfig,
                     options: TableFreeConfig) -> TableFreeDelayGenerator:
    return TableFreeDelayGenerator.from_config(system, options)


@ARCHITECTURES.register(
    "tablesteer", options=TableSteerConfig,
    description="reference table + fixed-point steering corrections "
                "(Section V)")
def _build_tablesteer(system: SystemConfig,
                      options: TableSteerConfig) -> TableSteerDelayGenerator:
    return TableSteerDelayGenerator.from_config(system, options)


@ARCHITECTURES.register(
    "tablesteer_float",
    description="TABLESTEER without quantisation (algorithmic error only)")
def _build_tablesteer_float(system: SystemConfig,
                            options: None) -> TableSteerDelayGenerator:
    return TableSteerDelayGenerator.from_config(
        system, TableSteerConfig(total_bits=None))


def legacy_architecture_options(architecture: str,
                                tablefree_config: TableFreeConfig | None = None,
                                tablesteer_bits: int = 18):
    """Map the historical per-architecture keyword knobs onto registry options.

    ``ImagingPipeline`` / ``BeamformingService`` / ``make_delay_provider``
    used to thread ``tablefree_config`` and ``tablesteer_bits`` by hand; this
    keeps those call sites working while the registry owns construction.
    """
    if architecture == "tablefree":
        return tablefree_config
    if architecture == "tablesteer":
        return TableSteerConfig(total_bits=tablesteer_bits)
    return None
