"""Declarative, JSON-round-trippable server configuration.

A :class:`ServerSpec` is to :class:`repro.server.BeamformingServer` what
:class:`repro.api.EngineSpec` is to a single engine: one frozen, validated
document describing the whole multi-session deployment — the default
per-session engine (a nested ``EngineSpec``), the worker-pool width, the
per-session queue bound and its backpressure policy, and the
shared-memory ring sizing.  Ship the JSON, rebuild the identical server
anywhere with ``BeamformingServer.from_spec(ServerSpec.from_json(text))``
or ``repro serve --spec server.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields, replace
from enum import Enum
from typing import Any, Mapping

from ..api.specs import EngineSpec

__all__ = ["BackpressurePolicy", "ServerSpec"]


class BackpressurePolicy(str, Enum):
    """What a full per-session queue does to the next submission.

    ``BLOCK``
        The submitting caller waits for a slot — lossless, the default,
        and the only policy under which server output covers every
        submitted frame (the conformance row runs with this).
    ``DROP_OLDEST``
        The oldest *queued* frame is evicted to admit the new one; its
        ticket resolves with :class:`repro.server.FrameDropped`.  Keeps
        the queue fresh — a live imaging display wants the newest frames.
    ``DROP_LATEST``
        The new submission itself is refused (its ticket resolves with
        :class:`repro.server.FrameDropped` immediately); queued frames are
        never disturbed, so in-flight ordering is exactly preserved.

    Every drop increments the session's and the server's drop counters —
    loss is always visible in ``export_metrics()``.
    """

    BLOCK = "block"
    DROP_OLDEST = "drop_oldest"
    DROP_LATEST = "drop_latest"


def resolve_policy(policy: "BackpressurePolicy | str | None"
                   ) -> BackpressurePolicy:
    """Coerce a policy name (or ``None`` -> ``BLOCK``) to the enum."""
    if policy is None:
        return BackpressurePolicy.BLOCK
    try:
        return BackpressurePolicy(policy)
    except ValueError:
        names = ", ".join(p.value for p in BackpressurePolicy)
        raise ValueError(
            f"unknown backpressure policy {policy!r}; "
            f"available: {names}") from None


def default_workers() -> int:
    """Worker-pool width when the spec leaves ``workers`` at ``None``."""
    return max(1, min(4, os.cpu_count() or 1))


@dataclass(frozen=True)
class ServerSpec:
    """Declarative description of one multi-session beamforming server."""

    engine: EngineSpec = field(default_factory=EngineSpec)
    """Default per-session engine (nested :class:`repro.api.EngineSpec`;
    dict form accepted).  Sessions opened without their own spec use it
    verbatim, and sessions on the same system share its simulator."""

    workers: int | None = None
    """Beamforming worker threads multiplexing the sessions
    (``None`` = auto: ``min(4, cpu_count)``)."""

    queue_capacity: int = 8
    """Bound of each session's pending-frame queue (the backpressure
    horizon)."""

    policy: BackpressurePolicy = BackpressurePolicy.BLOCK
    """Default backpressure policy for a full session queue (name or
    enum; per-session override via ``open_session(policy=...)``)."""

    ring_slots: int | None = None
    """Shared-memory frame slots per session ring (``None`` = auto:
    ``queue_capacity + workers`` so a full queue plus every in-flight
    frame fit without copying)."""

    max_sessions: int | None = None
    """Refuse ``open_session`` beyond this many live sessions
    (``None`` = unbounded)."""

    session_memory_budget_bytes: int | str | None = None
    """Default plan-memory budget per session, in bytes (suffixed strings
    like ``"8G"`` accepted).  Applied to any session engine that does not
    carry its own ``memory_budget_bytes``: its plans then execute tiled
    under the cap (see ``docs/memory.md``).  ``None`` = unbounded."""

    def __post_init__(self) -> None:
        engine = self.engine
        if isinstance(engine, Mapping):
            engine = EngineSpec.from_dict(dict(engine))
        elif not isinstance(engine, EngineSpec):
            raise ValueError(
                "engine must be an EngineSpec or its dict form, got "
                f"{type(engine).__name__}")
        object.__setattr__(self, "engine", engine)
        object.__setattr__(self, "policy", resolve_policy(self.policy))
        if self.workers is not None and (
                not isinstance(self.workers, int) or self.workers < 1):
            raise ValueError("workers must be a positive integer or null")
        if not isinstance(self.queue_capacity, int) or self.queue_capacity < 1:
            raise ValueError("queue_capacity must be a positive integer")
        if self.ring_slots is not None and (
                not isinstance(self.ring_slots, int) or self.ring_slots < 1):
            raise ValueError("ring_slots must be a positive integer or null")
        if self.max_sessions is not None and (
                not isinstance(self.max_sessions, int)
                or self.max_sessions < 1):
            raise ValueError("max_sessions must be a positive integer or null")
        if self.session_memory_budget_bytes is not None:
            from ..kernels.tiling import parse_memory_budget
            object.__setattr__(self, "session_memory_budget_bytes",
                               parse_memory_budget(
                                   self.session_memory_budget_bytes))
            # Must be feasible for the default engine's system (per-session
            # engines re-validate against their own system on open).
            self.engine.with_updates(
                memory_budget_bytes=self.session_memory_budget_bytes)

    # ------------------------------------------------------------ resolving
    def resolve_workers(self) -> int:
        """Concrete worker-pool width."""
        return self.workers if self.workers is not None else default_workers()

    def resolve_ring_slots(self) -> int:
        """Concrete per-session ring size."""
        if self.ring_slots is not None:
            return self.ring_slots
        return self.queue_capacity + self.resolve_workers()

    def with_updates(self, **changes: Any) -> "ServerSpec":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """Plain-dict (JSON-safe) form; inverse of :meth:`from_dict`."""
        return {
            "engine": self.engine.to_dict(),
            "workers": self.workers,
            "queue_capacity": self.queue_capacity,
            "policy": self.policy.value,
            "ring_slots": self.ring_slots,
            "max_sessions": self.max_sessions,
            "session_memory_budget_bytes": self.session_memory_budget_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServerSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys raise)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"server spec must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown server spec field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}")
        return cls(**data)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServerSpec":
        """Rebuild a spec from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))
