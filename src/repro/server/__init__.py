"""Multi-stream beamforming server subsystem.

Everything needed to serve many concurrent probe sessions from one
process: the :class:`BeamformingServer` (async session multiplexing over
a worker pool), :class:`ServerSpec` (the JSON-round-trippable deployment
document), :class:`SharedFrameRing` (zero-copy shared-memory frame
transport), and the backpressure vocabulary
(:class:`BackpressurePolicy`, :class:`FrameDropped`).  See
``docs/server.md`` for the architecture walk-through and
:mod:`repro.server.soak` for the multi-session throughput benchmark.
"""

from .ring import RingExhausted, SharedFrameRing, SlotLease
from .server import (
    BeamformingServer,
    FrameDropped,
    FrameTicket,
    ServerClosed,
    ServerStats,
    SessionHandle,
    SessionStats,
)
from .spec import BackpressurePolicy, ServerSpec

__all__ = [
    "BackpressurePolicy",
    "BeamformingServer",
    "FrameDropped",
    "FrameTicket",
    "RingExhausted",
    "ServerClosed",
    "ServerSpec",
    "ServerStats",
    "SessionHandle",
    "SessionStats",
    "SharedFrameRing",
    "SlotLease",
]
