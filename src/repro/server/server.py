"""The multi-session beamforming server.

One :class:`BeamformingServer` is the "heavy traffic" layer over the
single-stream :class:`repro.runtime.BeamformingService`: N concurrent
probe *sessions* — each its own engine (any registered architecture /
backend / scheme / quantisation, described by an
:class:`repro.api.EngineSpec`) — are multiplexed over one pool of
beamforming worker threads.  The moving parts:

* **Sessions** (:meth:`BeamformingServer.open_session` ->
  :class:`SessionHandle`): a bounded pending-frame queue, a private
  :class:`repro.runtime.BeamformingService`, and optionally a
  :class:`repro.server.ring.SharedFrameRing` for zero-copy ingest.
  Frames of one session execute strictly in submission order (at most one
  in flight), so a session's output stream is deterministic.
* **Scheduling**: workers pick the next frame round-robin across sessions
  with pending work — one slow session cannot starve the others.
* **Backpressure** (:class:`repro.server.spec.BackpressurePolicy`): a
  full session queue blocks the submitter, drops its oldest queued frame,
  or refuses the new one; every drop resolves the frame's
  :class:`FrameTicket` with :class:`FrameDropped` and increments visible
  drop counters.
* **Plan sharing**: every session's engine compiles through one shared
  (thread-safe) :class:`repro.runtime.PlanCache` keyed by
  :func:`repro.kernels.plan_key` — two sessions on the same probe/engine
  configuration pay one compile between them, sessions on different
  configurations can never exchange plans.
* **Observability**: per-session queue-depth gauges, drop/frame counters
  and latency histograms (p50/p95/p99 quantiles in the Prometheus
  export), aggregated server totals, and a ``serve`` span root per frame
  carrying the session id.

Bit-identity: beamforming happens in the session's own
``BeamformingService`` on ordinary kernels — the server adds queueing and
transport, never arithmetic — so each session's volumes are bit-identical
to :class:`repro.pipeline.ImagingPipeline` on the same spec, including
under concurrent load (pinned in the conformance matrix).

Typical use::

    from repro.server import BeamformingServer
    from repro.api import EngineSpec

    with BeamformingServer(EngineSpec(system="small")) as server:
        probes = [server.open_session() for _ in range(8)]
        tickets = [probe.submit(frame) for probe in probes]
        volumes = [ticket.result().rf for ticket in tickets]
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..acoustics.echo import ChannelData, EchoSimulator
from ..api.specs import EngineSpec
from ..observability.metrics import MetricsRegistry
from ..observability.tracing import resolve_tracer
from ..runtime.cache import PlanCache
from ..runtime.scheduler import FrameResult
from ..runtime.service import BeamformingService
from .ring import SharedFrameRing, SlotLease
from .spec import BackpressurePolicy, ServerSpec, resolve_policy

__all__ = [
    "BeamformingServer",
    "FrameDropped",
    "FrameTicket",
    "ServerClosed",
    "ServerStats",
    "SessionHandle",
    "SessionStats",
]


class ServerClosed(RuntimeError):
    """Submission to (or via) a closed server or session."""


class FrameDropped(RuntimeError):
    """A frame was shed by a ``drop_oldest``/``drop_latest`` policy.

    Raised by :meth:`FrameTicket.result`; carries enough context to tell
    *which* frame the policy sacrificed.
    """

    def __init__(self, session_id: str, frame_id: int,
                 policy: BackpressurePolicy) -> None:
        super().__init__(
            f"frame {frame_id} of session {session_id!r} dropped by the "
            f"{policy.value} backpressure policy")
        self.session_id = session_id
        self.frame_id = frame_id
        self.policy = policy


class FrameTicket:
    """Async handle to one submitted frame: await it, or block on it.

    Thin facade over a :class:`concurrent.futures.Future`.  ``result()``
    returns the :class:`repro.runtime.FrameResult` (or raises
    :class:`FrameDropped` / :class:`ServerClosed` / the beamforming
    error); ``await ticket`` does the same inside an asyncio coroutine.
    """

    __slots__ = ("session_id", "frame_id", "_future")

    def __init__(self, session_id: str, frame_id: int) -> None:
        self.session_id = session_id
        self.frame_id = frame_id
        self._future: "Future[FrameResult]" = Future()

    def result(self, timeout: float | None = None) -> FrameResult:
        """Block until the frame retires and return its result."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The frame's error (``None`` on success); blocks like ``result``."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        """Whether the frame has retired (result, drop or error)."""
        return self._future.done()

    def dropped(self) -> bool:
        """Whether the frame retired by being shed (never beamformed)."""
        return (self._future.done()
                and isinstance(self._future.exception(), FrameDropped))

    def add_done_callback(self, fn) -> None:
        """Run ``fn(ticket)`` when the frame retires (see
        :meth:`concurrent.futures.Future.add_done_callback`)."""
        self._future.add_done_callback(lambda _future: fn(self))

    def __await__(self):
        """Awaitable inside an asyncio event loop: ``await ticket``."""
        import asyncio
        return asyncio.wrap_future(self._future).__await__()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self._future.done() else "pending"
        return (f"FrameTicket(session={self.session_id!r}, "
                f"frame={self.frame_id}, {state})")


@dataclass
class _QueuedFrame:
    """One pending submission (internal)."""

    ticket: FrameTicket
    payload: Any
    noise_std: float
    seed: int
    lease: SlotLease | None
    submitted_at: float


def _metric_id(session_id: str) -> str:
    """Session id sanitised for embedding in Prometheus metric names."""
    return re.sub(r"[^A-Za-z0-9_]", "_", session_id)


class _SessionState:
    """Server-internal record of one open session."""

    def __init__(self, server: "BeamformingServer", session_id: str,
                 engine: EngineSpec, service: BeamformingService,
                 capacity: int, policy: BackpressurePolicy,
                 lock: threading.RLock) -> None:
        self.session_id = session_id
        self.engine = engine
        self.service = service
        self.capacity = capacity
        self.policy = policy
        self.queue: "deque[_QueuedFrame]" = deque()
        self.in_flight = False
        self.closed = False
        self.next_frame_id = 0
        self.ring: SharedFrameRing | None = None
        # block-policy submitters wait here; workers notify on dequeue.
        self.space = threading.Condition(lock)
        sid = _metric_id(session_id)
        metrics = server.metrics
        self.depth_gauge = metrics.gauge(
            f"server_session_{sid}_queue_depth",
            f"pending frames of session {session_id}")
        self.frames_counter = metrics.counter(
            f"server_session_{sid}_frames_total",
            f"frames beamformed for session {session_id}")
        self.drops_counter = metrics.counter(
            f"server_session_{sid}_drops_total",
            f"frames shed by backpressure for session {session_id}")
        self.latency = metrics.histogram(
            f"server_session_{sid}_latency_seconds",
            f"submit-to-result latency of session {session_id} "
            "(queue wait included)")


@dataclass(frozen=True)
class SessionStats:
    """Point-in-time figures for one session."""

    session_id: str
    frames: int
    drops: int
    queue_depth: int
    p50_latency_seconds: float
    p95_latency_seconds: float
    p99_latency_seconds: float


@dataclass(frozen=True)
class ServerStats:
    """Aggregate figures over every session of a server."""

    workers: int
    frames: int
    drops: int
    voxels: int
    p50_latency_seconds: float
    p95_latency_seconds: float
    p99_latency_seconds: float
    sessions: tuple[SessionStats, ...]


class SessionHandle:
    """Client-side handle to one open session (the submit/await API).

    Obtained from :meth:`BeamformingServer.open_session`; all methods are
    thread-safe.  Closing the handle (or using it as a context manager)
    drains the session and releases its engine and ring.
    """

    def __init__(self, server: "BeamformingServer",
                 state: _SessionState) -> None:
        self._server = server
        self._state = state

    # -------------------------------------------------------------- naming
    @property
    def session_id(self) -> str:
        """The session's unique id (metric names embed it)."""
        return self._state.session_id

    @property
    def engine(self) -> EngineSpec:
        """The engine spec this session beamforms with."""
        return self._state.engine

    @property
    def queue_depth(self) -> int:
        """Frames currently queued (excludes the one in flight)."""
        return len(self._state.queue)

    # ---------------------------------------------------------- submission
    def submit(self, frame: Any, noise_std: float = 0.0, seed: int = 0,
               timeout: float | None = None) -> FrameTicket:
        """Submit one frame; returns immediately with a :class:`FrameTicket`.

        ``frame`` is anything the session's service accepts: raw
        :class:`repro.acoustics.echo.ChannelData`, a per-firing tuple for a
        multi-firing scheme, a phantom (simulated server-side), or a
        pre-built :class:`repro.runtime.FrameRequest`.  Under the ``block``
        policy a full queue blocks up to ``timeout`` seconds (``None`` =
        forever); the drop policies never block.
        """
        return self._server._submit(self._state, frame, noise_std, seed,
                                    lease=None, timeout=timeout)

    def acquire_slot(self, timeout: float | None = None) -> SlotLease:
        """Lease a writable shared-memory frame slot for zero-copy ingest.

        Write the RF samples into ``lease.array`` (shape
        ``(n_elements, n_samples)``) and hand the lease to
        :meth:`submit_slot`; the worker beamforms straight out of the
        shared segment and the slot returns to the ring when the frame
        retires.  The ring is created on first use; multi-firing schemes
        submit per-firing tuples through :meth:`submit` instead.
        """
        return self._server._acquire_slot(self._state, timeout)

    def submit_slot(self, lease: SlotLease, timeout: float | None = None
                    ) -> FrameTicket:
        """Submit the frame previously written into ``lease.array``.

        The slot stays leased until the frame retires (result, drop or
        error) — the server releases it, so the caller must not.
        """
        if lease.ring is not self._state.ring:
            raise ValueError(
                "lease does not belong to this session's ring")
        payload = ChannelData(
            samples=lease.array,
            sampling_frequency=self._server._sampling_frequency(self._state))
        return self._server._submit(self._state, payload, 0.0, 0,
                                    lease=lease, timeout=timeout)

    # ------------------------------------------------------------- waiting
    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted frame of this session retired.

        Returns ``False`` on timeout, ``True`` otherwise.
        """
        return self._server._drain(self._state, timeout)

    def stats(self) -> SessionStats:
        """Snapshot of the session's counters and latency percentiles."""
        state = self._state
        return SessionStats(
            session_id=state.session_id,
            frames=int(state.frames_counter.value),
            drops=int(state.drops_counter.value),
            queue_depth=len(state.queue),
            p50_latency_seconds=state.latency.percentile(50),
            p95_latency_seconds=state.latency.percentile(95),
            p99_latency_seconds=state.latency.percentile(99))

    # ----------------------------------------------------------- lifecycle
    def close(self, drain: bool = True) -> None:
        """Close the session; with ``drain`` (default) finish queued frames
        first, otherwise cancel them (tickets resolve
        :class:`ServerClosed`)."""
        self._server._close_session(self._state, drain=drain)

    def __enter__(self) -> "SessionHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SessionHandle({self.session_id!r}, "
                f"queued={self.queue_depth})")


class BeamformingServer:
    """Multiplexes N beamforming sessions over one worker pool.

    Parameters
    ----------
    spec:
        A :class:`repro.server.ServerSpec` (or its dict form) describing
        the deployment, or a bare :class:`repro.api.EngineSpec` (or its
        dict form with engine keys) used as the default session engine
        with server defaults.  ``None`` = all defaults.
    cache:
        Optional shared :class:`repro.runtime.PlanCache`; ``None`` creates
        one private to the server.  Either way every session compiles
        through it, so sessions with equal plan keys share plans.
    tracer:
        Optional :class:`repro.observability.Tracer`; each frame executes
        under a ``serve`` span (session id + frame id attributes) rooted
        on its worker thread.
    metrics:
        Optional :class:`repro.observability.MetricsRegistry` for the
        server's (and all sessions') instruments; ``None`` creates one.
    simulator:
        Optional pre-built :class:`repro.acoustics.echo.EchoSimulator` for
        the default engine's system (e.g. a :class:`repro.api.Session`'s
        shared one); sessions on other systems still get their own.
    """

    def __init__(self, spec: "ServerSpec | EngineSpec | Mapping | None" = None,
                 *,
                 cache: PlanCache | None = None,
                 tracer: Any = None,
                 metrics: MetricsRegistry | None = None,
                 simulator: EchoSimulator | None = None) -> None:
        if spec is None:
            spec = ServerSpec()
        elif isinstance(spec, EngineSpec):
            spec = ServerSpec(engine=spec)
        elif isinstance(spec, Mapping):
            data = dict(spec)
            # Accept an EngineSpec document where a ServerSpec is expected:
            # a mapping without server keys is treated as the engine.
            server_fields = {"engine", "workers", "queue_capacity", "policy",
                             "ring_slots", "max_sessions",
                             "session_memory_budget_bytes"}
            if not server_fields & set(data):
                spec = ServerSpec(engine=EngineSpec.from_dict(data))
            else:
                spec = ServerSpec.from_dict(data)
        elif not isinstance(spec, ServerSpec):
            raise ValueError(
                "spec must be a ServerSpec, an EngineSpec or a mapping, "
                f"got {type(spec).__name__}")
        self.spec = spec
        self.workers = spec.resolve_workers()
        self.tracer = resolve_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = cache if cache is not None \
            else PlanCache(metrics=self.metrics)
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._sessions: dict[str, _SessionState] = {}
        self._order: list[str] = []
        self._cursor = 0
        self._closed = False
        self._next_session = 0
        # Sessions on the same physical system share one echo simulator.
        self._simulators: dict[str, EchoSimulator] = {}
        if simulator is not None:
            key = self.spec.engine.resolve_system().cache_key()
            self._simulators[key] = simulator
        self._frames = self.metrics.counter(
            "server_frames_total", "frames beamformed across all sessions")
        self._drops = self.metrics.counter(
            "server_drops_total", "frames shed by backpressure, all sessions")
        self._errors = self.metrics.counter(
            "server_errors_total", "frames whose beamforming raised")
        self._voxels = self.metrics.counter(
            "server_voxels_total", "voxels reconstructed across all sessions")
        self._sessions_gauge = self.metrics.gauge(
            "server_sessions_active", "currently open sessions")
        self._latency = self.metrics.histogram(
            "server_latency_seconds",
            "submit-to-result latency across all sessions")
        self._threads = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"repro-serve-{i}")
            for i in range(self.workers)]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------- sessions
    def open_session(self, spec: "EngineSpec | Mapping | None" = None,
                     session_id: str | None = None,
                     queue_capacity: int | None = None,
                     policy: "BackpressurePolicy | str | None" = None
                     ) -> SessionHandle:
        """Open one probe session and return its :class:`SessionHandle`.

        ``spec`` overrides the server's default engine for this session
        (an :class:`repro.api.EngineSpec` or its dict form); queue bound
        and backpressure policy default to the server spec's.
        """
        if spec is None:
            engine = self.spec.engine
        elif isinstance(spec, EngineSpec):
            engine = spec
        elif isinstance(spec, Mapping):
            engine = EngineSpec.from_dict(dict(spec))
        else:
            raise ValueError(
                "session spec must be an EngineSpec or its dict form, "
                f"got {type(spec).__name__}")
        capacity = queue_capacity if queue_capacity is not None \
            else self.spec.queue_capacity
        if capacity < 1:
            raise ValueError("queue_capacity must be a positive integer")
        resolved_policy = resolve_policy(
            policy if policy is not None else self.spec.policy)
        with self._lock:
            if self._closed:
                raise ServerClosed("cannot open a session on a closed server")
            if self.spec.max_sessions is not None and \
                    len(self._sessions) >= self.spec.max_sessions:
                raise ServerClosed(
                    f"server is at its max_sessions bound "
                    f"({self.spec.max_sessions})")
            if session_id is None:
                session_id = f"s{self._next_session}"
                self._next_session += 1
            if session_id in self._sessions:
                raise ValueError(f"session id {session_id!r} already open")
            service = self._build_service(engine)
            state = _SessionState(self, session_id, engine, service,
                                  capacity, resolved_policy, self._lock)
            self._sessions[session_id] = state
            self._order.append(session_id)
            self._sessions_gauge.set(len(self._sessions))
        return SessionHandle(self, state)

    def _build_service(self, engine: EngineSpec) -> BeamformingService:
        """One session's engine, sharing the server cache and simulator."""
        if self.spec.session_memory_budget_bytes is not None \
                and engine.memory_budget_bytes is None:
            # Server-wide per-session default; an engine carrying its own
            # budget (even a larger one) keeps it.
            engine = engine.with_updates(
                memory_budget_bytes=self.spec.session_memory_budget_bytes)
        system = engine.resolve_system()
        simulator = self._simulators.get(system.cache_key())
        if simulator is None:
            simulator = EchoSimulator.from_config(system)
            self._simulators[system.cache_key()] = simulator
        return BeamformingService(
            system,
            architecture=engine.architecture,
            architecture_options=engine.architecture_options,
            backend=engine.backend,
            backend_options=engine.backend_options,
            apodization=engine.apodization,
            interpolation=engine.interpolation,
            precision=engine.precision,
            quantization=engine.quantization,
            scheme=engine.scheme,
            scheme_options=engine.scheme_options,
            cache=self.cache,
            simulator=simulator,
            tracer=self.tracer,
            memory_budget_bytes=engine.memory_budget_bytes)

    def _sampling_frequency(self, state: _SessionState) -> float:
        return state.service.system.acoustic.sampling_frequency

    # ---------------------------------------------------------------- rings
    def _acquire_slot(self, state: _SessionState,
                      timeout: float | None) -> SlotLease:
        with self._lock:
            if self._closed or state.closed:
                raise ServerClosed("session is closed")
            if state.ring is None:
                if not state.service.scheme.is_trivial():
                    raise ValueError(
                        f"scheme {state.service.scheme.name!r} takes "
                        "per-firing tuples; submit them via submit(), not "
                        "the single-frame ring")
                service = state.service
                shape = (service.beamformer.transducer.element_count,
                         service.system.echo_buffer_samples)
                state.ring = SharedFrameRing(
                    shape, slots=self.spec.resolve_ring_slots())
            ring = state.ring
        return ring.acquire(timeout=timeout)

    # ----------------------------------------------------------- submission
    def _submit(self, state: _SessionState, payload: Any, noise_std: float,
                seed: int, lease: SlotLease | None,
                timeout: float | None) -> FrameTicket:
        with self._lock:
            if self._closed or state.closed:
                if lease is not None:
                    lease.release()
                raise ServerClosed(
                    f"session {state.session_id!r} is closed")
            ticket = FrameTicket(state.session_id, state.next_frame_id)
            state.next_frame_id += 1
            dropped: _QueuedFrame | None = None
            if len(state.queue) >= state.capacity:
                if state.policy is BackpressurePolicy.BLOCK:
                    ok = state.space.wait_for(
                        lambda: len(state.queue) < state.capacity
                        or self._closed or state.closed,
                        timeout=timeout)
                    if self._closed or state.closed:
                        if lease is not None:
                            lease.release()
                        raise ServerClosed(
                            f"session {state.session_id!r} closed while "
                            "blocked on a full queue")
                    if not ok:
                        if lease is not None:
                            lease.release()
                        raise TimeoutError(
                            f"queue of session {state.session_id!r} still "
                            f"full after {timeout} s (block policy)")
                elif state.policy is BackpressurePolicy.DROP_OLDEST:
                    dropped = state.queue.popleft()
                else:  # DROP_LATEST: shed the new frame itself.
                    state.drops_counter.inc()
                    self._drops.inc()
                    if lease is not None:
                        lease.release()
                    ticket._future.set_exception(FrameDropped(
                        state.session_id, ticket.frame_id, state.policy))
                    return ticket
            state.queue.append(_QueuedFrame(
                ticket, payload, noise_std, seed, lease,
                time.perf_counter()))
            state.depth_gauge.set(len(state.queue))
            if dropped is not None:
                state.drops_counter.inc()
                self._drops.inc()
                if dropped.lease is not None:
                    dropped.lease.release()
            self._work.notify()
        if dropped is not None:
            # Resolve outside the lock: ticket callbacks are user code.
            dropped.ticket._future.set_exception(FrameDropped(
                state.session_id, dropped.ticket.frame_id, state.policy))
        return ticket

    # ------------------------------------------------------------ scheduling
    def _next_work(self) -> "tuple[_QueuedFrame, _SessionState] | None":
        """Round-robin dequeue across sessions; ``None`` = shut down."""
        with self._work:
            while True:
                n = len(self._order)
                for offset in range(n):
                    sid = self._order[(self._cursor + offset) % n]
                    state = self._sessions[sid]
                    if state.queue and not state.in_flight:
                        self._cursor = (self._cursor + offset + 1) % n
                        item = state.queue.popleft()
                        state.in_flight = True
                        state.depth_gauge.set(len(state.queue))
                        state.space.notify()
                        return item, state
                if self._closed:
                    return None
                self._work.wait()

    def _worker_loop(self) -> None:
        while True:
            work = self._next_work()
            if work is None:
                return
            item, state = work
            result: FrameResult | None = None
            error: BaseException | None = None
            try:
                with self.tracer.span("serve", session=state.session_id,
                                      frame_id=item.ticket.frame_id):
                    result = state.service.submit_frame(
                        item.payload, noise_std=item.noise_std,
                        seed=item.seed)
            except BaseException as exc:  # propagate through the ticket
                error = exc
            finally:
                if item.lease is not None:
                    item.lease.release()
            latency = time.perf_counter() - item.submitted_at
            with self._lock:
                state.in_flight = False
                if error is None:
                    self._frames.inc()
                    state.frames_counter.inc()
                    self._voxels.inc(result.voxel_count)
                    self._latency.observe(latency)
                    state.latency.observe(latency)
                else:
                    self._errors.inc()
                # The session may have become idle (drain()) or runnable
                # again for another worker.
                self._work.notify_all()
            if error is None:
                item.ticket._future.set_result(result)
            else:
                item.ticket._future.set_exception(error)

    # --------------------------------------------------------------- waiting
    def _drain(self, state: _SessionState, timeout: float | None) -> bool:
        with self._work:
            return self._work.wait_for(
                lambda: not state.queue and not state.in_flight,
                timeout=timeout)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every session's queue is empty and nothing is in
        flight; ``False`` on timeout."""
        with self._work:
            return self._work.wait_for(
                lambda: all(not s.queue and not s.in_flight
                            for s in self._sessions.values()),
                timeout=timeout)

    # ----------------------------------------------------------------- stats
    def stats(self) -> ServerStats:
        """Aggregate + per-session figures (always safe to call)."""
        with self._lock:
            sessions = tuple(
                SessionHandle(self, state).stats()
                for state in self._sessions.values())
        return ServerStats(
            workers=self.workers,
            frames=int(self._frames.value),
            drops=int(self._drops.value),
            voxels=int(self._voxels.value),
            p50_latency_seconds=self._latency.percentile(50),
            p95_latency_seconds=self._latency.percentile(95),
            p99_latency_seconds=self._latency.percentile(99),
            sessions=sessions)

    def export_metrics(self) -> MetricsRegistry:
        """The server's complete exportable metric state.

        A fresh registry adopting (by reference) the server's own
        instruments — totals, per-session queue-depth gauges, drop/frame
        counters and latency histograms (quantiles render as Prometheus
        ``summary`` series) — plus the shared plan cache's counters.
        """
        exported = MetricsRegistry()
        exported.merge(self.metrics)
        exported.merge(self.cache.metrics)
        return exported

    # ------------------------------------------------------------- lifecycle
    def _cancel_queue(self, state: _SessionState) -> list[_QueuedFrame]:
        """Pop every pending frame (caller must hold the lock)."""
        cancelled = list(state.queue)
        state.queue.clear()
        state.depth_gauge.set(0)
        for item in cancelled:
            if item.lease is not None:
                item.lease.release()
        state.space.notify_all()
        return cancelled

    def _close_session(self, state: _SessionState, drain: bool) -> None:
        with self._lock:
            if state.session_id not in self._sessions:
                return  # already closed
        if drain:
            self._drain(state, timeout=None)
        with self._lock:
            if state.session_id not in self._sessions:
                return
            state.closed = True
            cancelled = self._cancel_queue(state)
            del self._sessions[state.session_id]
            self._order.remove(state.session_id)
            self._cursor = 0
            self._sessions_gauge.set(len(self._sessions))
            self._work.notify_all()
        for item in cancelled:
            item.ticket._future.set_exception(ServerClosed(
                f"session {state.session_id!r} closed before frame "
                f"{item.ticket.frame_id} ran"))
        # The frame in flight (if any) still reads the service/ring; wait
        # for it before tearing them down.
        with self._work:
            self._work.wait_for(lambda: not state.in_flight)
        state.service.close()
        if state.ring is not None:
            state.ring.close()
            state.ring = None

    def close(self, drain: bool = True) -> None:
        """Shut the server down.

        With ``drain`` (default) every queued frame finishes first; without
        it pending frames are cancelled (tickets resolve
        :class:`ServerClosed`).  Worker threads are joined, every session's
        engine closed and every ring released.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            if drain:
                pass  # mark closed only after the queues empty
            else:
                for state in self._sessions.values():
                    state.closed = True
        if drain:
            self.drain(timeout=None)
        cancelled: list[tuple[_SessionState, list[_QueuedFrame]]] = []
        with self._lock:
            self._closed = True
            states = list(self._sessions.values())
            for state in states:
                state.closed = True
                cancelled.append((state, self._cancel_queue(state)))
            self._sessions.clear()
            self._order.clear()
            self._sessions_gauge.set(0)
            self._work.notify_all()
        for state, items in cancelled:
            for item in items:
                item.ticket._future.set_exception(ServerClosed(
                    f"server closed before frame {item.ticket.frame_id} "
                    f"of session {state.session_id!r} ran"))
        for thread in self._threads:
            thread.join()
        for state in states:
            state.service.close()
            if state.ring is not None:
                state.ring.close()
                state.ring = None

    def __enter__(self) -> "BeamformingServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- plumbing
    @property
    def session_ids(self) -> Sequence[str]:
        """Ids of the currently open sessions (submission order)."""
        with self._lock:
            return tuple(self._order)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BeamformingServer(workers={self.workers}, "
                f"sessions={len(self._sessions)}, "
                f"policy={self.spec.policy.value!r})")
