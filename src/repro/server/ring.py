"""Zero-copy frame transport: shared-memory ring buffers.

The paper's hardware streams echo samples through BRAM line buffers sized
to the delay window; the server's software analogue is a
:class:`SharedFrameRing` — a fixed number of frame-shaped slots carved out
of one :class:`multiprocessing.shared_memory.SharedMemory` segment.  A
producer acquires a slot, writes its RF samples directly into the mapped
memory, and submits the *slot* to the server; the beamforming worker reads
the same physical pages through a NumPy view, so a frame is written once
and never copied on its way into the kernels.  Because the segment is
OS-shared, the producer does not have to live in the server process: an
acquisition process spawned through
:func:`repro.runtime.mp.spawn_context` can attach by name
(:meth:`SharedFrameRing.attach`) and feed the ring across the process
boundary — pinned bit-identical in ``tests/test_mp.py``.

Slot accounting (which slots are free, which are in flight) lives in the
*creating* process: the server owns the ring's lifecycle, producers only
ever write into slots the server leased out.  Attached rings are views
without accounting authority.
"""

from __future__ import annotations

import threading
from multiprocessing import shared_memory
from typing import Any

import numpy as np

__all__ = ["RingExhausted", "SharedFrameRing", "SlotLease"]


class RingExhausted(RuntimeError):
    """Raised when no slot becomes free within the acquire timeout."""


class SlotLease:
    """One leased slot of a :class:`SharedFrameRing`.

    ``array`` is a writable NumPy view straight into the shared segment —
    filling it *is* the frame transport.  Release the lease (or let the
    server release it when the frame completes) to return the slot to the
    free list.  Usable as a context manager for producer-side code that
    fills and hands the data off synchronously.
    """

    __slots__ = ("ring", "index", "_released")

    def __init__(self, ring: "SharedFrameRing", index: int) -> None:
        self.ring = ring
        self.index = index
        self._released = False

    @property
    def array(self) -> np.ndarray:
        """Writable frame-shaped view into the shared segment."""
        if self._released:
            raise RuntimeError(f"slot {self.index} was already released")
        return self.ring.view(self.index)

    def release(self) -> None:
        """Return the slot to the ring's free list (idempotent)."""
        if not self._released:
            self._released = True
            self.ring._release(self.index)

    def __enter__(self) -> "SlotLease":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self._released else "held"
        return f"SlotLease(index={self.index}, {state})"


def _unregister_from_resource_tracker(name: str) -> None:
    """Detach an *attached* segment from this process's resource tracker.

    Before Python 3.13 every ``SharedMemory(name=...)`` attach registers
    the segment with the attaching process's resource tracker, which then
    unlinks it when the attacher exits — destroying a segment the creator
    still owns.  Attach-side rings therefore unregister themselves; the
    creator remains the one owner of the segment's lifetime.
    """
    try:  # pragma: no cover - interpreter-version dependent
        from multiprocessing import resource_tracker
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class SharedFrameRing:
    """A fixed pool of frame slots in one shared-memory segment.

    Parameters
    ----------
    shape:
        Per-frame array shape — for channel data,
        ``(n_elements, n_samples)``.
    slots:
        Number of frames the ring holds at once; bounds how many frames a
        producer can have in flight (acquire blocks, or raises after
        ``timeout``, when all slots are leased — the transport-level
        backpressure underneath the server's queue policies).
    dtype:
        Frame sample dtype (``float64`` default, matching the exact
        kernel path).
    name:
        Optional explicit segment name (auto-generated when ``None``).
    """

    def __init__(self, shape: tuple[int, ...], slots: int = 4,
                 dtype: Any = np.float64, name: str | None = None) -> None:
        if slots < 1:
            raise ValueError("a ring needs at least one slot")
        self.shape = tuple(int(n) for n in shape)
        if not self.shape or any(n < 1 for n in self.shape):
            raise ValueError(f"invalid frame shape {shape!r}")
        self.slots = int(slots)
        self.dtype = np.dtype(dtype)
        self.frame_bytes = int(np.prod(self.shape)) * self.dtype.itemsize
        self._owns_segment = True
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.slots * self.frame_bytes, name=name)
        self._lock = threading.Condition()
        self._free = list(range(self.slots - 1, -1, -1))
        self._closed = False

    # ------------------------------------------------------------ attaching
    @classmethod
    def attach(cls, descriptor: dict) -> "SharedFrameRing":
        """Open an existing ring from its :meth:`descriptor` (any process).

        The attached ring maps the same physical pages but has *no slot
        accounting*: ``acquire`` is refused; only :meth:`view` (for slots
        leased by the creator) is meaningful.  Closing an attached ring
        unmaps it without destroying the segment.
        """
        ring = cls.__new__(cls)
        ring.shape = tuple(int(n) for n in descriptor["shape"])
        ring.slots = int(descriptor["slots"])
        ring.dtype = np.dtype(descriptor["dtype"])
        ring.frame_bytes = int(np.prod(ring.shape)) * ring.dtype.itemsize
        ring._owns_segment = False
        ring._shm = shared_memory.SharedMemory(name=descriptor["name"])
        _unregister_from_resource_tracker(descriptor["name"])
        ring._lock = threading.Condition()
        ring._free = []
        ring._closed = False
        return ring

    def descriptor(self) -> dict:
        """JSON-safe handle another process can :meth:`attach` with."""
        return {"name": self._shm.name, "slots": self.slots,
                "shape": list(self.shape), "dtype": self.dtype.str}

    # ------------------------------------------------------------- slotting
    def view(self, index: int) -> np.ndarray:
        """Frame-shaped NumPy view of slot ``index`` (no copy, writable)."""
        if self._closed:
            raise RuntimeError("ring is closed")
        if not 0 <= index < self.slots:
            raise IndexError(f"slot {index} out of range 0..{self.slots - 1}")
        start = index * self.frame_bytes
        return np.ndarray(self.shape, dtype=self.dtype,
                          buffer=self._shm.buf[start:start + self.frame_bytes])

    def acquire(self, timeout: float | None = None) -> SlotLease:
        """Lease a free slot, blocking up to ``timeout`` seconds.

        Raises :class:`RingExhausted` when every slot stays in flight for
        the whole timeout — the caller is producing faster than the server
        retires frames and must back off (or size the ring larger).
        """
        if not self._owns_segment:
            raise RuntimeError(
                "attached rings cannot lease slots; only the creating "
                "process owns the free list")
        with self._lock:
            if not self._free and not self._lock.wait_for(
                    lambda: bool(self._free) or self._closed,
                    timeout=timeout):
                raise RingExhausted(
                    f"no free slot in {self.slots}-slot ring after "
                    f"{timeout} s (all frames still in flight)")
            if self._closed:
                raise RuntimeError("ring is closed")
            return SlotLease(self, self._free.pop())

    def _release(self, index: int) -> None:
        with self._lock:
            if not self._closed and index not in self._free:
                self._free.append(index)
                self._lock.notify()

    @property
    def free_slots(self) -> int:
        """Number of slots currently available to :meth:`acquire`."""
        with self._lock:
            return len(self._free)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Unmap the segment; the creator additionally destroys it.

        Idempotent.  Any still-live :meth:`view` arrays become invalid, so
        the server only closes a session's ring after its last frame
        retired.
        """
        if self._closed:
            return
        with self._lock:
            self._closed = True
            self._free = []
            self._lock.notify_all()
        self._shm.close()
        if self._owns_segment:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedFrameRing":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SharedFrameRing(name={self._shm.name!r}, "
                f"slots={self.slots}, shape={self.shape}, "
                f"dtype={self.dtype.name})")


# ----------------------------------------------------- cross-process demo
def seeded_frame(shape: tuple[int, ...], dtype: Any, seed: int) -> np.ndarray:
    """Deterministic frame payload for cross-process transport checks."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(tuple(shape)).astype(np.dtype(dtype))


def fill_slot_from_seed(descriptor: dict, index: int, seed: int) -> None:
    """Child-process entry point: attach and fill one slot with
    :func:`seeded_frame`.

    Module-level (picklable by reference) so it can be the target of a
    process from :func:`repro.runtime.mp.spawn_context` — the regression
    test spawns it and asserts the parent reads the identical bits back
    through the shared segment.
    """
    ring = SharedFrameRing.attach(descriptor)
    try:
        ring.view(index)[:] = seeded_frame(ring.shape, ring.dtype, seed)
    finally:
        ring.close()
