"""Multi-session soak benchmark: aggregate served throughput vs workers.

Drives one :class:`repro.server.BeamformingServer` with N concurrent
client sessions, each pushing pre-recorded frames as fast as backpressure
admits them, and measures the *aggregate* volume rate — the figure the
paper's multi-channel front end is ultimately sized against.  Rows are
keyed ``s{sessions}w{workers}`` and merge into ``BENCH_runtime.json``
under ``"server_soak"``, where the benchgate compares like-configured
rows between baseline and fresh runs (rows only one side has are
reported, never gated — a CI smoke soak on a different shape cannot
trip against the committed 8-session baseline).

Usage::

    PYTHONPATH=src python -m repro.server.soak --sessions 8 --workers 4 \
        --frames 6 --json BENCH_runtime.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path
from typing import Sequence

from ..acoustics.phantom import point_target
from ..api.specs import EngineSpec
from .server import BeamformingServer, SessionHandle
from .spec import ServerSpec

__all__ = ["main", "run_soak", "soak_key"]


def soak_key(sessions: int, workers: int,
             backend: str = "vectorized") -> str:
    """Benchmark-row key for one soak configuration.

    The default ``vectorized`` backend keeps the historical bare
    ``s{sessions}w{workers}`` spelling (the committed baseline rows), so
    sweeping other backends — ``--backend compiled`` on the numba CI leg —
    adds *new* ``s8w2-compiled``-style rows instead of clobbering the
    gated NumPy ones.
    """
    key = f"s{sessions}w{workers}"
    if backend != "vectorized":
        key += f"-{backend}"
    return key


def _session_producer(handle: SessionHandle, payload: object,
                      frames: int) -> None:
    """One client: submit ``frames`` copies of ``payload`` back to back.

    The ``block`` policy makes the submit loop itself exert backpressure,
    so the soak measures sustained service rate, not queue growth.
    """
    tickets = [handle.submit(payload) for _ in range(frames)]
    for ticket in tickets:
        ticket.result()


def run_soak(sessions: int = 8, frames_per_session: int = 4,
             workers: int | None = None, system: str = "small",
             backend: str = "vectorized", seed: int = 1234) -> dict:
    """Soak one server configuration; returns its benchmark row.

    Every session gets its own pre-simulated echo frame (acquisition is
    excluded from the measured window), its own submitting thread, and the
    lossless ``block`` policy — all ``sessions * frames_per_session``
    frames are beamformed, so voxels/s is exact, not drop-inflated.
    """
    if sessions < 1 or frames_per_session < 1:
        raise ValueError("sessions and frames_per_session must be >= 1")
    engine = EngineSpec(system=system, architecture="tablesteer",
                        backend=backend)
    spec = ServerSpec(engine=engine, workers=workers, policy="block")
    with BeamformingServer(spec) as server:
        handles = [server.open_session() for _ in range(sessions)]
        # Pre-simulate one deterministic frame per session, outside the
        # timed window; the first submission also warms the plan cache.
        sysconf = engine.resolve_system()
        phantom = point_target(0.5 * (sysconf.volume.depth_min
                                      + sysconf.volume.depth_max))
        simulator = server._simulators[sysconf.cache_key()]
        payloads = [simulator.simulate(phantom, seed=seed + i)
                    for i in range(sessions)]
        handles[0].submit(payloads[0]).result()  # plan compile warm-up

        start = time.perf_counter()
        producers = [
            threading.Thread(target=_session_producer,
                             args=(handle, payload, frames_per_session),
                             name=f"soak-client-{i}")
            for i, (handle, payload) in enumerate(zip(handles, payloads))]
        for producer in producers:
            producer.start()
        for producer in producers:
            producer.join()
        server.drain()
        elapsed = time.perf_counter() - start

        stats = server.stats()
        frames = sessions * frames_per_session
        voxels_per_frame = stats.voxels // stats.frames if stats.frames else 0
        row = {
            "sessions": sessions,
            "workers": server.workers,
            "backend": backend,
            "frames_per_session": frames_per_session,
            "frames": frames,
            "drops": stats.drops,
            "elapsed_seconds": elapsed,
            "frames_per_second": frames / elapsed if elapsed else 0.0,
            "voxels_per_second":
                frames * voxels_per_frame / elapsed if elapsed else 0.0,
            "p50_latency_seconds": stats.p50_latency_seconds,
            "p95_latency_seconds": stats.p95_latency_seconds,
            "p99_latency_seconds": stats.p99_latency_seconds,
            "cache_hits": int(server.cache.stats.hits),
            "cache_misses": int(server.cache.stats.misses),
        }
    return row


def merge_soak_rows(path: Path, system: str, rows: dict) -> dict:
    """Merge soak rows into a benchmark JSON file under ``server_soak``.

    The file's other content (the E11 table) is preserved; an absent file
    starts a minimal document carrying the ``system`` key the benchgate
    requires for comparability.
    """
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {"system": system}
    soak = data.setdefault("server_soak", {})
    soak.update(rows)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (see module docstring)."""
    parser = argparse.ArgumentParser(
        description="soak a multi-session beamforming server and report "
                    "aggregate throughput")
    parser.add_argument("--sessions", type=int, default=8,
                        help="concurrent client sessions (default 8)")
    parser.add_argument("--frames", type=int, default=4,
                        help="frames per session (default 4)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker threads (default: auto)")
    parser.add_argument("--system", default="small",
                        help="system preset (default small)")
    parser.add_argument("--backend", default="vectorized",
                        help="execution backend (default vectorized)")
    parser.add_argument("--json", type=Path, default=None,
                        help="merge the row into this benchmark JSON "
                             "under 'server_soak'")
    args = parser.parse_args(argv)
    try:
        row = run_soak(sessions=args.sessions,
                       frames_per_session=args.frames,
                       workers=args.workers, system=args.system,
                       backend=args.backend)
    except ValueError as exc:
        print(f"soak error: {exc}", file=sys.stderr)
        return 2
    key = soak_key(row["sessions"], row["workers"], args.backend)
    print(f"server soak {key}: {row['frames']} frames in "
          f"{row['elapsed_seconds']:.2f}s — "
          f"{row['voxels_per_second']:.3e} voxels/s, "
          f"p99 {row['p99_latency_seconds'] * 1e3:.1f} ms, "
          f"{row['drops']} drops")
    if args.json is not None:
        merge_soak_rows(args.json, args.system, {key: row})
        print(f"merged row {key!r} into {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
