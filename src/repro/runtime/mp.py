"""The one place process-parallel code gets its multiprocessing context.

Python's default start method differs across platforms (``fork`` on Linux
until 3.14, ``spawn`` on macOS/Windows), and forked workers inherit an
arbitrary snapshot of the parent — thread locks mid-acquire, BLAS thread
pools, open shared-memory handles — which is exactly the class of
platform-dependent behaviour a bit-pinned reproduction cannot tolerate.
Everything in this repo that creates processes or process-shared state
(:mod:`repro.server` and, should it ever grow a process mode, the sharded
execution backend) therefore resolves its context through
:func:`spawn_context` instead of touching :mod:`multiprocessing` directly,
so the start method is pinned to ``spawn`` in exactly one line.

``tests/test_mp.py`` enforces the "one place" rule mechanically: it scans
``src/repro`` for stray ``get_context``/``set_start_method``/``Process(``
uses outside this module and fails on any, and round-trips frames through
a spawned producer to prove the pinned method actually works end to end.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing.context import BaseContext

__all__ = ["START_METHOD", "spawn_context"]

START_METHOD = "spawn"
"""The pinned start method (identical on Linux/macOS/Windows).

Deliberately not configurable: ``fork`` would make worker behaviour (and
worker crashes) platform-specific, and ``forkserver`` does not exist on
Windows.  Code that needs a context imports :func:`spawn_context`; nothing
in the repo may call :func:`multiprocessing.set_start_method`, which would
mutate *global* interpreter state out from under the host application.
"""


def spawn_context() -> BaseContext:
    """The process-wide ``spawn`` multiprocessing context.

    A plain accessor rather than a module-level constant so importing this
    module stays side-effect free; ``multiprocessing.get_context`` itself
    memoises the context object.
    """
    return multiprocessing.get_context(START_METHOD)
