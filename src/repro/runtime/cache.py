"""LRU cache for compiled beamforming plans.

Compiling a :class:`repro.kernels.BeamformingPlan` — generating the full
``(n_points, n_elements)`` delay and weight tensors and resolving them into
gather indices — is by far the most expensive part of beamforming a volume
in software, exactly the bottleneck the paper attacks in hardware.  In a
streaming setting the probe geometry is fixed across a cine sequence, so the
plan is identical for every frame; :class:`PlanCache` stores it under
:func:`repro.kernels.plan_key` (system digest + delay architecture +
apodization + interpolation + dtype) so that only the first frame of a
sequence pays the compile cost, and engines differing in any of those
components can never be served each other's plan.  The cache is a plain LRU
whose hit/miss/eviction counters are
:class:`repro.observability.Counter` instruments of a
:class:`repro.observability.MetricsRegistry` — the runtime's stats (and the
regression tests) assert on them to prove that repeated frames skip
compilation, and the same instruments export as a Prometheus-style snapshot
without a second bookkeeping path.

``DelayTableCache`` is the class's historical name, kept as an alias.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

from ..observability.metrics import MetricsRegistry

T = TypeVar("T")


@dataclass(frozen=True)
class CacheStats:
    """Counters describing how a :class:`PlanCache` has been used."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    bytes: int = 0
    peak_bytes: int = 0
    max_bytes: int | None = None

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """A small LRU cache mapping plan keys to compiled plans.

    Parameters
    ----------
    capacity:
        Maximum number of entries kept; the least recently *used* entry is
        evicted when a new key is inserted into a full cache.  Each entry for
        a paper-scale system can be hundreds of megabytes, so the default is
        deliberately small.
    metrics:
        Optional :class:`repro.observability.MetricsRegistry` the cache
        registers its ``plan_cache_*`` counters in — pass the owning
        service's/session's registry to co-locate the cache series with the
        rest of its metrics.  Without one the cache keeps a private
        registry, so :attr:`stats` always works.
    max_bytes:
        Optional plan-memory budget in bytes (or a suffixed string like
        ``"8G"``, parsed by
        :func:`repro.kernels.tiling.parse_memory_budget`).  When set, the
        byte budget **replaces** the entry-count bound: the cache evicts
        least-recently-used entries by their tracked ``nbytes`` until the
        budget holds — a count bound of 4 would thrash a tiled sweep whose
        segments are deliberately sized to the budget.  On a miss with a
        ``size_hint`` the eviction happens *before* the builder runs, so
        resident plan bytes plus the segment being built never exceed the
        budget mid-sweep.  Tracked/peak bytes export as the
        ``plan_cache_bytes`` / ``plan_cache_peak_bytes`` gauges (peak is
        the number E9 reports against the budget); bytes are tracked even
        without a budget, so the gauges are always meaningful.
    """

    def __init__(self, capacity: int = 4,
                 metrics: MetricsRegistry | None = None,
                 max_bytes: int | str | None = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        if max_bytes is not None:
            from ..kernels.tiling import parse_memory_budget
            max_bytes = parse_memory_budget(max_bytes)
        self.max_bytes = max_bytes
        # One cache is shared by every session of a BeamformingServer, whose
        # worker threads look plans up concurrently — all entry/counter
        # mutation happens under this lock.  Compilation runs under it too:
        # serialising two identical misses into one compile is cheaper than
        # compiling the same plan twice on both threads.
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter(
            "plan_cache_hits_total", "plan-cache lookups served from cache")
        self._misses = self.metrics.counter(
            "plan_cache_misses_total", "plan-cache lookups that compiled")
        self._evictions = self.metrics.counter(
            "plan_cache_evictions_total", "plans evicted by the LRU bound")
        self._bytes = 0
        self._peak_bytes = 0
        self._bytes_gauge = self.metrics.gauge(
            "plan_cache_bytes", "tracked bytes of resident cached plans")
        self._peak_gauge = self.metrics.gauge(
            "plan_cache_peak_bytes",
            "high-water mark of resident cached plan bytes")

    # ------------------------------------------------------------- lookups
    @staticmethod
    def _entry_bytes(value: object) -> int:
        """Tracked size of one entry (plans expose ``nbytes``; 0 otherwise)."""
        return int(getattr(value, "nbytes", 0) or 0)

    def _evict_oldest(self) -> None:
        """Drop the least-recently-used entry (caller holds the lock)."""
        _, value = self._entries.popitem(last=False)
        self._bytes -= self._entry_bytes(value)
        self._evictions.inc()
        self._bytes_gauge.set(self._bytes)

    def get_or_build(self, key: Hashable, builder: Callable[[], T], *,
                     size_hint: int | None = None) -> T:
        """Return the cached value for ``key``, building (and storing) it on miss.

        Thread-safe: concurrent callers asking for the same missing key
        block until the first caller's ``builder()`` finishes and then all
        receive the one built value (one miss, n-1 hits).

        ``size_hint`` is the predicted byte size of the value about to be
        built (segment callers pass the exact
        :func:`repro.kernels.plan.plan_storage_bytes` prediction).  Under a
        byte budget the cache pre-evicts LRU entries until the hint fits
        *before* invoking the builder, so the budget holds even while the
        new plan is being materialised.
        """
        with self._lock:
            if key in self._entries:
                self._hits.inc()
                self._entries.move_to_end(key)
                return self._entries[key]  # type: ignore[return-value]
            self._misses.inc()
            if self.max_bytes is not None and size_hint is not None:
                while self._entries and \
                        self._bytes + int(size_hint) > self.max_bytes:
                    self._evict_oldest()
            value = builder()
            self._entries[key] = value
            self._bytes += self._entry_bytes(value)
            if self.max_bytes is not None:
                # The byte budget replaces the count bound; never evict the
                # entry just inserted (it is in use by the caller).
                while self._bytes > self.max_bytes and len(self._entries) > 1:
                    self._evict_oldest()
            elif len(self._entries) > self.capacity:
                self._evict_oldest()
            self._peak_bytes = max(self._peak_bytes, self._bytes)
            self._bytes_gauge.set(self._bytes)
            self._peak_gauge.set(self._peak_bytes)
            return value

    def limit_bytes(self, max_bytes: int | str) -> None:
        """Impose (or tighten) the byte budget; never loosens an existing
        one.  Evicts immediately if the current contents already overflow
        the new bound."""
        from ..kernels.tiling import parse_memory_budget
        budget = parse_memory_budget(max_bytes)
        with self._lock:
            self.max_bytes = budget if self.max_bytes is None \
                else min(self.max_bytes, budget)
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                self._evict_oldest()

    def reserve(self, capacity: int, *, nbytes: int | None = None) -> None:
        """Grow the eviction bound to at least ``capacity`` (never shrink).

        Used by engines whose working set is known up front — e.g. a
        multi-firing transmit scheme needs one plan slot per firing, or
        every compounded frame would evict and recompile its own event
        bank.

        Under a byte budget (``max_bytes`` set) the entry-count bound is
        inactive, so a count-only reservation cannot actually be honoured:
        the LRU evicts by bytes regardless of how many slots were reserved.
        Callers that know their working set's size pass ``nbytes`` (e.g.
        ``plan_storage_bytes(...) * slots``); a reservation whose bytes fit
        the budget is then genuinely safe (nothing inside the budget is
        ever evicted) and stays silent.  A reservation that *exceeds* the
        budget — or states no byte figure while asking for growth — emits a
        :class:`RuntimeWarning` instead of silently doing nothing, so
        budget-limited sweeps learn up front that their plan working set
        may thrash through segment recompiles.  The budget itself is never
        loosened: it is the user's hard memory cap.
        """
        with self._lock:
            capacity = int(capacity)
            grows = capacity > self.capacity
            self.capacity = max(self.capacity, capacity)
            if self.max_bytes is None:
                return
            if nbytes is not None:
                if int(nbytes) > self.max_bytes:
                    warnings.warn(
                        f"plan-cache reservation of {capacity} slots "
                        f"(~{int(nbytes)} bytes) exceeds the "
                        f"{self.max_bytes}-byte budget; the byte budget "
                        "replaces the entry-count bound, so the working set "
                        "may thrash through segment recompiles",
                        RuntimeWarning, stacklevel=2)
            elif grows:
                warnings.warn(
                    f"plan-cache reservation of {capacity} slots cannot be "
                    f"honoured under the {self.max_bytes}-byte budget (the "
                    "byte budget replaces the entry-count bound); pass "
                    "nbytes= to state the working-set size, or expect "
                    "segment recompiles",
                    RuntimeWarning, stacklevel=2)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------ lifecycle
    def clear(self) -> None:
        """Drop all entries (counters and the byte high-water mark are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._bytes_gauge.set(0)

    @property
    def stats(self) -> CacheStats:
        """Consistent snapshot of the usage counters.

        Taken under the cache lock: concurrent server workers mutate
        ``size``/``bytes``/``peak_bytes`` together inside
        :meth:`get_or_build`, so an unlocked read could observe a torn
        combination (e.g. the new entry counted in ``size`` but not yet in
        ``bytes``).
        """
        with self._lock:
            return CacheStats(hits=int(self._hits.value),
                              misses=int(self._misses.value),
                              evictions=int(self._evictions.value),
                              size=len(self._entries),
                              capacity=self.capacity,
                              bytes=int(self._bytes),
                              peak_bytes=int(self._peak_bytes),
                              max_bytes=self.max_bytes)


DelayTableCache = PlanCache
"""Backward-compatible alias from before the cache held compiled plans."""
