"""LRU cache for precomputed delay/weight tensors.

Generating the full ``(n_points, n_elements)`` delay tensor is by far the
most expensive part of beamforming a volume in software — exactly the
bottleneck the paper attacks in hardware.  In a streaming setting the probe
geometry is fixed across a cine sequence, so the tensor is identical for
every frame; :class:`DelayTableCache` stores it under a stable composite key
(:meth:`repro.config.SystemConfig.cache_key` plus the delay architecture and
apodization) so that only the first frame of a sequence pays the generation
cost.  The cache is a plain LRU with hit/miss/eviction counters, which the
runtime's stats (and the regression tests) assert on to prove that repeated
frames skip regeneration.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class CacheStats:
    """Counters describing how a :class:`DelayTableCache` has been used."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DelayTableCache:
    """A small LRU cache mapping table keys to prebuilt tensors.

    Parameters
    ----------
    capacity:
        Maximum number of entries kept; the least recently *used* entry is
        evicted when a new key is inserted into a full cache.  Each entry for
        a paper-scale system can be hundreds of megabytes, so the default is
        deliberately small.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------- lookups
    def get_or_build(self, key: Hashable, builder: Callable[[], T]) -> T:
        """Return the cached value for ``key``, building (and storing) it on miss."""
        if key in self._entries:
            self._hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]  # type: ignore[return-value]
        self._misses += 1
        value = builder()
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
        return value

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------ lifecycle
    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the usage counters."""
        return CacheStats(hits=self._hits, misses=self._misses,
                          evictions=self._evictions, size=len(self._entries),
                          capacity=self.capacity)
