"""repro.runtime: batched multi-backend streaming beamforming runtime.

The software-throughput layer of the reproduction: where :mod:`repro.core`
answers *how a delay is generated* and :mod:`repro.kernels` *how delays are
consumed*, this package answers *how fast volumes can be streamed* once
plan compilation is amortised — the same question the paper's Section
II-C/V-B asks of the hardware.

* :mod:`repro.runtime.cache` — LRU :class:`PlanCache` of compiled
  :class:`repro.kernels.BeamformingPlan` artifacts keyed by
  :func:`repro.kernels.plan_key`.
* :mod:`repro.runtime.backends` — ``reference`` / ``vectorized`` /
  ``sharded`` / ``compiled`` execution backends, all running through the
  kernel layer (``compiled`` needs the optional numba package and raises
  :class:`repro.kernels.BackendUnavailable` at build time without it).
* :mod:`repro.runtime.scheduler` — frame queue and cine-sequence builders.
* :mod:`repro.runtime.service` — the :class:`BeamformingService` facade
  with per-frame latency, aggregate throughput metrics and batched
  multi-frame submission.

Observability: every layer here accepts a
:class:`repro.observability.Tracer` (``compile``/``execute``/``gather``/…
spans) and keeps its counters as :class:`repro.observability.MetricsRegistry`
instruments — see :mod:`repro.observability` and ``docs/observability.md``.
"""

from ..kernels import (
    BackendUnavailable,
    BeamformingPlan,
    Precision,
    QuantizationSpec,
    QuantizedPlan,
    compile_plan,
    compile_quantized_plan,
    plan_key,
)
from .backends import (
    BACKEND_NAMES,
    BACKENDS,
    CompiledBackend,
    CompiledOptions,
    ExecutionBackend,
    ReferenceBackend,
    ShardedBackend,
    ShardedOptions,
    VectorizedBackend,
    make_backend,
    tables_key,
)
from .cache import CacheStats, DelayTableCache, PlanCache
from .scheduler import (
    FrameRequest,
    FrameResult,
    FrameScheduler,
    moving_point_cine,
    static_cine,
)
from .service import BeamformingService, RuntimeStats

__all__ = [
    "BACKEND_NAMES",
    "BACKENDS",
    "BackendUnavailable",
    "BeamformingPlan",
    "BeamformingService",
    "CacheStats",
    "CompiledBackend",
    "CompiledOptions",
    "DelayTableCache",
    "ExecutionBackend",
    "FrameRequest",
    "FrameResult",
    "FrameScheduler",
    "PlanCache",
    "Precision",
    "QuantizationSpec",
    "QuantizedPlan",
    "ReferenceBackend",
    "RuntimeStats",
    "ShardedBackend",
    "ShardedOptions",
    "VectorizedBackend",
    "compile_plan",
    "compile_quantized_plan",
    "make_backend",
    "moving_point_cine",
    "plan_key",
    "static_cine",
    "tables_key",
]
