"""repro.runtime: batched multi-backend streaming beamforming runtime.

The software-throughput layer of the reproduction: where :mod:`repro.core`
answers *how a delay is generated*, this package answers *how fast volumes
can be streamed* once generation is amortised — the same question the
paper's Section II-C/V-B asks of the hardware.

* :mod:`repro.runtime.cache` — LRU cache of precomputed delay/weight
  tensors keyed by :meth:`repro.config.SystemConfig.cache_key`.
* :mod:`repro.runtime.backends` — ``reference`` / ``vectorized`` /
  ``sharded`` execution backends producing identical volumes.
* :mod:`repro.runtime.scheduler` — frame queue and cine-sequence builders.
* :mod:`repro.runtime.service` — the :class:`BeamformingService` facade
  with per-frame latency and aggregate throughput metrics.
"""

from .backends import (
    BACKEND_NAMES,
    BACKENDS,
    DelayTables,
    ExecutionBackend,
    ReferenceBackend,
    ShardedBackend,
    ShardedOptions,
    VectorizedBackend,
    build_tables,
    make_backend,
    tables_key,
)
from .cache import CacheStats, DelayTableCache
from .scheduler import (
    FrameRequest,
    FrameResult,
    FrameScheduler,
    moving_point_cine,
    static_cine,
)
from .service import BeamformingService, RuntimeStats

__all__ = [
    "BACKEND_NAMES",
    "BACKENDS",
    "BeamformingService",
    "CacheStats",
    "DelayTableCache",
    "DelayTables",
    "ExecutionBackend",
    "FrameRequest",
    "FrameResult",
    "FrameScheduler",
    "ReferenceBackend",
    "RuntimeStats",
    "ShardedBackend",
    "ShardedOptions",
    "VectorizedBackend",
    "build_tables",
    "make_backend",
    "moving_point_cine",
    "static_cine",
    "tables_key",
]
