"""Pluggable execution backends for whole-volume beamforming.

The paper's hardware argument — that throughput is decided by how delays are
*produced*, not by the sum itself — has a direct software analogue: the
per-scanline reference path spends almost all of its time regenerating
delays and weights, while a batched path that reuses precomputed tensors is
limited only by the echo-buffer gather.  Three backends make that trade-off
explicit:

``reference``
    Delegates to the existing per-scanline
    :class:`repro.beamformer.das.DelayAndSumBeamformer` loop.  Ground truth
    and baseline for the throughput experiments.

``vectorized``
    Precomputes the full ``(n_points, n_elements)`` delay and weight tensors
    once per ``(SystemConfig, architecture)`` pair — optionally through a
    shared :class:`repro.runtime.cache.DelayTableCache` — and beamforms the
    whole volume with one batched gather/sum.

``sharded``
    The vectorized math applied to scanline blocks dispatched on a thread
    pool, modelling the paper's parallel delay-generation blocks (Fig. 4).

All three produce numerically identical volumes; the equivalence is pinned
by ``tests/test_runtime_backends.py``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np

from ..acoustics.echo import ChannelData
from ..beamformer.das import DelayAndSumBeamformer
from ..beamformer.interpolation import fetch_samples
from ..registry import Registry, RegistryError
from .cache import DelayTableCache


@dataclass(frozen=True)
class DelayTables:
    """Precomputed per-volume beamforming tensors.

    Attributes
    ----------
    delays:
        Fractional-sample delays, shape ``(n_points, n_elements)`` with
        points in scanline-major ``(i_theta, i_phi, i_depth)`` order.
    weights:
        Receive apodization weights, same shape and ordering.
    grid_shape:
        Focal-grid shape ``(n_theta, n_phi, n_depth)`` used to fold the flat
        point axis back into a volume.
    """

    delays: np.ndarray
    weights: np.ndarray
    grid_shape: tuple[int, int, int]

    @property
    def nbytes(self) -> int:
        """Total memory footprint of both tensors [bytes]."""
        return self.delays.nbytes + self.weights.nbytes


def tables_key(beamformer: DelayAndSumBeamformer) -> Hashable:
    """Stable cache key for the delay/weight tensors of a beamformer.

    Combines the physical system digest with the delay architecture (class
    plus its numerical design and origin) and the apodization settings —
    everything the tensors depend on.  Frames that share this key can share
    the tensors.
    """
    provider = beamformer.delays
    origin = getattr(provider, "origin", None)
    origin_key = tuple(np.asarray(origin, dtype=float).ravel()) \
        if origin is not None else None
    design = getattr(provider, "design", None)
    return (beamformer.system.cache_key(),
            type(provider).__name__,
            repr(design),
            origin_key,
            repr(beamformer.apodization))


def build_tables(beamformer: DelayAndSumBeamformer) -> DelayTables:
    """Generate the full delay and weight tensors for a beamformer's grid."""
    grid_shape = beamformer.grid.shape
    n_elements = beamformer.transducer.element_count
    delays = beamformer.delays.volume_delays_samples().reshape(-1, n_elements)
    weights = beamformer.volume_weights().reshape(-1, n_elements)
    return DelayTables(delays=delays, weights=weights, grid_shape=grid_shape)


class ExecutionBackend:
    """Common interface: beamform one frame of channel data into a volume."""

    name: str = "abstract"

    def __init__(self, beamformer: DelayAndSumBeamformer) -> None:
        self.beamformer = beamformer

    def beamform_volume(self, channel_data: ChannelData) -> np.ndarray:
        """Beamformed RF volume, shape ``(n_theta, n_phi, n_depth)``."""
        raise NotImplementedError


class ReferenceBackend(ExecutionBackend):
    """Per-scanline loop through the classic delay-and-sum path."""

    name = "reference"

    def beamform_volume(self, channel_data: ChannelData) -> np.ndarray:
        beamformer = self.beamformer
        n_theta, n_phi, n_depth = beamformer.grid.shape
        rf = np.empty((n_theta, n_phi, n_depth))
        for i_theta in range(n_theta):
            for i_phi in range(n_phi):
                rf[i_theta, i_phi] = beamformer.beamform_scanline(
                    channel_data, i_theta, i_phi)
        return rf


class VectorizedBackend(ExecutionBackend):
    """Whole-volume batched gather/sum over precomputed delay tensors.

    Parameters
    ----------
    beamformer:
        The configured delay-and-sum beamformer (supplies grid, provider,
        apodization and interpolation settings).
    cache:
        Optional shared :class:`DelayTableCache`.  Without one the backend
        still memoises its own tensors for the lifetime of the instance.
    """

    name = "vectorized"

    def __init__(self, beamformer: DelayAndSumBeamformer,
                 cache: DelayTableCache | None = None) -> None:
        super().__init__(beamformer)
        self.cache = cache
        self._key = tables_key(beamformer)
        self._tables: DelayTables | None = None

    def tables(self) -> DelayTables:
        """The (possibly cached) delay/weight tensors for this beamformer.

        With a cache attached, every frame goes through the cache — the
        hit/miss counters then directly record that repeated frames from the
        same probe geometry skip delay regeneration.
        """
        builder: Callable[[], DelayTables] = lambda: build_tables(self.beamformer)
        if self.cache is not None:
            return self.cache.get_or_build(self._key, builder)
        if self._tables is None:
            self._tables = builder()
        return self._tables

    def _sum_rows(self, channel_data: ChannelData, tables: DelayTables,
                  rows: slice) -> np.ndarray:
        delays = tables.delays[rows]
        weights = tables.weights[rows]
        element_indices = np.broadcast_to(np.arange(delays.shape[1]),
                                          delays.shape)
        samples = fetch_samples(channel_data, element_indices, delays,
                                kind=self.beamformer.interpolation)
        return np.sum(weights * samples, axis=1)

    def beamform_volume(self, channel_data: ChannelData) -> np.ndarray:
        tables = self.tables()
        flat = self._sum_rows(channel_data, tables,
                              slice(0, tables.delays.shape[0]))
        return flat.reshape(tables.grid_shape)


class ShardedBackend(VectorizedBackend):
    """Vectorized math over scanline blocks dispatched on a thread pool.

    The focal grid is split into ``shards`` contiguous point blocks; each
    worker gathers and sums its block independently (NumPy releases the GIL
    inside the heavy kernels).  Per-row arithmetic is identical to the
    vectorized backend, so the volumes match exactly.
    """

    name = "sharded"

    def __init__(self, beamformer: DelayAndSumBeamformer,
                 cache: DelayTableCache | None = None,
                 shards: int | None = None,
                 max_workers: int | None = None) -> None:
        super().__init__(beamformer, cache=cache)
        self.shards = shards or min(8, os.cpu_count() or 1)
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)

    def beamform_volume(self, channel_data: ChannelData) -> np.ndarray:
        tables = self.tables()
        n_points = tables.delays.shape[0]
        out = np.empty(n_points)
        bounds = np.linspace(0, n_points, self.shards + 1).astype(int)
        blocks = [slice(int(lo), int(hi))
                  for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]

        def work(rows: slice) -> None:
            out[rows] = self._sum_rows(channel_data, tables, rows)

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            # list() to surface worker exceptions instead of swallowing them.
            list(pool.map(work, blocks))
        return out.reshape(tables.grid_shape)


@dataclass(frozen=True)
class ShardedOptions:
    """Options for the ``sharded`` backend (``None`` means auto-size)."""

    shards: int | None = None
    """Number of contiguous point blocks the grid is split into."""

    max_workers: int | None = None
    """Thread-pool size used to dispatch the blocks."""


BACKENDS = Registry("backend")
"""Registry of execution backends (factory: ``(beamformer, cache, options)``)."""


@BACKENDS.register(
    "reference",
    description="per-scanline classic delay-and-sum loop (ground truth)")
def _build_reference(beamformer: DelayAndSumBeamformer,
                     cache: DelayTableCache | None,
                     options: None) -> ReferenceBackend:
    return ReferenceBackend(beamformer)


@BACKENDS.register(
    "vectorized",
    description="whole-volume batched gather/sum over cached delay tensors")
def _build_vectorized(beamformer: DelayAndSumBeamformer,
                      cache: DelayTableCache | None,
                      options: None) -> VectorizedBackend:
    return VectorizedBackend(beamformer, cache=cache)


@BACKENDS.register(
    "sharded", options=ShardedOptions,
    description="vectorized math over scanline blocks on a thread pool")
def _build_sharded(beamformer: DelayAndSumBeamformer,
                   cache: DelayTableCache | None,
                   options: ShardedOptions) -> ShardedBackend:
    return ShardedBackend(beamformer, cache=cache, shards=options.shards,
                          max_workers=options.max_workers)


BACKEND_NAMES: tuple[str, ...] = BACKENDS.names()
"""Built-in backend names (snapshot; prefer ``BACKENDS.names()``)."""


def make_backend(name: str, beamformer: DelayAndSumBeamformer,
                 cache: DelayTableCache | None = None,
                 options: object | None = None,
                 **kwargs) -> ExecutionBackend:
    """Instantiate an execution backend by name (registry-driven).

    ``reference`` ignores ``cache``.  Backend options are passed either as
    an ``options`` dataclass/dict (e.g. :class:`ShardedOptions`) or, for
    backward compatibility, as bare keyword arguments (``shards=4``).
    """
    if kwargs:
        if options is not None:
            raise RegistryError(
                "pass backend options either via 'options' or as keyword "
                "arguments, not both")
        options = kwargs
    return BACKENDS.create(name, beamformer, cache, options=options)
