"""Pluggable execution backends over the unified kernel layer.

The paper's hardware argument — that throughput is decided by how delays are
*produced and consumed*, not by the sum itself — has a direct software
analogue: the per-scanline reference path spends almost all of its time
regenerating delays and weights, while a compiled
:class:`repro.kernels.BeamformingPlan` reuses them for every frame and is
limited only by the echo-buffer gather.  Three backends make that trade-off
explicit; all of them execute through :mod:`repro.kernels`, so the math is
written exactly once:

``reference``
    Per-scanline loop that regenerates delays and weights every volume and
    feeds them to the uncompiled :func:`repro.kernels.delay_and_sum` kernel.
    Ground truth and baseline for the throughput experiments.

``vectorized``
    Compiles the plan once per ``(SystemConfig, architecture, apodization,
    interpolation, precision)`` — optionally through a shared
    :class:`repro.runtime.cache.PlanCache` — and beamforms whole volumes
    (or stacked multi-frame batches) with one batched gather/sum.

``sharded``
    The same plan executed over contiguous point blocks dispatched on a
    thread pool, modelling the paper's parallel delay-generation blocks
    (Fig. 4).

All three produce numerically identical volumes at ``float64``; under
``float32`` they match the ``float64`` reference within the pinned
:data:`repro.kernels.TOLERANCES`.  Both pins live in
``tests/test_runtime_backends.py`` and ``tests/test_kernels.py``.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..acoustics.echo import ChannelData
from ..beamformer.das import DelayAndSumBeamformer
from ..kernels import (
    BeamformingPlan,
    Precision,
    compile_plan,
    delay_and_sum,
    plan_key,
    quantized_delay_and_sum,
    resolve_precision,
)
from ..kernels.compiled import (
    BackendUnavailable as BackendUnavailable,  # re-exported for callers
    CompiledOptions,
    numba_available,
    require_numba,
)
from ..kernels.plan import BATCH_BLOCK_ELEMENTS
from ..observability.tracing import resolve_tracer
from ..registry import Registry, RegistryError
from .cache import PlanCache


def tables_key(beamformer: DelayAndSumBeamformer,
               precision: Precision | str | None = None) -> Hashable:
    """Stable cache key for a beamformer's compiled tensors.

    Alias of :func:`repro.kernels.plan_key`; the key covers the physical
    system digest, the delay architecture (class, design, origin), the
    apodization settings, the interpolation kind and the execution dtype —
    so a cache shared across engines can never return tensors built under a
    different interpolation or precision (the historical ``tables_key``
    omitted those last two components).
    """
    return plan_key(beamformer, precision)


class ExecutionBackend:
    """Common interface: beamform frames of channel data into volumes.

    Parameters
    ----------
    beamformer:
        The configured delay-and-sum beamformer (supplies grid, provider,
        apodization and interpolation settings).
    cache:
        Optional shared :class:`PlanCache`.  Without one the backend still
        memoises its own compiled plan for the lifetime of the instance.
    precision:
        Execution dtype policy (``float64`` default; see
        :class:`repro.kernels.Precision`).
    """

    name: str = "abstract"

    def __init__(self, beamformer: DelayAndSumBeamformer,
                 cache: PlanCache | None = None,
                 precision: Precision | str | None = None,
                 tracer=None) -> None:
        self.beamformer = beamformer
        self.cache = cache
        self.precision = resolve_precision(precision)
        # Mutable on purpose: the service/pipeline layers build backends
        # through the BACKENDS registry and attach their tracer afterwards.
        self.tracer = resolve_tracer(tracer)
        quantization = getattr(beamformer, "quantization", None)
        if quantization is not None:
            # Every backend (including the plan-less reference loop, whose
            # output array is allocated in the execution dtype) would
            # silently truncate the exact fixed-point codes under float32.
            quantization.validate_for(self.precision,
                                      beamformer.interpolation)
        self._key = plan_key(beamformer, self.precision)
        self._plan: BeamformingPlan | None = None
        self.memory_budget_bytes: int | None = None
        self._planner = None
        self._tiled = None

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release pooled resources; idempotent, safe on every backend.

        The base backends hold no pools, so this only drops the privately
        memoised plan (a shared cache's entries belong to the cache); the
        ``sharded`` backend additionally shuts its worker pool down.  A
        closed backend may be used again — pools are rebuilt lazily.
        """
        self._plan = None
        self._tiled = None

    # -------------------------------------------------------- memory budget
    def set_memory_budget(self, memory_budget_bytes: int | str | None
                          ) -> None:
        """Cap this backend's plan memory; ``None`` removes the cap.

        Builds the :class:`repro.kernels.tiling.TilePlanner` for the
        engine's grid/channels/precision immediately — a budget too small
        to hold one scanline is rejected right here with an actionable
        :class:`ValueError`, not at first frame.  When the planner needs
        more than one tile, :meth:`plan` hands out a streaming
        :class:`repro.kernels.tiling.TiledPlan` instead of the whole-grid
        plan; a budget large enough for the whole grid keeps the untiled
        fast path.  A shared :class:`PlanCache` is tightened to the same
        byte bound so resident plans can never exceed it either.

        The ``reference`` backend inherits the same validation but needs no
        tiling: its per-scanline loop already streams one scanline of
        delays at a time (the budget floor).
        """
        if memory_budget_bytes is None:
            self.memory_budget_bytes = None
            self._planner = None
            self._tiled = None
            return
        from ..kernels.tiling import TilePlanner, parse_memory_budget
        budget = parse_memory_budget(memory_budget_bytes)
        self._planner = TilePlanner.for_beamformer(
            self.beamformer, budget, precision=self.precision)
        self.memory_budget_bytes = budget
        self._tiled = None
        if self.cache is not None:
            self.cache.limit_bytes(budget)

    def _build_tiled(self, planner):
        """Build the tiled streaming plan — variant backends override."""
        from ..kernels.tiling import TiledPlan
        return TiledPlan(self.beamformer, planner, self.precision,
                         cache=self.cache)

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _compile_plan(self) -> BeamformingPlan:
        """Build the plan object — the hook plan-variant backends override.

        Runs inside the ``compile`` span opened by :meth:`_compile`, so
        whatever a variant's compilation costs (for ``compiled``: the Numba
        JIT warm-up) is attributed to compile time in traces.
        """
        return compile_plan(self.beamformer, self.precision)

    def _compile(self) -> BeamformingPlan:
        """Compile this backend's plan under a ``compile`` span."""
        with self.tracer.span("compile") as span:
            plan = self._compile_plan()
            span.set(bytes=int(plan.nbytes), points=plan.n_points,
                     elements=plan.n_elements)
        return plan

    def plan(self) -> BeamformingPlan:
        """The (possibly cached) compiled plan for this backend's engine.

        With a cache attached, every frame goes through the cache — the
        hit/miss counters then directly record that repeated frames from the
        same engine configuration skip plan compilation.  The ``compile``
        span is opened only when a plan is actually built, so a trace shows
        the compile cost exactly once per cache miss.

        Under a memory budget that the whole-grid plan would violate
        (:meth:`set_memory_budget`), a :class:`~repro.kernels.tiling.TiledPlan`
        is returned instead — same execute surface, segments streamed
        through the byte-budgeted cache.  The shell is memoised privately
        (only its segments live in the shared cache; caching the shell too
        would double-count the bytes).
        """
        if self._planner is not None and self._planner.n_tiles > 1:
            if self._tiled is None:
                self._tiled = self._build_tiled(self._planner)
            return self._tiled
        if self.cache is not None:
            return self.cache.get_or_build(self._key, self._compile)
        if self._plan is None:
            self._plan = self._compile()
        return self._plan

    def beamform_volume(self, channel_data: ChannelData) -> np.ndarray:
        """Beamformed RF volume, shape ``(n_theta, n_phi, n_depth)``."""
        raise NotImplementedError

    def beamform_batch(self, frames: Sequence[ChannelData]) -> np.ndarray:
        """Beamform a cine batch; shape ``(n_frames, n_theta, n_phi, n_depth)``.

        The default stacks per-frame results; plan-based backends override
        this with a genuinely batched gather.
        """
        grid_shape = self.beamformer.grid.shape
        out = np.empty((len(frames), *grid_shape), dtype=self.precision.dtype)
        for i, frame in enumerate(frames):
            out[i] = self.beamform_volume(frame)
        return out


class ReferenceBackend(ExecutionBackend):
    """Per-scanline loop through the classic delay-and-sum path.

    Delays and weights are regenerated for every scanline of every frame
    and consumed by the *uncompiled* kernel entry point — deliberately no
    plan, no cache: this is the baseline the compiled backends are measured
    against (and the oracle they are verified against).
    """

    name = "reference"

    def beamform_volume(self, channel_data: ChannelData) -> np.ndarray:
        beamformer = self.beamformer
        quantization = getattr(beamformer, "quantization", None)
        n_theta, n_phi, n_depth = beamformer.grid.shape
        rf = np.empty((n_theta, n_phi, n_depth), dtype=self.precision.dtype)
        # Cast (or quantise) the echo buffer once per volume, not once per
        # scanline — otherwise the float32 baseline pays a full-buffer copy
        # per scanline and benchmarks slower than float64.  Re-quantising
        # the pre-quantised buffer inside the scanline kernel is the
        # identity, so the hoisting is invisible numerically.
        if quantization is not None:
            samples = quantization.quantize_samples(
                np.asarray(channel_data.samples, dtype=np.float64))
        else:
            samples = np.asarray(channel_data.samples,
                                 dtype=self.precision.dtype)
        with self.tracer.span("execute", scanlines=n_theta * n_phi):
            for i_theta in range(n_theta):
                for i_phi in range(n_phi):
                    delays = beamformer.delays.scanline_delays_samples(
                        i_theta, i_phi)
                    weights = beamformer.weights_for_scanline(i_theta, i_phi)
                    if quantization is not None:
                        rf[i_theta, i_phi] = quantized_delay_and_sum(
                            samples, delays, weights, quantization,
                            kind=beamformer.interpolation)
                    else:
                        rf[i_theta, i_phi] = delay_and_sum(
                            samples, delays, weights,
                            kind=beamformer.interpolation,
                            dtype=self.precision.dtype)
        return rf


class VectorizedBackend(ExecutionBackend):
    """Whole-volume batched gather/sum over a compiled plan."""

    name = "vectorized"

    def beamform_volume(self, channel_data: ChannelData) -> np.ndarray:
        plan = self.plan()
        with self.tracer.span("execute"):
            return plan.execute(channel_data, tracer=self.tracer)

    def beamform_batch(self, frames: Sequence[ChannelData]) -> np.ndarray:
        plan = self.plan()
        with self.tracer.span("execute", frames=len(frames)):
            return plan.execute_batch(frames, tracer=self.tracer)


class ShardedBackend(ExecutionBackend):
    """Plan execution over point blocks dispatched on a thread pool.

    The focal grid is split into ``shards`` contiguous point blocks; each
    worker gathers and sums its block independently (NumPy releases the GIL
    inside the heavy kernels).  Per-row arithmetic is identical to the
    vectorized backend — both run :meth:`BeamformingPlan.execute_rows`
    slices of the same plan — so the volumes match exactly.  Worker
    exceptions propagate to the caller; a failed shard never hangs the pool.

    The thread pool is created lazily on the first volume and *reused for
    every later one* (spinning a pool up per frame cost more than a tiny
    frame's beamforming, and the historical per-call pool leaked worker
    threads when a frame errored mid-map).  It is released by
    :meth:`close` — the backend is a context manager — and as a backstop by
    garbage collection.
    """

    name = "sharded"

    def __init__(self, beamformer: DelayAndSumBeamformer,
                 cache: PlanCache | None = None,
                 precision: Precision | str | None = None,
                 shards: int | None = None,
                 max_workers: int | None = None) -> None:
        super().__init__(beamformer, cache=cache, precision=precision)
        self.shards = shards or min(8, os.cpu_count() or 1)
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self._pool: ThreadPoolExecutor | None = None

    def _executor(self) -> ThreadPoolExecutor:
        """The persistent worker pool, created on first use."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-sharded")
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (and drop the memoised plan).

        Idempotent; a later :meth:`beamform_volume` simply rebuilds the
        pool.  ``wait=True`` so no worker still holds a slice of a caller's
        output array when this returns.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)

    def _blocks(self, n_points: int, n_frames: int = 1) -> list[slice]:
        """Split ``n_points`` into at least ``shards`` non-empty blocks.

        More shards than points simply yields one block per point.  For
        batched execution the split additionally honours the
        :data:`repro.kernels.plan.BATCH_BLOCK_ELEMENTS` cache bound — a
        worker gathering ``n_frames`` frames of a wide block at once would
        otherwise materialise out-of-cache temporaries and run slower than
        the per-frame path.
        """
        n_blocks = self.shards
        cap = max(1, BATCH_BLOCK_ELEMENTS
                  // max(1, n_frames * self.beamformer.transducer.element_count))
        n_blocks = max(n_blocks, -(-n_points // cap))
        bounds = np.linspace(0, n_points, n_blocks + 1).astype(int)
        return [slice(int(lo), int(hi))
                for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]

    def _execute_rows(self, plan: BeamformingPlan, channel_data,
                      rows: slice) -> np.ndarray:
        """One worker's unit of work (separate method so tests can fault it).

        Workers run on pool threads, so their gather/weights/accumulate
        spans land on per-thread stacks and surface as additional tracer
        roots rather than children of the backend's ``execute`` span.
        """
        return plan.execute_rows(channel_data, rows, tracer=self.tracer)

    def _run_sharded(self, plan: BeamformingPlan, samples: np.ndarray,
                     out: np.ndarray, n_frames: int = 1) -> None:
        """Fill ``out[..., rows]`` per block on the pool, propagating errors."""
        def work(rows: slice) -> None:
            out[..., rows] = self._execute_rows(plan, samples, rows)

        blocks = self._blocks(plan.n_points, n_frames)
        with self.tracer.span("execute", shards=len(blocks),
                              workers=self.max_workers):
            # list() drains the iterator so worker exceptions re-raise
            # here instead of being swallowed with the discarded futures.
            list(self._executor().map(work, blocks))

    def beamform_volume(self, channel_data: ChannelData) -> np.ndarray:
        plan = self.plan()
        out = np.empty(plan.n_points, dtype=plan.dtype)
        # Coerce once here, not once per shard inside execute_rows.
        self._run_sharded(plan, plan.coerce_samples(channel_data), out)
        return out.reshape(plan.grid_shape)

    def beamform_batch(self, frames: Sequence[ChannelData]) -> np.ndarray:
        plan = self.plan()
        if len(frames) == 0:
            return np.empty((0, *plan.grid_shape), dtype=plan.dtype)
        stacked = np.stack([plan.coerce_samples(f) for f in frames])
        out = np.empty((len(frames), plan.n_points), dtype=plan.dtype)
        self._run_sharded(plan, stacked, out, n_frames=len(frames))
        return out.reshape((len(frames), *plan.grid_shape))


@dataclass(frozen=True)
class ShardedOptions:
    """Options for the ``sharded`` backend (``None`` means auto-size)."""

    shards: int | None = None
    """Number of contiguous point blocks the grid is split into."""

    max_workers: int | None = None
    """Thread-pool size used to dispatch the blocks."""


class CompiledBackend(ExecutionBackend):
    """Fused Numba-jitted gather/weight/sum over parallel voxel blocks.

    Executes a :class:`repro.kernels.compiled.CompiledPlan` — the same
    delay/weight/index tensors as the NumPy plan, consumed by a single
    fused pass per focal point with no intermediate
    ``(n_points, n_elements)`` arrays, ``prange``-parallel over voxel
    blocks.  Float64 volumes match the NumPy backends within the pinned
    summation-order tolerance (:data:`repro.kernels.TOLERANCES`
    ``float64`` row); see ``docs/kernels.md`` for the bit-identity stance.

    Requires the optional ``numba`` package: construction raises
    :class:`repro.kernels.compiled.BackendUnavailable` without it, and
    rejects quantized engines explicitly (the bit-true fixed-point
    datapath stays on the NumPy plan).  JIT warm-up happens inside the
    backend's ``compile`` span, so traces attribute it to compile time and
    a shared :class:`PlanCache` amortises it across services.
    """

    name = "compiled"

    def __init__(self, beamformer: DelayAndSumBeamformer,
                 cache: PlanCache | None = None,
                 precision: Precision | str | None = None,
                 options: CompiledOptions | None = None) -> None:
        if getattr(beamformer, "quantization", None) is not None:
            # Checked before the numba gate so the error is about the real
            # incompatibility even on numba-free hosts.
            raise ValueError(
                "the 'compiled' backend does not support quantized "
                "execution: the bit-true fixed-point rounding stages run "
                "on the NumPy plan only — use the 'vectorized' or "
                "'sharded' backend for quantized engines")
        require_numba()
        super().__init__(beamformer, cache=cache, precision=precision)
        self.options = options if options is not None else CompiledOptions()
        # Variant-extended key: a cache shared with NumPy backends must
        # never serve this backend a plain BeamformingPlan (or serve a
        # fastmath plan where strict math was requested).
        self._key = plan_key(beamformer, self.precision,
                             variant=self.options.variant())

    def _compile_plan(self) -> BeamformingPlan:
        return compile_plan(self.beamformer, self.precision,
                            variant="compiled", options=self.options)

    def _build_tiled(self, planner):
        from ..kernels.tiling import TiledPlan
        return TiledPlan(self.beamformer, planner, self.precision,
                         cache=self.cache, variant="compiled",
                         options=self.options)

    def beamform_volume(self, channel_data: ChannelData) -> np.ndarray:
        plan = self.plan()
        with self.tracer.span("execute"):
            return plan.execute(channel_data, tracer=self.tracer,
                                options=self.options)

    def beamform_batch(self, frames: Sequence[ChannelData]) -> np.ndarray:
        plan = self.plan()
        with self.tracer.span("execute", frames=len(frames)):
            return plan.execute_batch(frames, tracer=self.tracer,
                                      options=self.options)


BACKENDS = Registry("backend")
"""Registry of execution backends (factory:
``(beamformer, cache, precision, options)``)."""


@BACKENDS.register(
    "reference",
    description="per-scanline classic delay-and-sum loop (ground truth)")
def _build_reference(beamformer: DelayAndSumBeamformer,
                     cache: PlanCache | None,
                     precision: Precision | str | None,
                     options: None) -> ReferenceBackend:
    return ReferenceBackend(beamformer, precision=precision)


@BACKENDS.register(
    "vectorized",
    description="whole-volume batched gather/sum over a compiled plan")
def _build_vectorized(beamformer: DelayAndSumBeamformer,
                      cache: PlanCache | None,
                      precision: Precision | str | None,
                      options: None) -> VectorizedBackend:
    return VectorizedBackend(beamformer, cache=cache, precision=precision)


@BACKENDS.register(
    "sharded", options=ShardedOptions,
    description="compiled plan over point blocks on a thread pool")
def _build_sharded(beamformer: DelayAndSumBeamformer,
                   cache: PlanCache | None,
                   precision: Precision | str | None,
                   options: ShardedOptions) -> ShardedBackend:
    return ShardedBackend(beamformer, cache=cache, precision=precision,
                          shards=options.shards,
                          max_workers=options.max_workers)


@BACKENDS.register(
    "compiled", options=CompiledOptions,
    description="fused numba-jitted gather/weight/sum over parallel voxel "
                "blocks"
                + ("" if numba_available()
                   else " (unavailable: numba is not installed)"))
def _build_compiled(beamformer: DelayAndSumBeamformer,
                    cache: PlanCache | None,
                    precision: Precision | str | None,
                    options: CompiledOptions) -> CompiledBackend:
    return CompiledBackend(beamformer, cache=cache, precision=precision,
                           options=options)


BACKEND_NAMES: tuple[str, ...] = BACKENDS.names()
"""Built-in backend names (snapshot; prefer ``BACKENDS.names()``)."""


def make_backend(name: str, beamformer: DelayAndSumBeamformer,
                 cache: PlanCache | None = None,
                 options: object | None = None,
                 precision: Precision | str | None = None,
                 **kwargs) -> ExecutionBackend:
    """Deprecated shim over ``BACKENDS.create(name, ...)``.

    .. deprecated::
        Call ``BACKENDS.create(name, beamformer, cache, precision,
        options=options)`` directly; this wrapper (and its bare-keyword
        options form) will be removed.
    """
    warnings.warn(
        "make_backend() is deprecated; use "
        "repro.runtime.backends.BACKENDS.create(name, beamformer, cache, "
        "precision, options=...) instead",
        DeprecationWarning, stacklevel=2)
    if kwargs:
        if options is not None:
            raise RegistryError(
                "pass backend options either via 'options' or as keyword "
                "arguments, not both")
        options = kwargs
    return BACKENDS.create(name, beamformer, cache, precision,
                           options=options)
