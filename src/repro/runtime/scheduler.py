"""Frame scheduling for streaming acquisition sequences.

A cine acquisition is an ordered stream of frames — either pre-recorded
channel data or phantoms still to be insonified (e.g. a scatterer moving
between frames).  :class:`FrameScheduler` is the FIFO queue between the
acquisition side and the :class:`repro.runtime.service.BeamformingService`
that consumes it; it assigns frame ids and preserves submission order, which
is what keeps per-frame latency measurements meaningful.

The module also provides scenario builders (:func:`moving_point_cine`,
:func:`static_cine`) used by the CLI ``stream`` command, experiment E11 and
the runtime tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..acoustics.echo import ChannelData
from ..acoustics.phantom import Phantom, point_target
from ..config import SystemConfig
from ..geometry.volume import FocalGrid


@dataclass(frozen=True)
class FrameRequest:
    """One frame of a streaming acquisition.

    Exactly one of ``channel_data`` (pre-recorded echoes) or ``phantom``
    (to be simulated by the service before beamforming) must be provided.
    """

    frame_id: int
    phantom: Phantom | None = None
    channel_data: ChannelData | None = None
    noise_std: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if (self.phantom is None) == (self.channel_data is None):
            raise ValueError(
                "provide exactly one of 'phantom' or 'channel_data'")


@dataclass(frozen=True)
class FrameResult:
    """Outcome of beamforming one frame."""

    frame_id: int
    rf: np.ndarray
    """Beamformed RF volume, shape ``(n_theta, n_phi, n_depth)``."""

    backend: str
    acquire_seconds: float
    """Time spent simulating echoes (0 for pre-recorded channel data)."""

    beamform_seconds: float
    """Time spent in the execution backend (the streaming latency)."""

    @property
    def latency_seconds(self) -> float:
        """End-to-end processing latency of this frame."""
        return self.acquire_seconds + self.beamform_seconds

    @property
    def voxel_count(self) -> int:
        """Number of reconstructed voxels."""
        return int(np.prod(self.rf.shape))


@dataclass
class FrameScheduler:
    """FIFO queue of :class:`FrameRequest` objects with id assignment."""

    _queue: deque = field(default_factory=deque)
    _next_id: int = 0

    def submit(self, phantom: Phantom | None = None,
               channel_data: ChannelData | None = None,
               noise_std: float = 0.0, seed: int = 0) -> FrameRequest:
        """Enqueue one frame and return the request (with its assigned id)."""
        request = FrameRequest(frame_id=self._next_id, phantom=phantom,
                               channel_data=channel_data,
                               noise_std=noise_std, seed=seed)
        self._next_id += 1
        self._queue.append(request)
        return request

    def extend(self, requests: Iterable[FrameRequest]) -> None:
        """Enqueue pre-built requests (ids are kept as given).

        Later :meth:`submit` calls continue above the highest id seen so the
        two submission styles can be mixed without id collisions.
        """
        for request in requests:
            self._queue.append(request)
            self._next_id = max(self._next_id, request.frame_id + 1)

    @property
    def pending(self) -> int:
        """Number of frames waiting to be beamformed."""
        return len(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def drain(self) -> Iterator[FrameRequest]:
        """Pop requests in submission order until the queue is empty."""
        while self._queue:
            yield self._queue.popleft()


# --------------------------------------------------------------- scenarios
def moving_point_cine(system: SystemConfig, n_frames: int = 8,
                      depth_fractions: tuple[float, float] = (0.35, 0.65),
                      theta_fraction: float = 0.0) -> list[FrameRequest]:
    """A cine sequence of a point scatterer drifting in depth.

    The scatterer moves linearly between the two ``depth_fractions`` of the
    imaging range over ``n_frames`` frames — the minimal moving-phantom
    scenario: geometry (and therefore every delay/weight tensor) is constant
    while the echo data change every frame.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be at least 1")
    volume = system.volume
    grid = FocalGrid.from_config(system)
    theta = float(grid.thetas[np.argmin(
        np.abs(grid.thetas - theta_fraction * volume.theta_max))])
    lo, hi = depth_fractions
    fractions = np.linspace(lo, hi, n_frames)
    requests = []
    for frame_id, fraction in enumerate(fractions):
        depth = volume.depth_min + float(fraction) * volume.depth_span
        requests.append(FrameRequest(
            frame_id=frame_id,
            phantom=point_target(depth=depth, theta=theta),
            seed=frame_id))
    return requests


def static_cine(channel_data: ChannelData, n_frames: int = 8) -> list[FrameRequest]:
    """A cine sequence replaying the same pre-recorded frame ``n_frames`` times.

    Useful for throughput benchmarking: the acquisition cost is zero and the
    per-frame work isolates the beamforming backend.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be at least 1")
    return [FrameRequest(frame_id=i, channel_data=channel_data)
            for i in range(n_frames)]
