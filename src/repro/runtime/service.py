"""The streaming beamforming service: frames in, volumes + metrics out.

:class:`BeamformingService` is the facade over the whole runtime subsystem.
It binds a system configuration to one delay architecture, one execution
backend and one :class:`repro.kernels.Precision` policy, simulates
acquisitions when a frame arrives as a phantom, beamforms each frame (or
batches of frames at once), and keeps per-frame latency plus aggregate
throughput counters — the software analogue of the paper's
volumes-per-second budget (Section II-C).  Compiled
:class:`repro.kernels.BeamformingPlan` artifacts flow through a shared
:class:`repro.runtime.cache.PlanCache`, so a cine sequence pays the plan
compilation cost exactly once.

Typical use::

    from repro import small_system
    from repro.runtime import BeamformingService, moving_point_cine

    service = BeamformingService(small_system(), architecture="tablesteer",
                                 backend="vectorized")
    for result in service.stream(moving_point_cine(service.system, 8)):
        print(result.frame_id, result.latency_seconds)
    print(service.stats().frames_per_second)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..acoustics.echo import ChannelData, EchoSimulator
from ..acoustics.phantom import Phantom
from ..architectures import (
    ARCHITECTURES,
    architecture_name,
    legacy_architecture_options,
)
from ..beamformer.das import ApodizationSettings, DelayAndSumBeamformer
from ..beamformer.interpolation import InterpolationKind
from ..config import SystemConfig
from ..core.tablefree import TableFreeConfig
from ..kernels import Precision, QuantizationSpec, resolve_precision
from ..observability.metrics import MetricsRegistry
from ..observability.tracing import resolve_tracer
from .backends import BACKENDS, ExecutionBackend
from .cache import CacheStats, PlanCache
from .scheduler import FrameRequest, FrameResult, FrameScheduler


@dataclass(frozen=True)
class RuntimeStats:
    """Aggregate throughput figures over every frame the service processed."""

    backend: str
    precision: str
    frames: int
    voxels: int
    acquire_seconds: float
    beamform_seconds: float
    mean_latency_seconds: float
    max_latency_seconds: float
    cache: CacheStats
    quantization: str | None = None
    """Datapath description when the service runs the bit-true quantized
    kernel path (see :meth:`repro.kernels.QuantizationSpec.describe`)."""

    scheme: str | None = None
    """Transmit-scheme summary (``name (n firings)``) when the service
    compounds a non-trivial scheme; ``None`` for the focused baseline."""

    p50_latency_seconds: float = 0.0
    """Median per-frame latency (0.0 before any frame was processed)."""

    p95_latency_seconds: float = 0.0
    """95th-percentile per-frame latency (0.0 before any frame)."""

    p99_latency_seconds: float = 0.0
    """99th-percentile per-frame latency — the tail figure a real-time
    volume-rate budget is actually constrained by (0.0 before any frame)."""

    @property
    def total_seconds(self) -> float:
        """Total processing time across acquisition and beamforming."""
        return self.acquire_seconds + self.beamform_seconds

    @property
    def frames_per_second(self) -> float:
        """Sustained volume rate over the beamforming time alone."""
        return self.frames / self.beamform_seconds if self.beamform_seconds else 0.0

    @property
    def voxels_per_second(self) -> float:
        """Sustained reconstruction rate in voxels/s."""
        return self.voxels / self.beamform_seconds if self.beamform_seconds else 0.0


class BeamformingService:
    """Streaming frame-to-volume beamforming bound to one backend.

    Parameters
    ----------
    system:
        System configuration shared by every frame of the stream.
    architecture:
        Delay-generation architecture name, resolved through
        :data:`repro.architectures.ARCHITECTURES` (any registered name,
        including user plugins).
    backend:
        Execution backend name, resolved through
        :data:`repro.runtime.backends.BACKENDS`.
    architecture_options:
        Options dataclass instance (or plain dict) for the architecture;
        ``None`` uses the registered defaults.  The historical
        ``tablefree_config`` / ``tablesteer_bits`` keywords are still
        honoured when this is not given.
    precision:
        Execution dtype policy (``"float64"`` exact / ``"float32"`` fast;
        see :class:`repro.kernels.Precision`).  Applies to the beamformer
        and the backend alike, and is part of the plan cache key.
    quantization:
        Optional :class:`repro.kernels.QuantizationSpec` (or its dict /
        total-bit-width / Q-format-string spelling) switching every frame
        to the bit-true fixed-point datapath.  Part of the plan cache key,
        so quantized and float engines sharing a cache never exchange
        plans.  Requires ``float64`` precision.
    cache:
        Compiled-plan cache; pass a shared instance to reuse plans across
        services (e.g. a ``vectorized`` and a ``sharded`` service over the
        same probe).  ``None`` creates a private cache.
    scheme:
        Transmit scheme: a registered :data:`repro.scenarios.SCHEMES`
        name, a pre-built :class:`repro.scenarios.TransmitScheme` or
        ``None`` (the focused baseline).  Multi-firing schemes simulate
        one acquisition per event and coherently compound the per-firing
        volumes; the focused baseline keeps the historical
        single-acquisition path bit for bit.
    scheme_options:
        Options dataclass/dict for a scheme given by name.
    simulator:
        Optional pre-built echo simulator, shared with other services to
        avoid rebuilding the transducer per service.
    backend_options:
        Extra keyword arguments for the backend constructor (``shards``,
        ``max_workers`` for ``sharded``).
    tracer:
        Optional :class:`repro.observability.Tracer`; opens ``frame`` /
        ``simulate`` / ``beamform`` spans (nesting the backend's
        ``compile``/``execute``/``gather``/… spans) around every frame.
        ``None`` resolves to the process default — normally the free
        :data:`repro.observability.NULL_TRACER`.
    metrics:
        Optional :class:`repro.observability.MetricsRegistry` the service
        registers its instruments in (frame/voxel counters, the latency
        histogram).  ``None`` creates a private registry; see
        :meth:`export_metrics` for the exported view.
    """

    def __init__(self, system: SystemConfig,
                 architecture: str = "exact",
                 backend: str = "vectorized",
                 apodization: ApodizationSettings | None = None,
                 interpolation: InterpolationKind = InterpolationKind.NEAREST,
                 cache: PlanCache | None = None,
                 architecture_options: object | None = None,
                 tablefree_config: TableFreeConfig | None = None,
                 tablesteer_bits: int = 18,
                 simulator: EchoSimulator | None = None,
                 backend_options: object | None = None,
                 precision: Precision | str | None = None,
                 quantization: "QuantizationSpec | str | int | None" = None,
                 scheme: object | str | None = None,
                 scheme_options: object | None = None,
                 tracer=None,
                 metrics: MetricsRegistry | None = None,
                 memory_budget_bytes: int | str | None = None
                 ) -> None:
        # Imported lazily: repro.scenarios builds on this package.
        from ..scenarios import SchemeEngine, resolve_scheme

        self.system = system
        self.architecture = architecture_name(architecture)
        self.precision = resolve_precision(precision)
        self.quantization = QuantizationSpec.coerce(quantization)
        self.scheme = resolve_scheme(system, scheme, scheme_options)
        self.tracer = resolve_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # A private cache registers its counters alongside the service's
        # instruments; a shared cache keeps its own registry (its counters
        # span several services) and is merged in export_metrics().
        self.cache = cache if cache is not None \
            else PlanCache(metrics=self.metrics)
        if architecture_options is None:
            architecture_options = legacy_architecture_options(
                self.architecture, tablefree_config=tablefree_config,
                tablesteer_bits=tablesteer_bits)
        provider = ARCHITECTURES.create(self.architecture, system,
                                        options=architecture_options)
        self.beamformer = DelayAndSumBeamformer(
            system, provider, apodization=apodization,
            interpolation=interpolation, precision=self.precision,
            quantization=self.quantization)
        self._backend: ExecutionBackend = BACKENDS.create(
            backend, self.beamformer, self.cache, self.precision,
            options=backend_options)
        self._backend.tracer = self.tracer
        self.memory_budget_bytes = memory_budget_bytes
        if memory_budget_bytes is not None:
            # Tile the service's backend(s) under the budget; also
            # byte-bounds the (possibly shared) plan cache.
            self._backend.set_memory_budget(memory_budget_bytes)
        # The trivial focused scheme keeps the historical single-backend
        # path; anything else compounds per-firing engines.
        self._scheme_engine = None if self.scheme.is_trivial() else \
            SchemeEngine(self.beamformer, self.scheme, backend=backend,
                         backend_options=backend_options, cache=self.cache,
                         precision=self.precision, tracer=self.tracer,
                         memory_budget_bytes=memory_budget_bytes)
        self._simulator = simulator or EchoSimulator.from_config(system)
        # Monotonic id source for auto-assigned frames; unlike the stats
        # counters it survives reset_stats(), so ids never repeat within
        # one service lifetime.
        self._next_frame_id = 0
        self._frames = self.metrics.counter(
            "service_frames_total", "frames beamformed by this service")
        self._voxels = self.metrics.counter(
            "service_voxels_total", "voxels reconstructed by this service")
        self._acquire_seconds = self.metrics.counter(
            "service_acquire_seconds_total",
            "wall seconds spent simulating acquisitions")
        self._beamform_seconds = self.metrics.counter(
            "service_beamform_seconds_total",
            "wall seconds spent beamforming frames")
        self._latency = self.metrics.histogram(
            "service_latency_seconds",
            "per-frame latency (acquire + beamform) in seconds")

    # ------------------------------------------------------------ identity
    @property
    def backend_name(self) -> str:
        """Name of the active execution backend."""
        return self._backend.name

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the execution backend(s) this service constructed.

        Shuts worker pools down (the ``sharded`` backend, and every
        per-firing backend of a multi-firing scheme engine) and drops
        privately memoised plans; a shared :class:`PlanCache` is left
        untouched — its plans belong to whoever owns the cache.  Idempotent,
        and the service remains usable afterwards (pools rebuild lazily),
        so ``close()`` is always safe.  The service is a context manager::

            with BeamformingService(system, backend="sharded") as service:
                service.submit_frame(frame)
        """
        self._backend.close()
        if self._scheme_engine is not None:
            self._scheme_engine.close()

    def __enter__(self) -> "BeamformingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- frames
    def _coerce_request(self, frame: FrameRequest | ChannelData | Phantom,
                        noise_std: float, seed: int) -> FrameRequest:
        """Wrap a raw payload in a :class:`FrameRequest` with a fresh id.

        Under a multi-firing scheme, pre-recorded frames arrive as a
        sequence of per-firing :class:`ChannelData` (one per scheme
        event), carried in the request's ``channel_data`` slot.
        """
        if isinstance(frame, FrameRequest):
            request = frame
        elif isinstance(frame, ChannelData):
            request = FrameRequest(frame_id=self._next_frame_id,
                                   channel_data=frame)
        elif isinstance(frame, (tuple, list)):
            firings = tuple(frame)
            if not firings or not all(isinstance(firing, ChannelData)
                                      for firing in firings):
                # Without this, a malformed sequence would fall into the
                # phantom branch and die deep in the echo simulator.
                raise ValueError(
                    "a per-firing frame must be a non-empty sequence of "
                    "ChannelData (one per scheme event)")
            request = FrameRequest(frame_id=self._next_frame_id,
                                   channel_data=firings)
        else:
            request = FrameRequest(frame_id=self._next_frame_id, phantom=frame,
                                   noise_std=noise_std, seed=seed)
        # Auto-assigned ids continue above the highest id seen, so mixing
        # explicit FrameRequests with raw payloads cannot collide either.
        self._next_frame_id = max(self._next_frame_id, request.frame_id + 1)
        return request

    def _acquire(self, request: FrameRequest) -> tuple[object, float]:
        """Beamformable payload of one request + acquisition time spent.

        The payload is one :class:`ChannelData` on the focused baseline,
        or the per-firing sequence of the active multi-firing scheme.
        """
        if request.channel_data is not None:
            payload = request.channel_data
            if self._scheme_engine is not None:
                firings = payload if isinstance(payload, (tuple, list)) \
                    else (payload,)
                if len(firings) != self._scheme_engine.firing_count:
                    raise ValueError(
                        f"scheme {self.scheme.name!r} expects "
                        f"{self._scheme_engine.firing_count} pre-recorded "
                        f"firing(s) per frame, got {len(firings)}")
                return tuple(firings), 0.0
            if not isinstance(payload, ChannelData):
                # _coerce_request guarantees a non-empty all-ChannelData
                # tuple here; a one-firing sequence is a valid frame for
                # the single-firing baseline.
                if len(payload) == 1:
                    return payload[0], 0.0
                raise ValueError(
                    f"scheme {self.scheme.name!r} takes one firing per "
                    f"frame, got {len(payload)} pre-recorded firings")
            return payload, 0.0
        start = time.perf_counter()
        with self.tracer.span("simulate"):
            if self._scheme_engine is not None:
                payload = tuple(self._scheme_engine.acquire(
                    self._simulator, request.phantom,
                    noise_std=request.noise_std, seed=request.seed))
            else:
                payload = self._simulator.simulate(
                    request.phantom, noise_std=request.noise_std,
                    seed=request.seed)
        return payload, time.perf_counter() - start

    def _beamform_volume(self, payload: object) -> np.ndarray:
        """Route one acquired payload to the backend or the scheme engine."""
        if self._scheme_engine is not None:
            return self._scheme_engine.beamform_volume(payload)
        return self._backend.beamform_volume(payload)

    def _beamform_batch(self, payloads: Sequence[object]) -> np.ndarray:
        """Route one acquired batch to the backend or the scheme engine."""
        if self._scheme_engine is not None:
            return self._scheme_engine.beamform_batch(payloads)
        return self._backend.beamform_batch(payloads)

    def _record(self, result: FrameResult) -> FrameResult:
        """Fold one frame's figures into the aggregate instruments."""
        self._frames.inc()
        self._voxels.inc(result.voxel_count)
        self._acquire_seconds.inc(result.acquire_seconds)
        self._beamform_seconds.inc(result.beamform_seconds)
        self._latency.observe(result.latency_seconds)
        return result

    def submit_frame(self, frame: FrameRequest | ChannelData | Phantom,
                     noise_std: float = 0.0, seed: int = 0) -> FrameResult:
        """Beamform one frame and record its latency.

        ``frame`` may be a full :class:`FrameRequest`, raw
        :class:`ChannelData`, or a :class:`Phantom` (simulated first using
        ``noise_std``/``seed``).
        """
        request = self._coerce_request(frame, noise_std, seed)
        with self.tracer.span("frame", frame_id=request.frame_id):
            payload, acquire_seconds = self._acquire(request)

            start = time.perf_counter()
            with self.tracer.span("beamform"):
                rf = self._beamform_volume(payload)
            beamform_seconds = time.perf_counter() - start

        return self._record(FrameResult(
            frame_id=request.frame_id, rf=rf, backend=self._backend.name,
            acquire_seconds=acquire_seconds,
            beamform_seconds=beamform_seconds))

    def submit_batch(self,
                     frames: Sequence[FrameRequest | ChannelData | Phantom],
                     noise_std: float = 0.0, seed: int = 0
                     ) -> list[FrameResult]:
        """Beamform several frames in one batched kernel execution.

        All frames are beamformed by a single
        :meth:`ExecutionBackend.beamform_batch` call (one stacked gather on
        the plan-based backends), which amortises per-frame dispatch; the
        batch's beamform time is attributed evenly across its frames so the
        aggregate throughput stats stay comparable with per-frame
        submission.
        """
        requests = [self._coerce_request(frame, noise_std, seed)
                    for frame in frames]
        if not requests:
            return []
        with self.tracer.span("batch", frames=len(requests)):
            acquired = [self._acquire(request) for request in requests]

            start = time.perf_counter()
            with self.tracer.span("beamform"):
                volumes = self._beamform_batch(
                    [payload for payload, _ in acquired])
            per_frame_seconds = (time.perf_counter() - start) / len(requests)

        # copy() decouples each frame's lifetime from the whole batch
        # buffer — a retained single FrameResult must not pin n_frames
        # volumes in memory.
        return [self._record(FrameResult(
            frame_id=request.frame_id, rf=volumes[i].copy(),
            backend=self._backend.name, acquire_seconds=acquire_seconds,
            beamform_seconds=per_frame_seconds))
            for i, (request, (_, acquire_seconds))
            in enumerate(zip(requests, acquired))]

    def stream(self, frames: Iterable[FrameRequest] | FrameScheduler,
               batch_size: int = 1) -> Iterator[FrameResult]:
        """Beamform a sequence of frames lazily, in submission order.

        With ``batch_size > 1``, frames are grouped and each group runs
        through :meth:`submit_batch` (results are still yielded one by one,
        so downstream consumers are agnostic to the batching).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        source = frames.drain() if isinstance(frames, FrameScheduler) else frames
        if batch_size == 1:
            for request in source:
                yield self.submit_frame(request)
            return
        pending: list[FrameRequest] = []
        for request in source:
            pending.append(request)
            if len(pending) == batch_size:
                yield from self.submit_batch(pending)
                pending = []
        if pending:
            yield from self.submit_batch(pending)

    def stream_all(self, frames: Iterable[FrameRequest] | FrameScheduler,
                   batch_size: int = 1) -> list[FrameResult]:
        """Eager variant of :meth:`stream` returning all results at once."""
        return list(self.stream(frames, batch_size=batch_size))

    # -------------------------------------------------------------- stats
    def stats(self) -> RuntimeStats:
        """Aggregate metrics over every frame processed so far.

        Every figure comes straight off the metrics instruments; the
        latency histogram reports 0.0 for mean/max/percentiles on a fresh
        or freshly reset service (no observations yet), so ``stats()`` is
        always safe to call.
        """
        latency = self._latency
        return RuntimeStats(
            backend=self._backend.name,
            precision=self.precision.value,
            frames=int(self._frames.value),
            voxels=int(self._voxels.value),
            acquire_seconds=self._acquire_seconds.value,
            beamform_seconds=self._beamform_seconds.value,
            mean_latency_seconds=latency.mean,
            max_latency_seconds=latency.max,
            cache=self.cache.stats,
            quantization=self.quantization.describe()
            if self.quantization is not None else None,
            scheme=self.scheme.describe()
            if self._scheme_engine is not None else None,
            p50_latency_seconds=latency.percentile(50),
            p95_latency_seconds=latency.percentile(95),
            p99_latency_seconds=latency.percentile(99),
        )

    def export_metrics(self) -> MetricsRegistry:
        """The service's complete exportable metric state.

        A fresh registry adopting (by reference) the service's own
        instruments, the plan cache's counters (already co-located when the
        cache is private, merged in when it is shared), and derived
        ``service_frames_per_second`` / ``service_voxels_per_second``
        gauges — the payload behind the CLI's ``--metrics-out``.
        """
        exported = MetricsRegistry()
        exported.merge(self.metrics)
        exported.merge(self.cache.metrics)
        stats = self.stats()
        exported.gauge(
            "service_frames_per_second",
            "sustained volume rate over beamforming time"
        ).set(stats.frames_per_second)
        exported.gauge(
            "service_voxels_per_second",
            "sustained reconstruction rate over beamforming time"
        ).set(stats.voxels_per_second)
        return exported

    def reset_stats(self) -> None:
        """Zero the stats instruments (the plan cache is kept).

        Only the service's own instruments are reset — a plan cache's
        counters describe the cache (which survives the reset), and on a
        shared cache they belong to other services too.  Auto-assigned
        frame ids are *not* reset either: they come from a separate
        monotonic counter, so frames submitted after a reset never reuse
        ids of frames submitted before it.
        """
        for instrument in (self._frames, self._voxels, self._acquire_seconds,
                           self._beamform_seconds, self._latency):
            instrument.reset()
