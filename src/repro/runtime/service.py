"""The streaming beamforming service: frames in, volumes + metrics out.

:class:`BeamformingService` is the facade over the whole runtime subsystem.
It binds a system configuration to one delay architecture and one execution
backend, simulates acquisitions when a frame arrives as a phantom, beamforms
each frame, and keeps per-frame latency plus aggregate throughput counters —
the software analogue of the paper's volumes-per-second budget (Section
II-C).  Delay/weight tensors flow through a shared
:class:`repro.runtime.cache.DelayTableCache`, so a cine sequence pays the
delay-generation cost exactly once.

Typical use::

    from repro import small_system
    from repro.runtime import BeamformingService, moving_point_cine

    service = BeamformingService(small_system(), architecture="tablesteer",
                                 backend="vectorized")
    for result in service.stream(moving_point_cine(service.system, 8)):
        print(result.frame_id, result.latency_seconds)
    print(service.stats().frames_per_second)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..acoustics.echo import ChannelData, EchoSimulator
from ..acoustics.phantom import Phantom
from ..beamformer.das import ApodizationSettings, DelayAndSumBeamformer
from ..beamformer.interpolation import InterpolationKind
from ..config import SystemConfig
from ..core.tablefree import TableFreeConfig
from ..pipeline.imaging import DelayArchitecture, make_delay_provider
from .backends import ExecutionBackend, make_backend
from .cache import CacheStats, DelayTableCache
from .scheduler import FrameRequest, FrameResult, FrameScheduler


@dataclass(frozen=True)
class RuntimeStats:
    """Aggregate throughput figures over every frame the service processed."""

    backend: str
    frames: int
    voxels: int
    acquire_seconds: float
    beamform_seconds: float
    mean_latency_seconds: float
    max_latency_seconds: float
    cache: CacheStats

    @property
    def total_seconds(self) -> float:
        """Total processing time across acquisition and beamforming."""
        return self.acquire_seconds + self.beamform_seconds

    @property
    def frames_per_second(self) -> float:
        """Sustained volume rate over the beamforming time alone."""
        return self.frames / self.beamform_seconds if self.beamform_seconds else 0.0

    @property
    def voxels_per_second(self) -> float:
        """Sustained reconstruction rate in voxels/s."""
        return self.voxels / self.beamform_seconds if self.beamform_seconds else 0.0


class BeamformingService:
    """Streaming frame-to-volume beamforming bound to one backend.

    Parameters
    ----------
    system:
        System configuration shared by every frame of the stream.
    architecture:
        Delay-generation architecture name (see
        :class:`repro.pipeline.imaging.DelayArchitecture`).
    backend:
        Execution backend name: ``reference``, ``vectorized`` or ``sharded``.
    cache:
        Delay-table cache; pass a shared instance to reuse tensors across
        services (e.g. a ``vectorized`` and a ``sharded`` service over the
        same probe).  ``None`` creates a private cache.
    simulator:
        Optional pre-built echo simulator, shared with other services to
        avoid rebuilding the transducer per service.
    backend_options:
        Extra keyword arguments for the backend constructor (``shards``,
        ``max_workers`` for ``sharded``).
    """

    def __init__(self, system: SystemConfig,
                 architecture: DelayArchitecture | str = DelayArchitecture.EXACT,
                 backend: str = "vectorized",
                 apodization: ApodizationSettings | None = None,
                 interpolation: InterpolationKind = InterpolationKind.NEAREST,
                 cache: DelayTableCache | None = None,
                 tablefree_config: TableFreeConfig | None = None,
                 tablesteer_bits: int = 18,
                 simulator: EchoSimulator | None = None,
                 backend_options: dict | None = None) -> None:
        self.system = system
        self.architecture = DelayArchitecture(architecture)
        self.cache = cache if cache is not None else DelayTableCache()
        provider = make_delay_provider(
            system, self.architecture,
            tablefree_config=tablefree_config,
            tablesteer_bits=tablesteer_bits)
        self.beamformer = DelayAndSumBeamformer(
            system, provider, apodization=apodization,
            interpolation=interpolation)
        self._backend: ExecutionBackend = make_backend(
            backend, self.beamformer, cache=self.cache,
            **(backend_options or {}))
        self._simulator = simulator or EchoSimulator.from_config(system)
        self._frames = 0
        self._voxels = 0
        self._acquire_seconds = 0.0
        self._beamform_seconds = 0.0
        self._latencies: list[float] = []

    # ------------------------------------------------------------ identity
    @property
    def backend_name(self) -> str:
        """Name of the active execution backend."""
        return self._backend.name

    # ------------------------------------------------------------- frames
    def submit_frame(self, frame: FrameRequest | ChannelData | Phantom,
                     noise_std: float = 0.0, seed: int = 0) -> FrameResult:
        """Beamform one frame and record its latency.

        ``frame`` may be a full :class:`FrameRequest`, raw
        :class:`ChannelData`, or a :class:`Phantom` (simulated first using
        ``noise_std``/``seed``).
        """
        if isinstance(frame, FrameRequest):
            request = frame
        elif isinstance(frame, ChannelData):
            request = FrameRequest(frame_id=self._frames, channel_data=frame)
        else:
            request = FrameRequest(frame_id=self._frames, phantom=frame,
                                   noise_std=noise_std, seed=seed)

        acquire_seconds = 0.0
        channel_data = request.channel_data
        if channel_data is None:
            start = time.perf_counter()
            channel_data = self._simulator.simulate(
                request.phantom, noise_std=request.noise_std,
                seed=request.seed)
            acquire_seconds = time.perf_counter() - start

        start = time.perf_counter()
        rf = self._backend.beamform_volume(channel_data)
        beamform_seconds = time.perf_counter() - start

        result = FrameResult(frame_id=request.frame_id, rf=rf,
                             backend=self._backend.name,
                             acquire_seconds=acquire_seconds,
                             beamform_seconds=beamform_seconds)
        self._frames += 1
        self._voxels += result.voxel_count
        self._acquire_seconds += acquire_seconds
        self._beamform_seconds += beamform_seconds
        self._latencies.append(result.latency_seconds)
        return result

    def stream(self, frames: Iterable[FrameRequest] | FrameScheduler
               ) -> Iterator[FrameResult]:
        """Beamform a sequence of frames lazily, in submission order."""
        source = frames.drain() if isinstance(frames, FrameScheduler) else frames
        for request in source:
            yield self.submit_frame(request)

    def stream_all(self, frames: Iterable[FrameRequest] | FrameScheduler
                   ) -> list[FrameResult]:
        """Eager variant of :meth:`stream` returning all results at once."""
        return list(self.stream(frames))

    # -------------------------------------------------------------- stats
    def stats(self) -> RuntimeStats:
        """Aggregate metrics over every frame processed so far."""
        latencies = np.asarray(self._latencies) if self._latencies else np.zeros(1)
        return RuntimeStats(
            backend=self._backend.name,
            frames=self._frames,
            voxels=self._voxels,
            acquire_seconds=self._acquire_seconds,
            beamform_seconds=self._beamform_seconds,
            mean_latency_seconds=float(np.mean(latencies)),
            max_latency_seconds=float(np.max(latencies)),
            cache=self.cache.stats,
        )

    def reset_stats(self) -> None:
        """Zero the frame counters (the delay-table cache is kept)."""
        self._frames = 0
        self._voxels = 0
        self._acquire_seconds = 0.0
        self._beamform_seconds = 0.0
        self._latencies = []
