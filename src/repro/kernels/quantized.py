"""Bit-true quantized execution: the paper's fixed-point datapath as a plan.

The hardware beamformer the paper builds never touches floating point on the
per-sample critical path: delays, apodization weights and the accumulating
sum all live in Q-format registers (Section V-B).  The float kernels of
:mod:`repro.kernels.ops` model that hardware only *geometrically* (integer
echo addressing); this module models it *numerically*.  A
:class:`QuantizationSpec` assigns an explicit :class:`repro.fixedpoint.QFormat`
to each of the four values flowing through the gather→weight→accumulate
datapath —

* ``delay_format`` — the fractional-sample delay each focal point/element
  pair addresses the echo buffer with (the paper's U13.5 at 18 bits);
* ``sample_format`` — the echo samples as the ADC/front-end delivers them;
* ``weight_format`` — the receive apodization coefficients;
* ``accumulator_format`` — the register the weighted products are rounded
  into and summed in (saturating, like a hardware accumulator);

plus one :class:`~repro.fixedpoint.quantize.RoundingMode` and one
:class:`~repro.fixedpoint.quantize.OverflowMode` shared by every stage,
matching the rounding semantics of ``repro.analysis.fixedpoint_impact``.

A :class:`QuantizedPlan` is the compiled artifact: a
:class:`repro.kernels.plan.BeamformingPlan` whose delay and weight tensors
are quantised at compile time (the gather index is therefore built from the
*quantised* delays, exactly as hardware addresses the buffer with its
fixed-point delay sum) and whose execution quantises the samples, the
products and the final sums.  Every value is carried in ``float64`` — each
quantised value is a dyadic rational with far fewer than 53 significant
bits, so the float arithmetic between quantisation stages is exact and the
whole path is bit-identical to operating on the raw integer codes (the
conformance suite pins this against an oracle built directly on
:mod:`repro.fixedpoint`).

Quantisation is idempotent (re-quantising a representable value is the
identity), which the execution paths rely on: a backend may pre-quantise a
frame once via :meth:`QuantizedPlan.coerce_samples` and the per-row /
per-batch kernels may quantise again without changing a single bit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..fixedpoint.format import QFormat, signed, tablesteer_formats, unsigned
from ..fixedpoint.quantize import OverflowMode, RoundingMode, quantize
from ..observability.tracing import NULL_TRACER
from .ops import accumulate, apply_weights, build_gather_index, gather_interp
from .plan import BeamformingPlan, plan_key
from .precision import Precision, Tolerance, resolve_precision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..beamformer.das import DelayAndSumBeamformer

__all__ = [
    "QuantizationSpec",
    "QuantizedPlan",
    "compile_quantized_plan",
    "parse_qformat",
    "quantized_delay_and_sum",
]


_QFORMAT_PATTERN = re.compile(r"^([USQ])(\d+)\.(\d+)$", re.IGNORECASE)


def _require_nearest(kind) -> None:
    """Quantized execution models the paper's integer echo addressing.

    Linear interpolation would multiply by unquantised fractional weights
    between the sample fetch and the apodization stage — a datapath the
    hardware does not have — so it is rejected rather than silently given
    undefined fixed-point semantics.
    """
    if getattr(kind, "value", kind) != "nearest":
        raise ValueError(
            "quantized execution supports only 'nearest' interpolation "
            "(the paper's integer echo-buffer addressing); got "
            f"{getattr(kind, 'value', kind)!r}")


def parse_qformat(text: str) -> QFormat:
    """Parse a ``'U13.5'`` / ``'S13.4'`` / ``'Q4.14'`` spelling into a format.

    ``U`` is unsigned, ``S`` and ``Q`` are signed (DSP convention: a Qm.n
    format carries a sign bit on top of ``m`` integer and ``n`` fraction
    bits).  Used by the CLI's ``--qformat`` flag and by
    :meth:`QuantizationSpec.coerce`.
    """
    match = _QFORMAT_PATTERN.match(text.strip())
    if not match:
        raise ValueError(
            f"cannot parse Q-format {text!r}; expected e.g. 'U13.5', "
            "'S13.4' or 'Q4.14'")
    prefix, integer_bits, fraction_bits = match.groups()
    return QFormat(int(integer_bits), int(fraction_bits),
                   signed=prefix.upper() != "U")


# The echo simulator normalises traces to unit peak amplitude and receive
# apodization weights live in [0, 1], so one integer bit (plus sign for the
# samples) represents both without saturation; 14 fraction bits model a
# 16-bit front-end.  The accumulator sums up to n_elements unit products —
# 12 integer bits hold 1024-element paper-scale sums with headroom.
_DEFAULT_SAMPLE = signed(1, 14)
_DEFAULT_WEIGHT = unsigned(1, 14)
_DEFAULT_ACCUMULATOR = signed(12, 14)


@dataclass(frozen=True)
class QuantizationSpec:
    """Q-formats and policies of the fixed-point beamforming datapath."""

    delay_format: QFormat
    """Format the fractional-sample delays are stored in (paper: U13.5)."""

    sample_format: QFormat = _DEFAULT_SAMPLE
    """Format of the echo samples entering the datapath."""

    weight_format: QFormat = _DEFAULT_WEIGHT
    """Format of the receive apodization weights."""

    accumulator_format: QFormat = _DEFAULT_ACCUMULATOR
    """Format the weighted products are rounded into and summed in."""

    rounding: RoundingMode = RoundingMode.NEAREST
    """Rounding mode of every quantisation stage (hardware round unit)."""

    overflow: OverflowMode = OverflowMode.SATURATE
    """Overflow behaviour of every quantisation stage."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "rounding", RoundingMode(self.rounding))
        object.__setattr__(self, "overflow", OverflowMode(self.overflow))

    # ------------------------------------------------------------- builders
    @classmethod
    def from_total_bits(cls, total_bits: int, **overrides) -> "QuantizationSpec":
        """The spec for one of the paper's delay representation widths.

        The delay format follows the paper's rule (13 integer bits to index
        the echo buffer, every further bit spent on fraction — see
        :func:`repro.fixedpoint.format.tablesteer_formats`); the sample /
        weight / accumulator stages keep their defaults unless overridden.
        """
        reference, _ = tablesteer_formats(total_bits)
        return cls(delay_format=reference, **overrides)

    @classmethod
    def coerce(cls, value) -> "QuantizationSpec | None":
        """Coerce a user-facing spelling into a spec (or ``None`` = off).

        Accepts ``None``, a spec instance, a plain dict (the JSON document
        form), an integer total bit width (``18``), or a Q-format string
        naming the delay format (``"U13.5"``, ``"S13.4"``).
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            from ..registry import decode_options
            return decode_options(cls, value)
        if isinstance(value, bool):
            raise ValueError("quantization must be a spec, bit width or "
                             "Q-format string, not a boolean")
        if isinstance(value, int):
            return cls.from_total_bits(value)
        if isinstance(value, str):
            text = value.strip()
            if text.isdigit():
                return cls.from_total_bits(int(text))
            return cls(delay_format=parse_qformat(text))
        raise ValueError(
            f"cannot interpret {value!r} as a quantization spec; pass a "
            "QuantizationSpec, its dict form, a total bit width or a "
            "Q-format string like 'U13.5'")

    # ------------------------------------------------------ datapath stages
    def quantize_delays(self, delays: np.ndarray) -> np.ndarray:
        """Delays as the fixed-point delay datapath represents them."""
        return quantize(delays, self.delay_format, rounding=self.rounding,
                        overflow=self.overflow)

    def quantize_samples(self, samples: np.ndarray) -> np.ndarray:
        """Echo samples as the front-end registers deliver them."""
        return quantize(samples, self.sample_format, rounding=self.rounding,
                        overflow=self.overflow)

    def quantize_weights(self, weights: np.ndarray) -> np.ndarray:
        """Apodization weights as the coefficient ROM stores them."""
        return quantize(weights, self.weight_format, rounding=self.rounding,
                        overflow=self.overflow)

    def quantize_accumulator(self, values: np.ndarray) -> np.ndarray:
        """Round/saturate a value into the accumulator register format."""
        return quantize(values, self.accumulator_format,
                        rounding=self.rounding, overflow=self.overflow)

    # ----------------------------------------------------------- validation
    def validate_for(self, precision: "Precision | str | None" = None,
                     interpolation="nearest",
                     n_samples: int | None = None) -> None:
        """The single source of the quantized-mode engine constraints.

        Raises :class:`ValueError` unless the execution precision is
        ``float64`` (the fixed-point codes are carried exactly in doubles —
        ``float32`` would silently truncate them), the interpolation is
        ``nearest`` (the hardware's integer echo addressing), and — when the
        echo-buffer length is known — the delay format can actually address
        the whole buffer.  A delay format too narrow for the buffer would
        saturate every delay and produce a structurally valid but
        meaningless volume, which is far worse than failing loudly.
        """
        if resolve_precision(precision) is not Precision.FLOAT64:
            raise ValueError(
                "quantized execution carries exact fixed-point codes in "
                "float64; it cannot be combined with "
                f"precision={resolve_precision(precision).value!r}")
        _require_nearest(interpolation)
        if n_samples is not None and \
                self.delay_format.max_value < n_samples - 1:
            raise ValueError(
                f"delay format {self.delay_format.describe()} saturates at "
                f"{self.delay_format.max_value:g} samples and cannot "
                f"address a {n_samples}-sample echo buffer; use at least "
                f"{max(1, (int(n_samples) - 1).bit_length())} integer bits "
                "(e.g. the paper's U13.5)")

    # ----------------------------------------------------------- reporting
    @property
    def tolerance(self) -> Tolerance:
        """A conservative bound on the quantized volume vs the float64 one.

        Each focal point's sum accumulates one half-LSB error per
        quantisation stage; the dominant term at practical formats is the
        accumulator rounding of every per-element product plus the delay
        quantisation moving indices by ±1 sample.  The bound here is loose
        by construction (it must hold for *any* echo content) and is used
        for documentation and sanity tests, not for bit-true conformance —
        bit-true equality is asserted against the fixed-point oracle
        instead.
        """
        resolution_error = (self.sample_format.resolution
                            + self.weight_format.resolution
                            + self.accumulator_format.resolution)
        return Tolerance(rtol=0.0, atol=max(0.05, 64 * resolution_error))

    def describe(self) -> str:
        """Compact human-readable datapath description."""
        return (f"delays {self.delay_format.describe()}, "
                f"samples {self.sample_format.describe()}, "
                f"weights {self.weight_format.describe()}, "
                f"accumulator {self.accumulator_format.describe()}, "
                f"{self.rounding.value}/{self.overflow.value}")


@dataclass(frozen=True)
class QuantizedPlan(BeamformingPlan):
    """A beamforming plan whose whole datapath runs in fixed point.

    The inherited ``delays``/``weights`` tensors hold the *quantised*
    values (so the precompiled gather index addresses the buffer exactly as
    the hardware's fixed-point delay sum would), and execution overrides the
    two :class:`BeamformingPlan` hooks:

    * :meth:`coerce_samples` quantises each frame into ``sample_format``;
    * :meth:`_reduce` rounds every weighted product into the accumulator
      format, sums, and saturates the final value to the same format.

    ``execute`` / ``execute_rows`` / ``execute_batch`` are inherited
    unchanged, which is what makes the quantized mode a first-class runtime
    workload: the vectorized, sharded and batched streaming paths all work,
    and all are bit-identical to each other (the chunked batch gather
    commutes with per-point quantisation).
    """

    spec: QuantizationSpec | None = field(default=None)

    def __post_init__(self) -> None:
        if self.spec is None:
            raise ValueError("QuantizedPlan requires a QuantizationSpec")
        self.spec.validate_for(self.precision, self.interpolation,
                               self.n_samples)

    # ------------------------------------------------------------ execution
    def coerce_samples(self, channel_data) -> np.ndarray:
        """One frame quantised into ``sample_format`` (idempotent)."""
        samples = getattr(channel_data, "samples", channel_data)
        return self.spec.quantize_samples(
            np.asarray(samples, dtype=np.float64))

    def _reduce(self, gathered: np.ndarray, weights: np.ndarray,
                tracer=NULL_TRACER, *, reuse_gathered: bool = False
                ) -> np.ndarray:
        """The fixed-point weight-and-accumulate stage (Eq. 1 in Q-format).

        The product of a quantised sample and a quantised weight is exact in
        float64; it is then rounded into the accumulator format (one
        hardware rounding stage per element) and summed.  The sum of
        ``n_elements`` accumulator-format values is again exact in float64,
        so the only inexact steps are the explicit quantisations — which is
        precisely the hardware's arithmetic.  The ``weights`` span covers
        the product/rounding stage, ``accumulate`` the sum plus its final
        saturation — same taxonomy as the float plan, so traces compare
        across datapaths.

        ``reuse_gathered`` has the same meaning as on the float plan (the
        execute paths pass a private buffer); here the accumulator rounding
        allocates its own output either way, so the flag only spares the
        weight-product temporary.
        """
        spec = self.spec
        with tracer.span("weights"):
            if reuse_gathered:
                weighted = np.multiply(
                    weights.astype(gathered.dtype, copy=False), gathered,
                    out=gathered)
            else:
                weighted = apply_weights(gathered, weights)
            products = spec.quantize_accumulator(weighted)
        with tracer.span("accumulate"):
            return spec.quantize_accumulator(accumulate(products))


def compile_quantized_plan(beamformer: "DelayAndSumBeamformer",
                           precision: Precision | str | None = None,
                           spec: QuantizationSpec | None = None, *,
                           tile: "object | None" = None
                           ) -> QuantizedPlan:
    """Compile the bit-true fixed-point plan for a configured beamformer.

    ``spec`` defaults to the beamformer's own ``quantization`` attribute.
    Delays and weights are generated through the same bulk provider/weight
    paths as :func:`repro.kernels.plan.compile_plan` and then quantised once
    at compile time; the gather index is built from the quantised delays.

    ``tile`` compiles the segment covering one
    :class:`repro.kernels.tiling.Tile` only: the tensors come from the
    streaming per-scanline path and are quantised with the same
    ``quantize_delays`` / ``quantize_weights`` stages (elementwise, so the
    segment rows stay bit-true slices of the untiled quantised tensors).
    """
    if spec is None:
        spec = getattr(beamformer, "quantization", None)
    if spec is None:
        raise ValueError("no QuantizationSpec: pass spec= or construct the "
                         "beamformer with quantization=...")
    precision = resolve_precision(precision)
    # Validate before the expensive bulk delay generation (the plan's own
    # __post_init__ re-checks, but only after the tensors exist).
    spec.validate_for(precision, beamformer.interpolation,
                      beamformer.system.echo_buffer_samples)
    n_elements = beamformer.transducer.element_count
    if tile is not None:
        from .plan import _tile_tensors
        grid_shape = (1, 1, int(tile.stop) - int(tile.start))
        raw_delays, raw_weights = _tile_tensors(beamformer, tile)
        delays = spec.quantize_delays(raw_delays)
        weights = spec.quantize_weights(raw_weights)
    else:
        grid_shape = beamformer.grid.shape
        delays = spec.quantize_delays(
            np.asarray(beamformer.delays.volume_delays_samples(),
                       dtype=np.float64).reshape(-1, n_elements))
        weights = spec.quantize_weights(
            beamformer.volume_weights().reshape(-1, n_elements))
    plan = QuantizedPlan(
        key=plan_key(beamformer, precision, quantization=spec, tile=tile),
        delays=delays, weights=weights, grid_shape=grid_shape,
        precision=precision, interpolation=beamformer.interpolation,
        n_samples=beamformer.system.echo_buffer_samples, spec=spec)
    plan.gather_index()   # resolve fixed-point addressing at compile time
    return plan


def quantized_delay_and_sum(samples: np.ndarray, delays_samples: np.ndarray,
                            weights: np.ndarray, spec: QuantizationSpec,
                            kind="nearest") -> np.ndarray:
    """Uncompiled fixed-point gather/weight/accumulate for fresh delays.

    The quantized counterpart of :func:`repro.kernels.ops.delay_and_sum`:
    used where delays are produced per call (the per-scanline reference
    loop, arbitrary-point beamforming).  All four datapath values are
    quantised with ``spec`` before the float kernels run, so the result is
    bit-identical to a :class:`QuantizedPlan` covering the same points —
    inputs that are already quantised pass through unchanged (quantisation
    is idempotent), which lets callers hoist the echo-buffer quantisation
    out of per-scanline loops.
    """
    _require_nearest(kind)
    samples = spec.quantize_samples(np.asarray(samples, dtype=np.float64))
    delays = spec.quantize_delays(np.asarray(delays_samples,
                                             dtype=np.float64))
    index = build_gather_index(delays, samples.shape[-1], kind)
    gathered = gather_interp(samples, index)
    products = spec.quantize_accumulator(
        apply_weights(gathered, spec.quantize_weights(weights)))
    return spec.quantize_accumulator(accumulate(products))
