"""Low-level beamforming kernels: gather, weight, accumulate.

Every consumer of delays in this codebase — the per-scanline classic loop,
the whole-volume vectorized backend, the thread-sharded backend and the
batched multi-frame path — ultimately performs the same three steps:

1. :func:`gather_interp` — fetch one echo sample per (focal point, element)
   from the channel buffers at the delayed index (nearest or linear);
2. :func:`apply_weights` — multiply by the receive apodization weights;
3. :func:`accumulate` — sum across the element axis (Eq. 1 of the paper).

This module is the single implementation of those steps.  The kernels are
shape-polymorphic over a leading batch axis: ``samples`` may be one frame
``(n_elements, n_samples)`` or a stacked cine ``(n_frames, n_elements,
n_samples)`` and every kernel broadcasts accordingly, which is what makes
multi-frame execution one fancy-index instead of a Python loop per frame.

Addressing is split from gathering: :func:`build_gather_index` converts a
fractional-delay tensor into the integer indices, validity masks and (for
linear interpolation) fractions once, so a compiled
:class:`repro.kernels.plan.BeamformingPlan` pays the float->index conversion
at compile time rather than per frame — the software analogue of the paper's
precomputed delay table.

Arithmetic runs in the dtype of ``samples`` (see
:class:`repro.kernels.precision.Precision`); delay tensors and the index
build are always ``float64`` so echo addressing is precision-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..beamformer.interpolation import InterpolationKind

# InterpolationKind is a str-valued enum; the kernels compare by value so
# this module stays below repro.beamformer in the import graph (das.py
# imports these kernels).
_NEAREST = "nearest"
_LINEAR = "linear"

__all__ = [
    "GatherIndex",
    "accumulate",
    "apply_weights",
    "build_gather_index",
    "delay_and_sum",
    "gather_interp",
]


@dataclass(frozen=True)
class GatherIndex:
    """Precomputed echo-buffer addressing for one delay tensor.

    For ``NEAREST`` only ``indices``/``valid`` are set; for ``LINEAR`` the
    ``lower``/``upper`` index pair, their masks and the interpolation
    ``fraction`` are set.  All arrays have the delay tensor's
    ``(n_points, n_elements)`` shape; indices are pre-clipped into the
    buffer so gathering never faults, and the masks zero the out-of-range
    fetches (a hardware echo buffer addressed past its end contributes
    nothing).
    """

    kind: "InterpolationKind | str"
    n_samples: int
    element_indices: np.ndarray
    indices: np.ndarray | None = None
    valid: np.ndarray | None = None
    lower: np.ndarray | None = None
    upper: np.ndarray | None = None
    fraction: np.ndarray | None = None
    lower_valid: np.ndarray | None = None
    upper_valid: np.ndarray | None = None

    @property
    def n_points(self) -> int:
        """Number of focal points addressed."""
        return self.element_indices.shape[0]

    @property
    def nbytes(self) -> int:
        """Memory footprint of the owned index/mask tensors [bytes].

        ``element_indices`` is a broadcast view and costs nothing.
        """
        arrays = (self.indices, self.valid, self.lower, self.upper,
                  self.fraction, self.lower_valid, self.upper_valid)
        return sum(a.nbytes for a in arrays if a is not None)

    def rows(self, rows: slice) -> "GatherIndex":
        """A view of this index restricted to a contiguous point block."""
        def cut(array: np.ndarray | None) -> np.ndarray | None:
            return array[rows] if array is not None else None

        return replace(self, element_indices=self.element_indices[rows],
                       indices=cut(self.indices), valid=cut(self.valid),
                       lower=cut(self.lower), upper=cut(self.upper),
                       fraction=cut(self.fraction),
                       lower_valid=cut(self.lower_valid),
                       upper_valid=cut(self.upper_valid))


def build_gather_index(delays_samples: np.ndarray, n_samples: int,
                       kind: "InterpolationKind | str" = _NEAREST
                       ) -> GatherIndex:
    """Convert fractional-sample delays into clipped gather indices + masks.

    ``delays_samples`` has shape ``(n_points, n_elements)``; ``n_samples``
    is the echo-buffer length the indices address.  This is the only place
    delays are rounded, so nearest/linear addressing is defined here once
    for every execution path.
    """
    delays = np.asarray(delays_samples, dtype=np.float64)
    if delays.ndim != 2:
        raise ValueError("delays must have shape (n_points, n_elements), "
                         f"got {delays.shape}")
    element_indices = np.broadcast_to(np.arange(delays.shape[1]),
                                      delays.shape)
    kind_value = getattr(kind, "value", kind)
    if kind_value == _NEAREST:
        indices = np.floor(delays + 0.5).astype(np.int64)
        valid = (indices >= 0) & (indices < n_samples)
        return GatherIndex(kind=kind, n_samples=n_samples,
                           element_indices=element_indices,
                           indices=np.clip(indices, 0, n_samples - 1),
                           valid=valid)
    if kind_value == _LINEAR:
        lower = np.floor(delays)
        fraction = delays - lower
        lower_idx = lower.astype(np.int64)
        upper_idx = lower_idx + 1
        lower_valid = (lower_idx >= 0) & (lower_idx < n_samples)
        upper_valid = (upper_idx >= 0) & (upper_idx < n_samples)
        return GatherIndex(kind=kind, n_samples=n_samples,
                           element_indices=element_indices,
                           lower=np.clip(lower_idx, 0, n_samples - 1),
                           upper=np.clip(upper_idx, 0, n_samples - 1),
                           fraction=fraction,
                           lower_valid=lower_valid, upper_valid=upper_valid)
    raise ValueError(f"unknown interpolation kind: {kind!r}")


def _take(samples: np.ndarray, element_indices: np.ndarray,
          sample_indices: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Fancy-index fetch with invalid entries zeroed.

    ``samples`` is ``(n_elements, n_samples)`` or ``(n_frames, n_elements,
    n_samples)``; the result is ``(n_points, n_elements)`` or ``(n_frames,
    n_points, n_elements)``.
    """
    if samples.ndim == 2:
        values = samples[element_indices, sample_indices]
    else:
        # Batched fancy indexing places the frame axis innermost in memory;
        # copy to C order so the element-axis reduction is contiguous — that
        # keeps NumPy's pairwise summation (bit-identical with the per-frame
        # path) and is faster than reducing a strided view.
        values = np.ascontiguousarray(samples[:, element_indices,
                                              sample_indices])
    values[..., ~valid] = 0.0
    return values


def gather_interp(samples: np.ndarray, index: GatherIndex) -> np.ndarray:
    """Fetch (and, for LINEAR, interpolate) echo samples via a gather index.

    The result is carried in ``samples.dtype`` — cast the buffer once before
    calling to select the execution precision.
    """
    samples = np.asarray(samples)
    if samples.ndim not in (2, 3):
        raise ValueError("samples must be (n_elements, n_samples) or "
                         "(n_frames, n_elements, n_samples), "
                         f"got {samples.shape}")
    if samples.shape[-1] != index.n_samples:
        raise ValueError(
            f"gather index was built for {index.n_samples}-sample buffers, "
            f"got {samples.shape[-1]} samples")
    if getattr(index.kind, "value", index.kind) == _NEAREST:
        return _take(samples, index.element_indices, index.indices,
                     index.valid)
    below = _take(samples, index.element_indices, index.lower,
                  index.lower_valid)
    above = _take(samples, index.element_indices, index.upper,
                  index.upper_valid)
    fraction = index.fraction.astype(samples.dtype, copy=False)
    return (1.0 - fraction) * below + fraction * above


def apply_weights(samples: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Apodize gathered samples (weights broadcast over any batch axis)."""
    return weights.astype(samples.dtype, copy=False) * samples


def accumulate(weighted: np.ndarray) -> np.ndarray:
    """Sum the weighted samples across the trailing element axis (Eq. 1)."""
    return np.sum(weighted, axis=-1)


def delay_and_sum(samples: np.ndarray, delays_samples: np.ndarray,
                  weights: np.ndarray,
                  kind: "InterpolationKind | str" = _NEAREST,
                  dtype: np.dtype | type = np.float64) -> np.ndarray:
    """One-shot gather/weight/accumulate for freshly generated delays.

    The uncompiled entry point: used where delays are produced per call (the
    per-scanline classic loop, arbitrary-point beamforming) and caching an
    index would buy nothing.  Compiled execution goes through
    :class:`repro.kernels.plan.BeamformingPlan` instead.
    """
    samples = np.asarray(samples, dtype=dtype)
    index = build_gather_index(delays_samples, samples.shape[-1], kind)
    return accumulate(apply_weights(gather_interp(samples, index), weights))
