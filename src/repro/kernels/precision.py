"""Numeric precision policy for the beamforming kernel layer.

The paper's whole argument is a precision/throughput trade: delay *indices*
may be off by half a sample (integer addressing) because apodization and
pulse bandwidth mask the error.  The software runtime has the same dial one
level up — the gather/weight/accumulate arithmetic can run in ``float64``
(bit-exact with the classic reference path) or ``float32`` (half the memory
traffic, measurably faster on wide volumes) without touching how delays are
*generated*.  :class:`Precision` names the two policies and pins, for each,
the tolerance at which a volume must match the ``float64`` reference; the
equivalence tests and ``docs/kernels.md`` both quote this table.

Delay tensors themselves always stay ``float64``: precision selects the
dtype of the echo samples, weights and accumulation only, so the echo-buffer
*addressing* (and therefore the paper's delay-accuracy analysis) is
identical under both policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


@dataclass(frozen=True)
class Tolerance:
    """How closely a volume must match the ``float64`` reference volume.

    ``atol`` is *relative to the peak absolute amplitude* of the reference
    volume (beamformed RF has no fixed physical scale), so the comparison is
    ``|a - b| <= rtol * |b| + atol * max|b|``.
    """

    rtol: float
    atol: float

    def assert_allclose(self, actual: np.ndarray,
                        reference: np.ndarray) -> None:
        """Raise :class:`AssertionError` unless ``actual`` is within tolerance."""
        peak = float(np.max(np.abs(reference))) or 1.0
        np.testing.assert_allclose(np.asarray(actual, dtype=np.float64),
                                   np.asarray(reference, dtype=np.float64),
                                   rtol=self.rtol, atol=self.atol * peak)


class Precision(str, Enum):
    """Execution dtype policy of the kernel layer."""

    FLOAT64 = "float64"
    """Exact mode: bit-compatible with the classic per-scanline path."""

    FLOAT32 = "float32"
    """Fast mode: half the memory traffic; volumes match the ``float64``
    reference within :data:`TOLERANCES`\\ [``FLOAT32``]."""

    @property
    def dtype(self) -> np.dtype:
        """The NumPy dtype samples, weights and sums are carried in."""
        return np.dtype(self.value)

    @property
    def tolerance(self) -> Tolerance:
        """Pinned equivalence tolerance against the ``float64`` reference."""
        return TOLERANCES[self]


TOLERANCES: dict[Precision, Tolerance] = {
    # float64 reproduces the classic path exactly for the NumPy backends;
    # 1e-9 absorbs only summation-order noise.  That allowance is now
    # spoken for: the `compiled` backend's fused kernels pin NumPy's
    # *scalar* pairwise-sum base case (8 interleaved partials) for any
    # element count, which matches np.sum bitwise up to 128 elements and
    # deviates only in association order beyond — measured ~3e-16 of peak
    # at 256 elements, six orders of magnitude inside this row.  See the
    # bit-identity stance in repro/kernels/compiled.py and docs/kernels.md.
    Precision.FLOAT64: Tolerance(rtol=0.0, atol=1e-9),
    # float32: ~2^-24 per operation over a few hundred weighted additions,
    # plus cancellation near the volume's zero crossings — hence a peak-
    # referenced atol.  Calibrated against the tiny/small presets, point and
    # speckle phantoms (observed worst case ~1.2e-7 of peak); the pin keeps
    # a wide margin for larger element counts.
    Precision.FLOAT32: Tolerance(rtol=1e-4, atol=1e-5),
}
"""Pinned per-precision tolerances (see the table in ``docs/kernels.md``)."""


def resolve_precision(value: "Precision | str | np.dtype | type | None"
                      ) -> Precision:
    """Coerce a user-facing precision spelling into a :class:`Precision`.

    Accepts the enum itself, its string value (``"float32"``), a NumPy dtype
    (``np.float32``) or ``None`` (the ``float64`` default).
    """
    if value is None:
        return Precision.FLOAT64
    if isinstance(value, Precision):
        return value
    if isinstance(value, str):
        try:
            return Precision(value)
        except ValueError:
            raise ValueError(
                f"unknown precision {value!r}; available: "
                f"{', '.join(p.value for p in Precision)}") from None
    try:
        return Precision(np.dtype(value).name)
    except (TypeError, ValueError):
        raise ValueError(
            f"cannot interpret {value!r} as a precision; available: "
            f"{', '.join(p.value for p in Precision)}") from None
