"""Compiled beamforming plans: delays + weights + addressing, frozen once.

A :class:`BeamformingPlan` is the cacheable artifact every execution path
shares.  It is compiled **once** from ``(SystemConfig, delay architecture,
apodization, interpolation, precision)`` — everything that determines the
per-frame arithmetic — and then executed against any number of frames:

* :meth:`BeamformingPlan.execute` — one frame -> one volume;
* :meth:`BeamformingPlan.execute_rows` — a contiguous point block (what the
  sharded backend's workers run);
* :meth:`BeamformingPlan.execute_batch` — a stacked cine -> stacked volumes
  in one gather, amortising index setup and NumPy dispatch across frames.

Compilation materialises the full ``(n_points, n_elements)`` delay and
weight tensors and pre-resolves the fractional delays into clipped integer
gather indices (:func:`repro.kernels.ops.build_gather_index`) for the
system's echo-buffer length — the software analogue of the paper's
precomputed delay table: the expensive float work happens once, streaming
frames only gather.  Plans are immutable and safe to share across backends
and threads; :func:`plan_key` (which includes the interpolation kind and
execution dtype) is the key they are cached under in
:class:`repro.runtime.cache.PlanCache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from ..beamformer.interpolation import InterpolationKind
from ..observability.tracing import NULL_TRACER, resolve_tracer
from .ops import GatherIndex, accumulate, apply_weights, build_gather_index, \
    gather_interp
from .precision import Precision, resolve_precision

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..acoustics.echo import ChannelData
    from ..beamformer.das import DelayAndSumBeamformer

__all__ = ["BATCH_BLOCK_ELEMENTS", "BeamformingPlan", "compile_plan",
           "plan_key", "plan_storage_bytes"]


BATCH_BLOCK_ELEMENTS = 1 << 20
"""Target gathered-value count per batched-execution chunk (~8 MB at
float64).  Keeps the ``(n_frames, block, n_elements)`` temporaries inside
the CPU caches; see :meth:`BeamformingPlan.execute_batch`."""


def plan_storage_bytes(n_points: int, n_elements: int,
                       precision: Precision | str | None = None,
                       interpolation: "InterpolationKind | str" = "nearest"
                       ) -> int:
    """Predicted memory footprint of a compiled plan, without compiling it.

    Counts the ``float64`` delay tensor, the weights in the execution dtype
    and the compiled gather index (indices + validity masks, plus the
    interpolation fractions for ``linear``).  Used by experiment E9 to put
    the software plan against the paper's delay-table storage wall: at
    paper scale the plan is terabytes — the very reason the paper generates
    delays on the fly — while the scaled-down presets fit in megabytes.
    """
    precision = resolve_precision(precision)
    entries = int(n_points) * int(n_elements)
    per_entry = 8 + precision.dtype.itemsize        # delays + weights
    kind = getattr(interpolation, "value", interpolation)
    if kind == "linear":
        per_entry += 2 * 8 + 8 + 2                  # lower/upper, frac, masks
    else:
        per_entry += 8 + 1                          # indices + valid mask
    return entries * per_entry


def plan_key(beamformer: "DelayAndSumBeamformer",
             precision: Precision | str | None = None,
             quantization: object | None = None, *,
             variant: Hashable = None,
             tile: "object | None" = None) -> Hashable:
    """Stable cache key for the compiled plan of a beamformer.

    Combines the physical system digest, the delay architecture (class plus
    its numerical design and origin), the apodization settings, the
    interpolation kind, the execution dtype and the quantisation spec —
    everything :func:`compile_plan` bakes into the tensors.  Engines that
    share this key can share the plan; engines differing in *any* component
    (notably interpolation, precision or quantisation, which earlier table
    keys ignored) can never be served each other's tensors.

    ``quantization`` defaults to the beamformer's own ``quantization``
    attribute (``None`` = float execution), so callers that thread a
    :class:`repro.kernels.quantized.QuantizationSpec` through the beamformer
    get distinct keys for free.

    ``variant`` names a plan *implementation* beyond the NumPy default —
    e.g. ``("compiled", fastmath)`` from
    :meth:`repro.kernels.compiled.CompiledOptions.variant`.  Variant plans
    carry execution state of their own (jitted kernel sets, relaxed-math
    flags), so a shared :class:`repro.runtime.cache.PlanCache` must never
    hand a NumPy plan to a variant backend or vice versa; ``None`` (the
    NumPy plan) keeps the historical key shape.

    ``tile`` scopes the key to one :class:`repro.kernels.tiling.Tile` of
    the focal grid: the tile's flat point range joins the key, so segment
    plans of the same engine occupy distinct cache slots (the bounded
    :class:`~repro.runtime.cache.PlanCache` streams them under a byte
    budget) and can never shadow the whole-grid plan.
    """
    precision = resolve_precision(precision)
    if quantization is None:
        quantization = getattr(beamformer, "quantization", None)
    provider = beamformer.delays
    origin = getattr(provider, "origin", None)
    origin_key = tuple(np.asarray(origin, dtype=float).ravel()) \
        if origin is not None else None
    design = getattr(provider, "design", None)
    key = (beamformer.system.cache_key(),
           type(provider).__name__,
           repr(design),
           origin_key,
           repr(beamformer.apodization),
           beamformer.interpolation.value,
           precision.value,
           repr(quantization) if quantization is not None else None)
    if variant is not None:
        key = key + (variant,)
    if tile is not None:
        key = key + (("tile", int(tile.start), int(tile.stop)),)
    return key


def _tile_tensors(beamformer: "DelayAndSumBeamformer", tile
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Delay/weight rows for one tile, generated scanline by scanline.

    The streaming analogue of the bulk ``volume_delays_samples`` /
    ``volume_weights`` pair: it materialises only the tile's
    ``(tile.n_points, n_elements)`` rows, never the whole-grid tensors —
    the entire point of tiled execution is that the full tensors do not
    fit the memory budget.  Bit-identity is structural: the bulk volume
    paths assemble their tensors from the very same per-scanline
    ``scanline_delays_samples`` / ``weights_for_scanline`` calls, so each
    tile's rows are exact row slices of what an untiled compile would
    produce.  Both tensors are returned as ``float64``; the caller applies
    the same dtype/quantisation coercions as the untiled compile.
    """
    n_theta, n_phi, n_depth = beamformer.grid.shape
    n_elements = beamformer.transducer.element_count
    start, stop = int(tile.start), int(tile.stop)
    n = stop - start
    delays = np.empty((n, n_elements), dtype=np.float64)
    weights = np.empty((n, n_elements), dtype=np.float64)
    row, filled = start, 0
    while filled < n:
        line, depth = divmod(row, n_depth)
        i_theta, i_phi = divmod(line, n_phi)
        take = min(n_depth - depth, n - filled)
        scanline = np.asarray(
            beamformer.delays.scanline_delays_samples(i_theta, i_phi),
            dtype=np.float64)
        delays[filled:filled + take] = scanline[depth:depth + take]
        weights[filled:filled + take] = \
            beamformer.weights_for_scanline(i_theta, i_phi)[depth:depth + take]
        filled += take
        row += take
    return delays, weights


@dataclass(frozen=True)
class BeamformingPlan:
    """Frozen, executable beamforming recipe for one engine configuration.

    Attributes
    ----------
    key:
        The :func:`plan_key` this plan was compiled under.
    delays:
        Fractional-sample delays, ``(n_points, n_elements)`` ``float64``,
        points in scanline-major ``(i_theta, i_phi, i_depth)`` order.
        Kept for introspection; execution uses the precompiled index.
    weights:
        Receive apodization weights in the execution dtype, same shape.
    grid_shape:
        Focal-grid shape ``(n_theta, n_phi, n_depth)`` used to fold the
        flat point axis back into a volume.
    precision:
        Execution dtype policy (see :class:`repro.kernels.Precision`).
    interpolation:
        Echo-sample interpolation the gather index was built for.
    n_samples:
        Echo-buffer length the primary gather index addresses.
    """

    key: Hashable
    delays: np.ndarray
    weights: np.ndarray
    grid_shape: tuple[int, int, int]
    precision: Precision
    interpolation: InterpolationKind
    n_samples: int
    _indices: dict[int, GatherIndex] = field(default_factory=dict,
                                             repr=False, compare=False)

    # ------------------------------------------------------------ geometry
    @property
    def n_points(self) -> int:
        """Number of focal points (product of ``grid_shape``)."""
        return self.delays.shape[0]

    @property
    def n_elements(self) -> int:
        """Number of receive channels."""
        return self.delays.shape[1]

    @property
    def dtype(self) -> np.dtype:
        """Execution dtype of weights, gathered samples and sums."""
        return self.precision.dtype

    @property
    def nbytes(self) -> int:
        """Memory footprint of tensors plus compiled gather indices [bytes]."""
        return (self.delays.nbytes + self.weights.nbytes
                + sum(index.nbytes for index in self._indices.values()))

    # ----------------------------------------------------------- addressing
    def gather_index(self, n_samples: int | None = None) -> GatherIndex:
        """The compiled gather index for ``n_samples``-long echo buffers.

        The index for the compile-time buffer length is built eagerly; other
        lengths (unusual, e.g. externally recorded data) are built on first
        use and memoised on the plan.
        """
        n_samples = self.n_samples if n_samples is None else int(n_samples)
        index = self._indices.get(n_samples)
        if index is None:
            index = build_gather_index(self.delays, n_samples,
                                       self.interpolation)
            self._indices[n_samples] = index
        return index

    # ------------------------------------------------------------ execution
    def coerce_samples(self, channel_data: "ChannelData | np.ndarray"
                       ) -> np.ndarray:
        """Raw sample array of one frame, cast to the execution dtype.

        The single definition of frame coercion — the backends reuse it so
        every execution path accepts exactly the same payloads.
        """
        samples = getattr(channel_data, "samples", channel_data)
        return np.asarray(samples, dtype=self.dtype)

    def _reduce(self, gathered: np.ndarray, weights: np.ndarray,
                tracer=NULL_TRACER, *, reuse_gathered: bool = False
                ) -> np.ndarray:
        """Weight-and-accumulate stage shared by all three execute paths.

        The float plan multiplies by the apodization weights and sums over
        the element axis; :class:`repro.kernels.quantized.QuantizedPlan`
        overrides this hook with the fixed-point product/accumulator
        rounding stages.  Per focal point the reduction is independent, so
        any execution path may call it on row slices or stacked batches and
        stay bit-identical to the whole-volume call.  ``tracer`` times the
        ``weights`` and ``accumulate`` stages; timing never touches the
        arithmetic, so traced and untraced reductions are bit-identical.

        ``reuse_gathered`` lets the caller declare that ``gathered`` is a
        private buffer (every plan execute path freshly allocates it in
        :func:`repro.kernels.ops.gather_interp`): the weight multiply then
        writes in place instead of allocating a second
        ``(..., n_points, n_elements)`` array — same multiply, same bits,
        roughly a third less peak memory per frame.  Callers passing a
        buffer they still need must leave it ``False``.
        """
        with tracer.span("weights"):
            if reuse_gathered:
                weighted = np.multiply(
                    weights.astype(gathered.dtype, copy=False), gathered,
                    out=gathered)
            else:
                weighted = apply_weights(gathered, weights)
        with tracer.span("accumulate"):
            return accumulate(weighted)

    def execute(self, channel_data: "ChannelData | np.ndarray",
                tracer=None) -> np.ndarray:
        """Beamform one frame into a volume of shape ``grid_shape``.

        ``tracer`` (default: the process default tracer, normally a no-op)
        records ``gather`` / ``weights`` / ``accumulate`` spans with wall
        time and gathered byte counts.
        """
        tracer = resolve_tracer(tracer)
        samples = self.coerce_samples(channel_data)
        index = self.gather_index(samples.shape[-1])
        with tracer.span("gather") as span:
            gathered = gather_interp(samples, index)
            span.set(bytes=int(gathered.nbytes))
        flat = self._reduce(gathered, self.weights, tracer,
                            reuse_gathered=True)
        return flat.reshape(self.grid_shape)

    def execute_rows(self, channel_data: "ChannelData | np.ndarray",
                     rows: slice, tracer=None) -> np.ndarray:
        """Beamform one contiguous point block; returns the flat rows.

        The unit of work of the sharded backend: index and weights are
        row-sliced views, so concurrent workers share the compiled tensors.
        Spans opened here land on the calling thread's stack — under the
        sharded backend's pool each worker contributes its own roots.
        """
        tracer = resolve_tracer(tracer)
        samples = self.coerce_samples(channel_data)
        index = self.gather_index(samples.shape[-1]).rows(rows)
        with tracer.span("gather") as span:
            gathered = gather_interp(samples, index)
            span.set(bytes=int(gathered.nbytes))
        return self._reduce(gathered, self.weights[rows], tracer,
                            reuse_gathered=True)

    def execute_batch(self, frames: "Sequence[ChannelData | np.ndarray]",
                      tracer=None) -> np.ndarray:
        """Beamform a cine batch at once; shape ``(n_frames, *grid_shape)``.

        All frames are stacked into one ``(n_frames, n_elements, n_samples)``
        buffer and gathered with batched fancy-indexes, so per-frame NumPy
        dispatch and masking costs are paid once per batch.  The gather is
        chunked over point blocks of ~:data:`BATCH_BLOCK_ELEMENTS` gathered
        values: without the bound, a wide batch materialises a
        ``(n_frames, n_points, n_elements)`` temporary that falls out of
        the CPU caches and runs *slower* than per-frame execution.  The
        chunking is invisible numerically — each focal point's sum is
        independent, so the result is bit-identical to the single-shot
        gather.  Frames must share one buffer length (always true for one
        acquisition system).
        """
        tracer = resolve_tracer(tracer)
        if len(frames) == 0:
            return np.empty((0, *self.grid_shape), dtype=self.dtype)
        stacked = np.stack([self.coerce_samples(frame) for frame in frames])
        index = self.gather_index(stacked.shape[-1])
        block = max(1, BATCH_BLOCK_ELEMENTS // (len(frames) * self.n_elements))
        if block >= self.n_points:
            with tracer.span("gather") as span:
                gathered = gather_interp(stacked, index)
                span.set(bytes=int(gathered.nbytes))
            flat = self._reduce(gathered, self.weights, tracer,
                                reuse_gathered=True)
            return flat.reshape((len(frames), *self.grid_shape))
        out = np.empty((len(frames), self.n_points), dtype=self.dtype)
        for lo in range(0, self.n_points, block):
            rows = slice(lo, min(lo + block, self.n_points))
            with tracer.span("gather") as span:
                gathered = gather_interp(stacked, index.rows(rows))
                span.set(bytes=int(gathered.nbytes))
            out[:, rows] = self._reduce(gathered, self.weights[rows], tracer,
                                        reuse_gathered=True)
        return out.reshape((len(frames), *self.grid_shape))


def compile_plan(beamformer: "DelayAndSumBeamformer",
                 precision: Precision | str | None = None, *,
                 variant: str | None = None,
                 options: object | None = None,
                 tile: "object | None" = None) -> BeamformingPlan:
    """Compile the beamforming plan for a configured beamformer.

    Generates the full delay tensor through the provider's bulk path, the
    full weight tensor (cast to the execution dtype), and the gather index
    for the system's echo-buffer length.  This is the expensive step the
    :class:`repro.runtime.cache.PlanCache` amortises across frames and
    across backends.

    A beamformer built with a ``quantization`` spec is dispatched to
    :func:`repro.kernels.quantized.compile_quantized_plan` — compiling an
    unquantised plan under a quantised key would be exactly the
    cache-poisoning class of bug the key extension exists to prevent.

    ``variant`` selects an alternative plan implementation over the same
    tensors: ``"compiled"`` dispatches to
    :func:`repro.kernels.compiled.compile_compiled_plan` (fused Numba
    kernels; ``options`` is its :class:`~repro.kernels.compiled.CompiledOptions`),
    raising :class:`repro.kernels.compiled.BackendUnavailable` when numba is
    not importable.  The default ``None`` is the NumPy plan.

    ``tile`` compiles a *segment* plan covering only that
    :class:`repro.kernels.tiling.Tile` of the focal grid: tensors come
    from the streaming per-scanline path (:func:`_tile_tensors`), the key
    carries the tile's point range, and ``grid_shape`` degenerates to
    ``(1, 1, tile.n_points)`` — the segment behaves like a plan for a
    one-scanline grid of the tile's length.  Segments are what
    :class:`repro.kernels.tiling.TiledPlan` streams through the bounded
    cache; their rows are bit-identical slices of the untiled tensors.
    """
    if getattr(beamformer, "quantization", None) is not None:
        if variant is not None:
            raise ValueError(
                f"plan variant {variant!r} does not support quantized "
                "execution; quantized engines compile to the NumPy "
                "QuantizedPlan only")
        from .quantized import compile_quantized_plan
        return compile_quantized_plan(beamformer, precision, tile=tile)
    if variant is not None:
        if variant != "compiled":
            raise ValueError(f"unknown plan variant {variant!r}; "
                             "available: compiled")
        from .compiled import compile_compiled_plan
        return compile_compiled_plan(beamformer, precision, options,
                                     tile=tile)
    precision = resolve_precision(precision)
    n_elements = beamformer.transducer.element_count
    if tile is not None:
        grid_shape = (1, 1, int(tile.stop) - int(tile.start))
        delays, weights = _tile_tensors(beamformer, tile)
        weights = weights.astype(precision.dtype)
    else:
        grid_shape = beamformer.grid.shape
        delays = np.asarray(beamformer.delays.volume_delays_samples(),
                            dtype=np.float64).reshape(-1, n_elements)
        weights = beamformer.volume_weights().reshape(-1, n_elements) \
            .astype(precision.dtype)
    plan = BeamformingPlan(key=plan_key(beamformer, precision, tile=tile),
                           delays=delays, weights=weights,
                           grid_shape=grid_shape, precision=precision,
                           interpolation=beamformer.interpolation,
                           n_samples=beamformer.system.echo_buffer_samples)
    plan.gather_index()   # resolve addressing at compile time, not per frame
    return plan
