"""Fused, Numba-compiled execution of a :class:`BeamformingPlan`.

The NumPy plan executes Eq. 1 as three array passes — gather, weight,
accumulate — each materialising a full ``(n_points, n_elements)``
intermediate.  At paper scale that is gigabytes of memory traffic per frame
for arithmetic that a CPU core could stream through registers.  This module
is the native-speed datapath ROADMAP item #1 asks for: a single fused pass
per focal point (gather -> weight -> accumulate with **no** intermediate
arrays), JIT-compiled with Numba and parallelised with ``prange`` over
contiguous voxel blocks.

Layering
--------
The kernel bodies (:func:`_fused_nearest_frame` and friends) are plain
module-level Python functions over the same precompiled
:class:`repro.kernels.ops.GatherIndex` tensors the NumPy plan uses.  They
are jitted lazily, per ``fastmath`` flag, on first use — so importing this
module never imports ``numba`` and the rest of the library works untouched
on a numba-free interpreter.  Building the ``compiled`` backend without
numba raises :class:`BackendUnavailable` (a :class:`ValueError`, so the CLI
error paths exit 2 like every other bad engine spec).  The un-jitted bodies
remain callable pure-Python functions, which is how the numba-free test leg
pins their numerics against the NumPy plan.

Bit-identity stance
-------------------
Per (focal point, element) the fused kernel performs *exactly* the scalar
operations of the NumPy path, in the same order — invalid fetches contribute
a true zero, linear interpolation is ``(1-f)*below + f*above`` in the
execution dtype.  The one difference is summation order across the element
axis: ``np.sum`` uses a pairwise reduction whose exact association is a
build/SIMD-width detail of NumPy itself, so no independent implementation
can promise bit-identity across machines.  The fused kernels instead pin
NumPy's *scalar* pairwise base case (8 interleaved partial sums, combined
pairwise) for any element count — deterministic everywhere, and within the
pinned :data:`repro.kernels.precision.TOLERANCES` ``float64`` row (whose
1e-9-of-peak allowance exists precisely to absorb summation-order noise; in
practice the volumes agree to ~1e-13 of peak).  ``fastmath=True`` lets LLVM
reassociate that sum for SIMD speed and therefore *forfeits* the tolerance
pin — it is off by default and plans built with it get their own cache key.

The quantized datapath (:class:`repro.kernels.quantized.QuantizedPlan`)
stays on the NumPy plan; the ``compiled`` backend rejects quantized engines
explicitly rather than silently skipping the per-element rounding stages.
"""

from __future__ import annotations

import importlib.util
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..observability.tracing import resolve_tracer
from ..registry import RegistryError
from .plan import BeamformingPlan, compile_plan, plan_key
from .precision import Precision, resolve_precision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..acoustics.echo import ChannelData
    from ..beamformer.das import DelayAndSumBeamformer

__all__ = [
    "BackendUnavailable",
    "CompiledOptions",
    "CompiledPlan",
    "compile_compiled_plan",
    "numba_available",
]


DEFAULT_BLOCK_POINTS = 1024
"""Default voxel-block size of the ``prange`` work decomposition: small
enough to load-balance tiny grids across cores, large enough that the
per-block scheduling cost is noise."""


def numba_available() -> bool:
    """Whether the ``numba`` package is importable (checked without
    importing it — a numba import costs seconds and is deferred to the
    first actual kernel build)."""
    return importlib.util.find_spec("numba") is not None


NUMBA_AVAILABLE: bool = numba_available()
"""Import-time snapshot of :func:`numba_available`.  Tests monkeypatch this
to pin the unavailable-backend error path on any environment."""


class BackendUnavailable(RegistryError):
    """A registered backend's native dependency is missing.

    Subclasses :class:`repro.registry.RegistryError` (a ``ValueError``), so
    every caller that already turns bad engine specs into clean errors — the
    CLI's exit-code-2 paths, ``EngineSpec`` validation, server session
    setup — handles a missing JIT the same way as an unknown backend name.
    """


def require_numba() -> None:
    """Raise :class:`BackendUnavailable` unless numba can be imported."""
    if not NUMBA_AVAILABLE:
        raise BackendUnavailable(
            "the 'compiled' backend requires the optional 'numba' package, "
            "which is not installed in this environment; install it with "
            "'pip install numba' or select one of the NumPy backends "
            "(vectorized, sharded) instead")


@dataclass(frozen=True)
class CompiledOptions:
    """Options for the ``compiled`` backend (``None`` means auto-size).

    ``threads`` caps the Numba thread pool for this backend's kernels (the
    setting is process-global at launch time, as numba's is); ``block_size``
    is the number of focal points per ``prange`` work item; ``fastmath``
    lets LLVM reassociate the element sum — faster, but it abandons the
    pinned float64 tolerance row, so it defaults to off and is part of the
    plan cache key.
    """

    threads: int | None = None
    """Numba thread count for kernel launches (default: numba's own)."""

    block_size: int | None = None
    """Focal points per parallel voxel block (default
    :data:`DEFAULT_BLOCK_POINTS`)."""

    fastmath: bool = False
    """Allow LLVM to reassociate the element sum (forfeits the pinned
    float64 summation tolerance; off by default)."""

    def __post_init__(self) -> None:
        if self.threads is not None and int(self.threads) < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.block_size is not None and int(self.block_size) < 1:
            raise ValueError(
                f"block_size must be >= 1, got {self.block_size}")

    def variant(self) -> tuple:
        """The plan-key component for plans built under these options.

        Only ``fastmath`` changes the arithmetic; ``threads``/``block_size``
        are launch-time knobs passed per call, so backends differing only in
        them can share one compiled plan.
        """
        return ("compiled", bool(self.fastmath))


# --------------------------------------------------------------------------
# Fused kernel bodies.
#
# Plain module-level functions (jitted lazily by _jit_kernels) so that:
#   * numba never has to be importable to import this module;
#   * the numba-free test leg can execute them un-jitted and pin their
#     numerics against the NumPy plan on tiny grids;
#   * cache=True works (numba's on-disk cache needs file-locatable
#     top-level functions, not closures).
#
# `prange` starts as the builtin range and is swapped for numba.prange
# before the first jit compile; numba resolves the global at compile time,
# and numba.prange degrades to plain range when the body runs un-jitted.
#
# Each body repeats the same inner reduction (NumPy's scalar pairwise base
# case: 8 interleaved partial sums r[0..7], combined ((r0+r1)+(r2+r3)) +
# ((r4+r5)+(r6+r7)), sequential tail) instead of calling a shared helper —
# a helper would be a closure over the jit flags and break on-disk caching.
# The per-frame and batched bodies are textually identical per point, which
# is what makes per-frame and batched execution bit-identical.
# --------------------------------------------------------------------------

prange = range


def _fused_nearest_frame(samples, indices, valid, weights, out, block_size):
    """One frame, nearest addressing: ``out[p] = sum_e w*sample``."""
    n_points, n_elements = indices.shape
    zero = np.zeros(1, samples.dtype)[0]
    n_blocks = (n_points + block_size - 1) // block_size
    for b in prange(n_blocks):
        lo = b * block_size
        hi = min(lo + block_size, n_points)
        r = np.empty(8, samples.dtype)
        for p in range(lo, hi):
            if n_elements < 8:
                acc = zero
                for e in range(n_elements):
                    v = samples[e, indices[p, e]] if valid[p, e] else zero
                    acc = acc + weights[p, e] * v
            else:
                for k in range(8):
                    v = samples[k, indices[p, k]] if valid[p, k] else zero
                    r[k] = weights[p, k] * v
                e = 8
                tail = n_elements - (n_elements % 8)
                while e < tail:
                    for k in range(8):
                        v = samples[e + k, indices[p, e + k]] \
                            if valid[p, e + k] else zero
                        r[k] = r[k] + weights[p, e + k] * v
                    e += 8
                acc = ((r[0] + r[1]) + (r[2] + r[3])) \
                    + ((r[4] + r[5]) + (r[6] + r[7]))
                while e < n_elements:
                    v = samples[e, indices[p, e]] if valid[p, e] else zero
                    acc = acc + weights[p, e] * v
                    e += 1
            out[p] = acc


def _fused_linear_frame(samples, lower, upper, fraction, lower_valid,
                        upper_valid, weights, out, block_size):
    """One frame, linear interpolation: ``v = (1-f)*below + f*above``."""
    n_points, n_elements = lower.shape
    zero = np.zeros(1, samples.dtype)[0]
    one = np.ones(1, samples.dtype)[0]
    n_blocks = (n_points + block_size - 1) // block_size
    for b in prange(n_blocks):
        lo = b * block_size
        hi = min(lo + block_size, n_points)
        r = np.empty(8, samples.dtype)
        for p in range(lo, hi):
            if n_elements < 8:
                acc = zero
                for e in range(n_elements):
                    below = samples[e, lower[p, e]] \
                        if lower_valid[p, e] else zero
                    above = samples[e, upper[p, e]] \
                        if upper_valid[p, e] else zero
                    f = fraction[p, e]
                    acc = acc + weights[p, e] * ((one - f) * below
                                                 + f * above)
            else:
                for k in range(8):
                    below = samples[k, lower[p, k]] \
                        if lower_valid[p, k] else zero
                    above = samples[k, upper[p, k]] \
                        if upper_valid[p, k] else zero
                    f = fraction[p, k]
                    r[k] = weights[p, k] * ((one - f) * below + f * above)
                e = 8
                tail = n_elements - (n_elements % 8)
                while e < tail:
                    for k in range(8):
                        below = samples[e + k, lower[p, e + k]] \
                            if lower_valid[p, e + k] else zero
                        above = samples[e + k, upper[p, e + k]] \
                            if upper_valid[p, e + k] else zero
                        f = fraction[p, e + k]
                        r[k] = r[k] + weights[p, e + k] * ((one - f) * below
                                                           + f * above)
                    e += 8
                acc = ((r[0] + r[1]) + (r[2] + r[3])) \
                    + ((r[4] + r[5]) + (r[6] + r[7]))
                while e < n_elements:
                    below = samples[e, lower[p, e]] \
                        if lower_valid[p, e] else zero
                    above = samples[e, upper[p, e]] \
                        if upper_valid[p, e] else zero
                    f = fraction[p, e]
                    acc = acc + weights[p, e] * ((one - f) * below
                                                 + f * above)
                    e += 1
            out[p] = acc


def _fused_nearest_batch(samples, indices, valid, weights, out, block_size):
    """Stacked cine, nearest addressing; per point identical to the frame
    kernel (same scalar ops, same order), so batched == per-frame bitwise."""
    n_points, n_elements = indices.shape
    n_frames = samples.shape[0]
    zero = np.zeros(1, samples.dtype)[0]
    n_blocks = (n_points + block_size - 1) // block_size
    for b in prange(n_blocks):
        lo = b * block_size
        hi = min(lo + block_size, n_points)
        r = np.empty(8, samples.dtype)
        for fi in range(n_frames):
            frame = samples[fi]
            for p in range(lo, hi):
                if n_elements < 8:
                    acc = zero
                    for e in range(n_elements):
                        v = frame[e, indices[p, e]] if valid[p, e] else zero
                        acc = acc + weights[p, e] * v
                else:
                    for k in range(8):
                        v = frame[k, indices[p, k]] if valid[p, k] else zero
                        r[k] = weights[p, k] * v
                    e = 8
                    tail = n_elements - (n_elements % 8)
                    while e < tail:
                        for k in range(8):
                            v = frame[e + k, indices[p, e + k]] \
                                if valid[p, e + k] else zero
                            r[k] = r[k] + weights[p, e + k] * v
                        e += 8
                    acc = ((r[0] + r[1]) + (r[2] + r[3])) \
                        + ((r[4] + r[5]) + (r[6] + r[7]))
                    while e < n_elements:
                        v = frame[e, indices[p, e]] if valid[p, e] else zero
                        acc = acc + weights[p, e] * v
                        e += 1
                out[fi, p] = acc


def _fused_linear_batch(samples, lower, upper, fraction, lower_valid,
                        upper_valid, weights, out, block_size):
    """Stacked cine, linear interpolation; per point identical to the frame
    kernel."""
    n_points, n_elements = lower.shape
    n_frames = samples.shape[0]
    zero = np.zeros(1, samples.dtype)[0]
    one = np.ones(1, samples.dtype)[0]
    n_blocks = (n_points + block_size - 1) // block_size
    for b in prange(n_blocks):
        lo = b * block_size
        hi = min(lo + block_size, n_points)
        r = np.empty(8, samples.dtype)
        for fi in range(n_frames):
            frame = samples[fi]
            for p in range(lo, hi):
                if n_elements < 8:
                    acc = zero
                    for e in range(n_elements):
                        below = frame[e, lower[p, e]] \
                            if lower_valid[p, e] else zero
                        above = frame[e, upper[p, e]] \
                            if upper_valid[p, e] else zero
                        f = fraction[p, e]
                        acc = acc + weights[p, e] * ((one - f) * below
                                                     + f * above)
                else:
                    for k in range(8):
                        below = frame[k, lower[p, k]] \
                            if lower_valid[p, k] else zero
                        above = frame[k, upper[p, k]] \
                            if upper_valid[p, k] else zero
                        f = fraction[p, k]
                        r[k] = weights[p, k] * ((one - f) * below
                                                + f * above)
                    e = 8
                    tail = n_elements - (n_elements % 8)
                    while e < tail:
                        for k in range(8):
                            below = frame[e + k, lower[p, e + k]] \
                                if lower_valid[p, e + k] else zero
                            above = frame[e + k, upper[p, e + k]] \
                                if upper_valid[p, e + k] else zero
                            f = fraction[p, e + k]
                            r[k] = r[k] + weights[p, e + k] \
                                * ((one - f) * below + f * above)
                        e += 8
                    acc = ((r[0] + r[1]) + (r[2] + r[3])) \
                        + ((r[4] + r[5]) + (r[6] + r[7]))
                    while e < n_elements:
                        below = frame[e, lower[p, e]] \
                            if lower_valid[p, e] else zero
                        above = frame[e, upper[p, e]] \
                            if upper_valid[p, e] else zero
                        f = fraction[p, e]
                        acc = acc + weights[p, e] * ((one - f) * below
                                                     + f * above)
                        e += 1
                out[fi, p] = acc


_KERNEL_BODIES: dict[str, Callable] = {
    "nearest_frame": _fused_nearest_frame,
    "linear_frame": _fused_linear_frame,
    "nearest_batch": _fused_nearest_batch,
    "linear_batch": _fused_linear_batch,
}

_JITTED: dict[bool, dict[str, Callable]] = {}


def _jit_kernels(fastmath: bool) -> dict[str, Callable]:
    """The jitted kernel set for one ``fastmath`` flag (built once each).

    ``cache=True`` persists the compiled machine code on disk
    (``NUMBA_CACHE_DIR`` relocates it — CI caches that directory between
    runs), so warm-up after the first process costs milliseconds.
    """
    fastmath = bool(fastmath)
    built = _JITTED.get(fastmath)
    if built is None:
        require_numba()
        import numba

        global prange
        prange = numba.prange
        jit = numba.njit(parallel=True, fastmath=fastmath, cache=True)
        built = {name: jit(body) for name, body in _KERNEL_BODIES.items()}
        _JITTED[fastmath] = built
    return built


def _set_threads(threads: int | None) -> None:
    """Apply the ``threads`` option (clamped; process-global, as numba's)."""
    if threads is None:
        return
    import numba

    numba.set_num_threads(min(int(threads), numba.config.NUMBA_NUM_THREADS))


@dataclass(frozen=True)
class CompiledPlan(BeamformingPlan):
    """A :class:`BeamformingPlan` executed by the fused Numba kernels.

    Holds the *same* delay/weight/gather-index tensors as the NumPy plan it
    was compiled from — only execution differs, so the plan stays safe to
    share across threads and (cache-keyed by :meth:`CompiledOptions.variant`)
    across backends.  ``options`` records the build-time defaults; backends
    pass their own options per call, so two engines differing only in
    ``threads``/``block_size`` can share one cache entry.
    """

    options: CompiledOptions = field(default_factory=CompiledOptions,
                                     compare=False)
    _fractions: dict[int, np.ndarray] = field(default_factory=dict,
                                              repr=False, compare=False)

    # ------------------------------------------------------------ plumbing
    def kernels(self) -> dict[str, Callable]:
        """The jitted kernel set this plan executes with (memoised)."""
        return _jit_kernels(self.options.fastmath)

    def _fraction(self, index) -> np.ndarray:
        """Interpolation fractions in the execution dtype (memoised cast —
        the NumPy path casts per call; here the cast would otherwise be the
        only remaining per-frame temporary)."""
        if index.fraction.dtype == self.dtype:
            return index.fraction
        cast = self._fractions.get(index.n_samples)
        if cast is None:
            cast = index.fraction.astype(self.dtype)
            self._fractions[index.n_samples] = cast
        return cast

    def _block_size(self, options: CompiledOptions) -> int:
        return int(options.block_size or DEFAULT_BLOCK_POINTS)

    def _run_frame(self, samples: np.ndarray, rows: slice | None,
                   out: np.ndarray, options: CompiledOptions) -> None:
        """Launch the single-frame kernel over ``rows`` (None = all)."""
        kernels = self.kernels()
        index = self.gather_index(samples.shape[-1])
        _set_threads(options.threads)
        block = self._block_size(options)
        if self.interpolation.value == "nearest":
            indices, valid = index.indices, index.valid
            weights = self.weights
            if rows is not None:
                indices, valid = indices[rows], valid[rows]
                weights = weights[rows]
            kernels["nearest_frame"](samples, indices, valid, weights,
                                     out, block)
        else:
            fraction = self._fraction(index)
            lower, upper = index.lower, index.upper
            lower_valid, upper_valid = index.lower_valid, index.upper_valid
            weights = self.weights
            if rows is not None:
                lower, upper = lower[rows], upper[rows]
                fraction = fraction[rows]
                lower_valid = lower_valid[rows]
                upper_valid = upper_valid[rows]
                weights = weights[rows]
            kernels["linear_frame"](samples, lower, upper, fraction,
                                    lower_valid, upper_valid, weights,
                                    out, block)

    # ------------------------------------------------------------ execution
    def execute(self, channel_data: "ChannelData | np.ndarray",
                tracer=None, options: CompiledOptions | None = None
                ) -> np.ndarray:
        """One frame -> one volume through the fused kernel.

        The whole gather/weight/accumulate runs inside a single ``fused``
        span (there are no separate stages to time — that is the point).
        """
        tracer = resolve_tracer(tracer)
        options = self.options if options is None else options
        samples = np.ascontiguousarray(self.coerce_samples(channel_data))
        out = np.empty(self.n_points, dtype=self.dtype)
        with tracer.span("fused") as span:
            self._run_frame(samples, None, out, options)
            span.set(bytes=int(samples.nbytes), points=self.n_points)
        return out.reshape(self.grid_shape)

    def execute_rows(self, channel_data: "ChannelData | np.ndarray",
                     rows: slice, tracer=None,
                     options: CompiledOptions | None = None) -> np.ndarray:
        """One contiguous point block, fused; returns the flat rows."""
        tracer = resolve_tracer(tracer)
        options = self.options if options is None else options
        samples = np.ascontiguousarray(self.coerce_samples(channel_data))
        n_rows = len(range(*rows.indices(self.n_points)))
        out = np.empty(n_rows, dtype=self.dtype)
        with tracer.span("fused") as span:
            self._run_frame(samples, rows, out, options)
            span.set(bytes=int(samples.nbytes), points=n_rows)
        return out

    def execute_batch(self, frames: "Sequence[ChannelData | np.ndarray]",
                      tracer=None, options: CompiledOptions | None = None
                      ) -> np.ndarray:
        """A stacked cine in one kernel launch; ``(n_frames, *grid_shape)``.

        No :data:`repro.kernels.plan.BATCH_BLOCK_ELEMENTS` chunking is
        needed here — the fused kernel never materialises gathered values,
        so its working set is the echo buffers plus the plan regardless of
        batch width.
        """
        tracer = resolve_tracer(tracer)
        options = self.options if options is None else options
        if len(frames) == 0:
            return np.empty((0, *self.grid_shape), dtype=self.dtype)
        stacked = np.ascontiguousarray(
            np.stack([self.coerce_samples(frame) for frame in frames]))
        index = self.gather_index(stacked.shape[-1])
        kernels = self.kernels()
        _set_threads(options.threads)
        block = self._block_size(options)
        out = np.empty((len(frames), self.n_points), dtype=self.dtype)
        with tracer.span("fused") as span:
            if self.interpolation.value == "nearest":
                kernels["nearest_batch"](stacked, index.indices, index.valid,
                                         self.weights, out, block)
            else:
                kernels["linear_batch"](stacked, index.lower, index.upper,
                                        self._fraction(index),
                                        index.lower_valid, index.upper_valid,
                                        self.weights, out, block)
            span.set(bytes=int(stacked.nbytes), points=self.n_points,
                     frames=len(frames))
        return out.reshape((len(frames), *self.grid_shape))

    # -------------------------------------------------------------- warmup
    def warmup(self) -> None:
        """Force-JIT every kernel signature this plan will launch.

        Called from :func:`compile_compiled_plan`, i.e. inside the backend's
        ``compile`` tracer span — JIT time is real compile time and shows up
        in traces (and in the plan-cache amortisation counters) as such.
        """
        kernels = self.kernels()
        dtype = self.dtype
        frame = np.zeros((1, 2), dtype=dtype)
        batch = np.zeros((1, 1, 2), dtype=dtype)
        weights = np.ones((1, 1), dtype=dtype)
        ones = np.ones((1, 1), dtype=np.bool_)
        idx = np.zeros((1, 1), dtype=np.int64)
        out = np.empty(1, dtype=dtype)
        out_batch = np.empty((1, 1), dtype=dtype)
        if self.interpolation.value == "nearest":
            kernels["nearest_frame"](frame, idx, ones, weights, out, 1)
            kernels["nearest_batch"](batch, idx, ones, weights, out_batch, 1)
        else:
            fraction = np.zeros((1, 1), dtype=dtype)
            kernels["linear_frame"](frame, idx, idx, fraction, ones, ones,
                                    weights, out, 1)
            kernels["linear_batch"](batch, idx, idx, fraction, ones, ones,
                                    weights, out_batch, 1)


def compile_compiled_plan(beamformer: "DelayAndSumBeamformer",
                          precision: Precision | str | None = None,
                          options: CompiledOptions | None = None, *,
                          tile: "object | None" = None
                          ) -> CompiledPlan:
    """Compile a :class:`CompiledPlan` (tensors + jitted kernels) for an
    engine.

    The delay/weight tensors and gather index are built by the standard
    :func:`repro.kernels.plan.compile_plan` path — the fused kernels consume
    the very same artifacts, which is what keeps the backend a drop-in peer.
    The plan key carries :meth:`CompiledOptions.variant`, so a cache shared
    with NumPy backends can never serve a :class:`CompiledPlan` where a
    NumPy plan is expected (or vice versa), and fastmath plans never
    masquerade as strict ones.  ``tile`` compiles the fused segment for one
    :class:`repro.kernels.tiling.Tile` over the same streamed tensors the
    NumPy segment would use (the key carries both variant and tile).
    """
    if getattr(beamformer, "quantization", None) is not None:
        raise ValueError(
            "the 'compiled' backend does not support quantized execution: "
            "the bit-true fixed-point rounding stages run on the NumPy "
            "plan only — use the 'vectorized' or 'sharded' backend for "
            "quantized engines")
    require_numba()
    options = CompiledOptions() if options is None else options
    precision = resolve_precision(precision)
    base = compile_plan(beamformer, precision, tile=tile)
    plan = CompiledPlan(
        key=plan_key(beamformer, precision, variant=options.variant(),
                     tile=tile),
        delays=base.delays, weights=base.weights,
        grid_shape=base.grid_shape, precision=base.precision,
        interpolation=base.interpolation, n_samples=base.n_samples,
        _indices=dict(base._indices), options=options)
    plan.warmup()
    return plan
