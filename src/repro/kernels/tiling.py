"""Memory-budgeted tiled execution: budget -> tiles -> streamed segments.

Experiment E9 puts the paper's storage argument in numbers: a compiled
whole-grid :class:`~repro.kernels.plan.BeamformingPlan` costs terabytes at
paper scale — the very reason the DATE'15 architecture generates delays on
the fly instead of storing them.  This module is the software analogue of
that choice.  Given a ``memory_budget_bytes`` cap (e.g. ``"8G"``):

* :class:`TilePlanner` splits the flat focal-point axis into contiguous
  :class:`Tile` ranges whose per-tile plan cost
  (:func:`~repro.kernels.plan.plan_storage_bytes`) fits the budget,
  aligned to whole scanlines by default (the minimal unit the per-scanline
  delay providers stream);
* :class:`TiledPlan` mirrors the :class:`BeamformingPlan` execute surface
  but compiles one *segment* plan per tile on demand — via
  ``compile_plan(..., tile=...)``, whose tensors come from the streaming
  per-scanline path, never the whole-grid bulk path — and writes each
  tile's rows into the caller's output array;
* segments are cached in a byte-budgeted
  :class:`repro.runtime.cache.PlanCache` (segment-level LRU): the budget is
  *enforced*, never silently exceeded, and the achieved peak is reported
  through the cache's ``plan_cache_peak_bytes`` gauge.

Bit-identity with untiled execution is structural, and pinned by the
conformance matrix and ``tests/test_property_tiling.py``: the bulk volume
tensors are themselves assembled scanline-by-scanline from the same
per-scanline calls, every dtype/quantisation coercion is elementwise, and
every focal point's gather/weight/sum is independent of its neighbours —
so a tile's rows are exact row slices of the untiled result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from ..observability.tracing import resolve_tracer
from .plan import compile_plan, plan_key, plan_storage_bytes
from .precision import Precision, resolve_precision

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..acoustics.echo import ChannelData
    from ..beamformer.das import DelayAndSumBeamformer
    from ..runtime.cache import PlanCache

__all__ = ["Tile", "TilePlanner", "TiledPlan", "parse_memory_budget"]


_BUDGET_SUFFIXES = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}


def parse_memory_budget(value: int | str) -> int:
    """Normalise a memory budget to a positive integer byte count.

    Accepts plain integers, decimal strings, and binary-suffixed strings
    (``"8G"``, ``"512M"``, ``"64K"``, ``"1T"``, case-insensitive, optional
    trailing ``B`` as in ``"8GB"``; fractions like ``"0.5G"`` work too).
    Raises :class:`ValueError` for anything non-positive or unparseable —
    a budget is a hard promise, so a malformed one must fail loudly, never
    default.
    """
    if isinstance(value, bool):
        raise ValueError("memory budget must be a byte count or a string "
                         "like '8G', not a bool")
    if isinstance(value, (int, np.integer)):
        budget = int(value)
    elif isinstance(value, str):
        text = value.strip().upper()
        if text.endswith("B"):
            text = text[:-1]
        scale = 1
        if text and text[-1] in _BUDGET_SUFFIXES:
            scale = _BUDGET_SUFFIXES[text[-1]]
            text = text[:-1]
        try:
            budget = int(float(text) * scale)
        except ValueError:
            raise ValueError(
                f"unparseable memory budget {value!r}: expected bytes or a "
                "suffixed size like '8G', '512M', '64K'") from None
    else:
        raise ValueError(f"memory budget must be an int or str, "
                         f"got {type(value).__name__}")
    if budget < 1:
        raise ValueError(f"memory budget must be positive, got {value!r}")
    return budget


@dataclass(frozen=True)
class Tile:
    """One contiguous flat-point range of the focal grid.

    ``start``/``stop`` index the scanline-major flattened point axis the
    plans execute over (``(i_theta, i_phi, i_depth)`` order), so a tile is
    exactly a row slice of the whole-grid tensors.
    """

    index: int
    start: int
    stop: int

    @property
    def n_points(self) -> int:
        """Number of focal points covered by this tile."""
        return self.stop - self.start

    @property
    def rows(self) -> slice:
        """The tile's flat-point range as a slice."""
        return slice(self.start, self.stop)


class TilePlanner:
    """Split a voxel grid into budget-sized tiles from per-point plan cost.

    Parameters
    ----------
    grid_shape:
        Focal-grid shape ``(n_theta, n_phi, n_depth)``.
    n_elements:
        Receive-channel count (sets the per-point plan cost).
    memory_budget_bytes:
        The plan-memory cap, as bytes or a suffixed string (``"8G"``).
        Tiles are sized so one segment plan never exceeds it; the
        byte-budgeted :class:`repro.runtime.cache.PlanCache` then enforces
        it across however many segments are resident.
    precision / interpolation:
        Execution dtype and gather interpolation — both change the
        per-point cost (see :func:`~repro.kernels.plan.plan_storage_bytes`).
    granularity:
        Tile alignment in points.  Defaults to ``n_depth`` — whole
        scanlines, the minimal unit the per-scanline delay providers
        stream.  Property tests use ``granularity=1`` (single-voxel tiles)
        to pin the degenerate partition.

    A budget too small to hold even one granularity unit is rejected with
    an actionable error (the MWA-pointing stance: fail loudly, never
    degrade silently).
    """

    def __init__(self, grid_shape: Sequence[int], n_elements: int,
                 memory_budget_bytes: int | str, *,
                 precision: Precision | str | None = None,
                 interpolation="nearest",
                 granularity: int | None = None) -> None:
        self.grid_shape = tuple(int(n) for n in grid_shape)
        if len(self.grid_shape) != 3 or min(self.grid_shape) < 1:
            raise ValueError(f"grid_shape must be three positive extents, "
                             f"got {grid_shape!r}")
        n_theta, n_phi, n_depth = self.grid_shape
        self.n_points = n_theta * n_phi * n_depth
        self.n_elements = int(n_elements)
        self.memory_budget_bytes = parse_memory_budget(memory_budget_bytes)
        self.precision = resolve_precision(precision)
        self.interpolation = interpolation
        self.granularity = n_depth if granularity is None else int(granularity)
        if self.granularity < 1:
            raise ValueError("tile granularity must be at least 1 point")
        self.bytes_per_point = plan_storage_bytes(
            1, self.n_elements, self.precision, self.interpolation)
        unit_bytes = self.bytes_per_point * self.granularity
        units = self.memory_budget_bytes // unit_bytes
        if units < 1:
            unit = "scanline" if granularity is None else \
                f"{self.granularity}-point tile"
            raise ValueError(
                f"memory budget of {self.memory_budget_bytes} bytes cannot "
                f"hold one {unit}: a single segment plan of "
                f"{self.granularity} points x {self.n_elements} elements "
                f"costs {unit_bytes} bytes "
                f"({self.bytes_per_point} bytes/point at "
                f"{self.precision.value}); raise the budget to at least "
                f"{unit_bytes} bytes")
        self.tile_points = int(min(units * self.granularity, self.n_points))
        self.n_tiles = math.ceil(self.n_points / self.tile_points)

    # ------------------------------------------------------------ the tiles
    def tile(self, index: int) -> Tile:
        """The ``index``-th tile (last one may be short)."""
        if not 0 <= index < self.n_tiles:
            raise IndexError(f"tile index {index} out of range "
                             f"[0, {self.n_tiles})")
        start = index * self.tile_points
        return Tile(index=index, start=start,
                    stop=min(start + self.tile_points, self.n_points))

    def tiles(self) -> tuple[Tile, ...]:
        """All tiles, in flat-point order — an exact partition of the grid
        (no overlap, no gap, full coverage; pinned by the property suite)."""
        return tuple(self.tile(i) for i in range(self.n_tiles))

    def covering(self, rows: slice) -> Iterator[Tile]:
        """The tiles intersecting a flat-point range (sharded row blocks)."""
        start, stop, _ = rows.indices(self.n_points)
        if stop <= start:
            return
        first = start // self.tile_points
        last = (stop - 1) // self.tile_points
        for index in range(first, last + 1):
            yield self.tile(index)

    # ------------------------------------------------------------- costing
    @property
    def tile_bytes(self) -> int:
        """Plan cost of one full-size tile segment [bytes] (<= budget)."""
        return self.tile_points * self.bytes_per_point

    def tile_nbytes(self, tile: Tile) -> int:
        """Predicted plan cost of one specific tile's segment [bytes]."""
        return tile.n_points * self.bytes_per_point

    @property
    def untiled_bytes(self) -> int:
        """What the whole-grid plan would cost [bytes] — the E9 wall."""
        return self.n_points * self.bytes_per_point

    @classmethod
    def for_beamformer(cls, beamformer: "DelayAndSumBeamformer",
                       memory_budget_bytes: int | str, *,
                       precision: Precision | str | None = None,
                       granularity: int | None = None) -> "TilePlanner":
        """Planner for a configured beamformer's grid/channels/interp."""
        return cls(beamformer.grid.shape,
                   beamformer.transducer.element_count,
                   memory_budget_bytes, precision=precision,
                   interpolation=beamformer.interpolation,
                   granularity=granularity)


class TiledPlan:
    """Budget-bounded drop-in for a whole-grid plan: segments on demand.

    Mirrors the :class:`~repro.kernels.plan.BeamformingPlan` execute
    surface (``execute`` / ``execute_rows`` / ``execute_batch``) so the
    runtime backends can hold one regardless of tiling.  Each call walks
    the planner's tiles, fetches the tile's segment plan from the
    byte-budgeted cache (compiling through the streaming
    ``compile_plan(..., tile=...)`` path on miss, under a ``compile``
    span), executes it, and writes the rows into the output array — one
    ``tile`` tracer span per tile.

    ``variant="compiled"`` streams fused
    :class:`~repro.kernels.compiled.CompiledPlan` segments instead (keyed
    by ``options.variant()`` exactly as the untiled compiled path is); a
    beamformer carrying a ``quantization`` spec streams bit-true
    :class:`~repro.kernels.quantized.QuantizedPlan` segments automatically.
    """

    def __init__(self, beamformer: "DelayAndSumBeamformer",
                 planner: TilePlanner,
                 precision: Precision | str | None = None, *,
                 cache: "PlanCache | None" = None,
                 variant: str | None = None,
                 options: object | None = None) -> None:
        self.beamformer = beamformer
        self.planner = planner
        self.precision = resolve_precision(precision)
        self.grid_shape = beamformer.grid.shape
        self.interpolation = beamformer.interpolation
        self.n_samples = beamformer.system.echo_buffer_samples
        self.quantization = getattr(beamformer, "quantization", None)
        if variant is not None and variant != "compiled":
            raise ValueError(f"unknown plan variant {variant!r}; "
                             "available: compiled")
        self._variant = variant
        self._options = options
        if variant == "compiled":
            from .compiled import CompiledOptions
            options = CompiledOptions() if options is None else options
            self._options = options
            self._key_variant = options.variant()
        else:
            self._key_variant = None
        if cache is None:
            # Private per-plan cache, bounded by the same budget the tiles
            # were sized for.  Imported lazily: repro.runtime imports the
            # kernels package, not the other way round.
            from ..runtime.cache import PlanCache
            cache = PlanCache(metrics=None,
                              max_bytes=planner.memory_budget_bytes)
        self.cache = cache

    # ------------------------------------------------------------ geometry
    @property
    def n_points(self) -> int:
        """Number of focal points (product of ``grid_shape``)."""
        return self.planner.n_points

    @property
    def n_elements(self) -> int:
        """Number of receive channels."""
        return self.planner.n_elements

    @property
    def dtype(self) -> np.dtype:
        """Execution dtype of the output volumes."""
        return self.precision.dtype

    @property
    def nbytes(self) -> int:
        """Per-segment working set [bytes] — the streaming footprint, not
        the (budget-violating) whole-grid tensor cost."""
        return self.planner.tile_bytes

    @property
    def peak_plan_bytes(self) -> int:
        """Highest resident segment-plan byte count seen so far (from the
        cache's tracked-bytes high-water mark) — the number E9 reports
        against the budget."""
        return int(self.cache.stats.peak_bytes)

    # ------------------------------------------------------------ execution
    def coerce_samples(self, channel_data: "ChannelData | np.ndarray"
                       ) -> np.ndarray:
        """One frame coerced exactly as the segments will re-coerce it.

        Hoists the cast (float) or sample quantisation (fixed-point) out
        of the per-tile loop; both coercions are idempotent, so the
        segments' own ``coerce_samples`` passes the result through
        unchanged and tiled output stays bit-identical to untiled.
        """
        samples = getattr(channel_data, "samples", channel_data)
        if self.quantization is not None:
            return self.quantization.quantize_samples(
                np.asarray(samples, dtype=np.float64))
        return np.asarray(samples, dtype=self.dtype)

    def segment(self, tile: Tile, tracer=None):
        """The compiled segment plan for one tile (cached; builds on miss)."""
        tracer = resolve_tracer(tracer)
        key = plan_key(self.beamformer, self.precision,
                       variant=self._key_variant, tile=tile)

        def build():
            with tracer.span("compile") as span:
                plan = compile_plan(self.beamformer, self.precision,
                                    variant=self._variant,
                                    options=self._options, tile=tile)
                span.set(bytes=int(plan.nbytes), points=tile.n_points,
                         elements=self.n_elements, tile=tile.index)
            return plan

        return self.cache.get_or_build(
            key, build, size_hint=self.planner.tile_nbytes(tile))

    def _segment_kwargs(self, options) -> dict:
        if self._variant == "compiled":
            return {"options": self._options if options is None else options}
        return {}

    def execute(self, channel_data: "ChannelData | np.ndarray",
                tracer=None, options=None,
                out: np.ndarray | None = None) -> np.ndarray:
        """Beamform one frame tile by tile; shape ``grid_shape``.

        ``out`` (optional) receives the volume in place — it must match
        ``grid_shape`` and the execution dtype.  Each tile runs under a
        ``tile`` span carrying its index, point count and segment bytes.
        """
        tracer = resolve_tracer(tracer)
        samples = self.coerce_samples(channel_data)
        if out is None:
            out = np.empty(self.grid_shape, dtype=self.dtype)
        elif out.shape != self.grid_shape or out.dtype != self.dtype:
            raise ValueError(
                f"out must be shape {self.grid_shape} dtype {self.dtype}, "
                f"got shape {out.shape} dtype {out.dtype}")
        elif not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous (tile rows are "
                             "written through a flat view)")
        flat = out.reshape(-1)
        kwargs = self._segment_kwargs(options)
        for tile in self.planner.tiles():
            with tracer.span("tile", index=tile.index,
                             tiles=self.planner.n_tiles,
                             points=tile.n_points) as span:
                segment = self.segment(tile, tracer)
                span.set(bytes=int(segment.nbytes))
                flat[tile.start:tile.stop] = segment.execute_rows(
                    samples, slice(0, tile.n_points), tracer=tracer, **kwargs)
        return out

    def execute_rows(self, channel_data: "ChannelData | np.ndarray",
                     rows: slice, tracer=None, options=None) -> np.ndarray:
        """Beamform one contiguous flat-point block; returns the flat rows.

        The sharded backend's unit of work: global rows are mapped onto
        the tiles they intersect, each segment executing only its local
        sub-range — so shard boundaries and tile boundaries compose.  Like
        the untiled plan, stacked multi-frame sample buffers are accepted
        (the sharded batched path passes one); leading dims carry through.
        """
        tracer = resolve_tracer(tracer)
        samples = self.coerce_samples(channel_data)
        start, stop, _ = rows.indices(self.n_points)
        out = np.empty((*samples.shape[:-2], max(stop - start, 0)),
                       dtype=self.dtype)
        kwargs = self._segment_kwargs(options)
        for tile in self.planner.covering(slice(start, stop)):
            lo, hi = max(start, tile.start), min(stop, tile.stop)
            with tracer.span("tile", index=tile.index,
                             points=hi - lo) as span:
                segment = self.segment(tile, tracer)
                span.set(bytes=int(segment.nbytes))
                out[..., lo - start:hi - start] = segment.execute_rows(
                    samples, slice(lo - tile.start, hi - tile.start),
                    tracer=tracer, **kwargs)
        return out

    def execute_batch(self, frames: "Sequence[ChannelData | np.ndarray]",
                      tracer=None, options=None) -> np.ndarray:
        """Beamform a cine batch tile by tile; ``(n_frames, *grid_shape)``.

        Frames are coerced once and every tile's segment executes the full
        batch before moving on — the segment (the expensive artifact) is
        amortised across frames, exactly the access order the LRU favours.
        """
        tracer = resolve_tracer(tracer)
        if len(frames) == 0:
            return np.empty((0, *self.grid_shape), dtype=self.dtype)
        coerced = [self.coerce_samples(frame) for frame in frames]
        out = np.empty((len(frames), self.n_points), dtype=self.dtype)
        kwargs = self._segment_kwargs(options)
        for tile in self.planner.tiles():
            with tracer.span("tile", index=tile.index,
                             tiles=self.planner.n_tiles,
                             points=tile.n_points) as span:
                segment = self.segment(tile, tracer)
                span.set(bytes=int(segment.nbytes))
                block = segment.execute_batch(coerced, tracer=tracer,
                                              **kwargs)
                out[:, tile.start:tile.stop] = \
                    block.reshape(len(frames), tile.n_points)
        return out.reshape((len(frames), *self.grid_shape))
