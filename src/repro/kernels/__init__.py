"""repro.kernels: the unified low-level beamforming kernel layer.

Every path that *consumes* delays — the classic per-scanline loop in
:mod:`repro.beamformer.das`, the ``reference``/``vectorized``/``sharded``
execution backends in :mod:`repro.runtime.backends`, and the batched
multi-frame streaming path — executes through this package, so a speedup
landed here (a dtype policy, a better gather, one day a GPU kernel) reaches
every entry point at once.

* :mod:`repro.kernels.ops` — the three primitive kernels
  (:func:`gather_interp`, :func:`apply_weights`, :func:`accumulate`), the
  precompiled :class:`GatherIndex` addressing and the uncompiled
  :func:`delay_and_sum` composition.
* :mod:`repro.kernels.plan` — :class:`BeamformingPlan`, a frozen artifact
  compiled once per ``(system, architecture, apodization, interpolation,
  precision)`` and executed per frame / per row block / per batch.
* :mod:`repro.kernels.precision` — the :class:`Precision` dtype policy
  (``float64`` exact / ``float32`` fast) with pinned equivalence
  tolerances.
* :mod:`repro.kernels.quantized` — the bit-true fixed-point execution
  mode: :class:`QuantizationSpec` (per-stage Q-formats + rounding/overflow
  policy), :class:`QuantizedPlan` and the uncompiled
  :func:`quantized_delay_and_sum`, modelling the paper's hardware datapath
  exactly as :mod:`repro.fixedpoint` does.
* :mod:`repro.kernels.compiled` — the fused Numba-jitted datapath:
  :class:`CompiledPlan` executes the same plan tensors in a single
  gather/weight/accumulate pass per focal point, ``prange``-parallel over
  voxel blocks.  Optional: importable (and introspectable) without numba,
  but building a plan raises :class:`BackendUnavailable` unless numba is
  installed.
* :mod:`repro.kernels.tiling` — memory-budgeted tiled execution:
  :class:`TilePlanner` splits any grid into budget-sized :class:`Tile`
  ranges from per-point plan cost, and :class:`TiledPlan` streams per-tile
  segment plans (NumPy, quantized or compiled) through a byte-budgeted
  :class:`repro.runtime.cache.PlanCache` — the software analogue of the
  paper's on-the-fly delay generation (see ``docs/memory.md``).
"""

from .compiled import (
    BackendUnavailable,
    CompiledOptions,
    CompiledPlan,
    compile_compiled_plan,
    numba_available,
)
from .ops import (
    GatherIndex,
    accumulate,
    apply_weights,
    build_gather_index,
    delay_and_sum,
    gather_interp,
)
from .plan import BeamformingPlan, compile_plan, plan_key, plan_storage_bytes
from .precision import TOLERANCES, Precision, Tolerance, resolve_precision
from .quantized import (
    QuantizationSpec,
    QuantizedPlan,
    compile_quantized_plan,
    parse_qformat,
    quantized_delay_and_sum,
)
from .tiling import Tile, TiledPlan, TilePlanner, parse_memory_budget

__all__ = [
    "BackendUnavailable",
    "BeamformingPlan",
    "CompiledOptions",
    "CompiledPlan",
    "GatherIndex",
    "Precision",
    "QuantizationSpec",
    "QuantizedPlan",
    "TOLERANCES",
    "Tile",
    "TilePlanner",
    "TiledPlan",
    "Tolerance",
    "accumulate",
    "apply_weights",
    "build_gather_index",
    "compile_compiled_plan",
    "compile_plan",
    "compile_quantized_plan",
    "delay_and_sum",
    "gather_interp",
    "numba_available",
    "parse_memory_budget",
    "parse_qformat",
    "plan_key",
    "plan_storage_bytes",
    "quantized_delay_and_sum",
    "resolve_precision",
]
