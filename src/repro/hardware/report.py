"""Table II generation: architecture comparison on a single FPGA.

Combines the device description, the resource cost models, the structural
block model and the throughput/bandwidth models into per-architecture rows
matching the columns of Table II of the paper:

    LUTs | Registers | BRAM | Clock | Off-chip DRAM BW | Inaccuracy |
    Throughput | Frame rate | Supported channels

Accuracy figures come from :mod:`repro.analysis` (they are properties of the
algorithms, not of the hardware) and can be attached to the rows by the
experiment harness; the hardware-only part of the row is computed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemConfig
from ..fixedpoint.format import tablesteer_formats
from .architecture import BlockArray, BlockGeometry
from .device import FpgaDevice, virtex7_xc7vx1140t
from .resources import (
    FullTableBaseline,
    ResourceDemand,
    TableFreeCostModel,
    TableSteerCostModel,
)
from .timing import (
    tablefree_throughput,
    tablesteer_dram_bandwidth,
    tablesteer_throughput,
)


@dataclass
class ArchitectureRow:
    """One row of the Table II comparison."""

    name: str
    lut_utilization: float
    register_utilization: float
    bram_utilization: float
    clock_hz: float
    offchip_bandwidth_bytes_per_second: float
    delay_rate: float
    frame_rate: float
    supported_channels: tuple[int, int]
    mean_abs_error_samples: float | None = None
    max_abs_error_samples: float | None = None
    notes: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """Row as a plain dictionary (used by benchmarks and examples)."""
        return {
            "architecture": self.name,
            "luts_pct": round(100 * self.lut_utilization, 1),
            "registers_pct": round(100 * self.register_utilization, 1),
            "bram_pct": round(100 * self.bram_utilization, 1),
            "clock_mhz": round(self.clock_hz / 1e6, 1),
            "dram_gb_per_s": round(self.offchip_bandwidth_bytes_per_second / 1e9, 2),
            "throughput_tdelays_per_s": round(self.delay_rate / 1e12, 2),
            "frame_rate_fps": round(self.frame_rate, 1),
            "channels": f"{self.supported_channels[0]}x{self.supported_channels[1]}",
            "mean_abs_error_samples": self.mean_abs_error_samples,
            "max_abs_error_samples": self.max_abs_error_samples,
        }


def _utilization(device: FpgaDevice, demand: ResourceDemand) -> dict[str, float]:
    return device.utilization(luts=demand.luts, registers=demand.registers,
                              bram_bits=demand.bram_bits,
                              dsp_slices=demand.dsp_slices)


def tablefree_row(system: SystemConfig,
                  device: FpgaDevice | None = None,
                  cost_model: TableFreeCostModel | None = None,
                  fit_to_device: bool = True) -> ArchitectureRow:
    """Table II row for the TABLEFREE architecture.

    With ``fit_to_device=True`` (the paper's normalisation) the number of
    delay units is the largest that fits the device, which determines the
    supported channel count; the frame rate follows from the clock alone.
    """
    device = device or virtex7_xc7vx1140t()
    cost_model = cost_model or TableFreeCostModel()
    if fit_to_device:
        side = cost_model.max_square_aperture(device.luts)
        n_units = side * side
    else:
        side = system.transducer.elements_x
        n_units = system.transducer.element_count
    demand = cost_model.demand(n_units)
    utilization = _utilization(device, demand)
    throughput = tablefree_throughput(
        system, n_units=system.transducer.element_count,
        clock_hz=cost_model.achievable_clock_hz)
    return ArchitectureRow(
        name="TABLEFREE",
        lut_utilization=min(utilization["luts"], 1.0),
        register_utilization=utilization["registers"],
        bram_utilization=utilization["bram"],
        clock_hz=cost_model.achievable_clock_hz,
        offchip_bandwidth_bytes_per_second=0.0,
        delay_rate=throughput.delay_rate,
        frame_rate=throughput.achievable_frame_rate,
        supported_channels=(side, side),
        notes={"n_units_fitted": float(n_units),
               "luts_demanded": demand.luts},
    )


def tablesteer_row(system: SystemConfig, total_bits: int,
                   device: FpgaDevice | None = None,
                   cost_model: TableSteerCostModel | None = None,
                   n_blocks: int = 128,
                   geometry: BlockGeometry | None = None,
                   reference_table_entries: int | None = None,
                   correction_value_count: int | None = None) -> ArchitectureRow:
    """Table II row for a TABLESTEER design point of the given bit width."""
    device = device or virtex7_xc7vx1140t()
    cost_model = cost_model or TableSteerCostModel()
    geometry = geometry or BlockGeometry(word_bits=total_bits)
    ref_fmt, corr_fmt = tablesteer_formats(total_bits)

    if reference_table_entries is None:
        # One quadrant of the element grid, all depths (2.5e6 for the paper).
        ex = system.transducer.elements_x
        ey = system.transducer.elements_y
        reference_table_entries = ((ex + 1) // 2) * ((ey + 1) // 2) * system.volume.n_depth
    if correction_value_count is None:
        # Separable corrections with cos(phi) symmetry (832e3 for the paper).
        correction_value_count = (system.transducer.elements_x
                                  * system.volume.n_theta
                                  * ((system.volume.n_phi + 1) // 2)
                                  + system.transducer.elements_y
                                  * system.volume.n_phi)

    correction_bits = correction_value_count * corr_fmt.total_bits
    # On-chip BRAM allocation: the correction memories are read through the
    # BRAMs' native 18-bit-wide ports regardless of the stored precision, so
    # the occupied block capacity is counted at 18 bits per value.  This is
    # why the paper reports the same 25 % BRAM figure for both the 14-bit and
    # the 18-bit design points.
    correction_bram_bits = correction_value_count * 18
    demand = cost_model.demand(bits=total_bits, n_blocks=n_blocks,
                               nx=geometry.nx, ny=geometry.ny,
                               correction_storage_bits=correction_bram_bits)
    utilization = _utilization(device, demand)
    array = BlockArray(n_blocks=n_blocks, geometry=geometry)
    throughput = tablesteer_throughput(
        system, n_blocks=n_blocks,
        delays_per_block_per_cycle=geometry.delays_per_cycle,
        clock_hz=cost_model.achievable_clock_hz)
    bandwidth = tablesteer_dram_bandwidth(
        system, table_entries=reference_table_entries,
        entry_bits=ref_fmt.total_bits)
    return ArchitectureRow(
        name=f"TABLESTEER-{total_bits}b",
        lut_utilization=min(utilization["luts"], 1.0),
        register_utilization=utilization["registers"],
        bram_utilization=utilization["bram"],
        clock_hz=cost_model.achievable_clock_hz,
        offchip_bandwidth_bytes_per_second=bandwidth,
        delay_rate=throughput.delay_rate,
        frame_rate=throughput.achievable_frame_rate,
        supported_channels=(system.transducer.elements_x,
                            system.transducer.elements_y),
        notes={
            "reference_table_entries": float(reference_table_entries),
            "correction_values": float(correction_value_count),
            "streaming_bram_bits": float(array.total_bram_bits),
            "correction_bram_bits": float(correction_bits),
            "luts_demanded": demand.luts,
        },
    )


def full_table_row(system: SystemConfig,
                   baseline: FullTableBaseline | None = None) -> dict[str, float]:
    """The naive precomputed-table strawman of Section II (not in Table II).

    Returned as a plain dictionary because it has no meaningful FPGA
    utilisation — the point is that its storage and bandwidth are absurd.
    """
    baseline = baseline or FullTableBaseline()
    return {
        "coefficients": float(baseline.coefficient_count(system)),
        "storage_gigabytes": baseline.storage_bytes(system) / 1e9,
        "bandwidth_terabytes_per_second":
            baseline.access_bandwidth_bytes_per_second(system) / 1e12,
        "delay_rate_per_second": baseline.delay_rate_per_second(system),
    }


def table2(system: SystemConfig,
           device: FpgaDevice | None = None) -> list[ArchitectureRow]:
    """All rows of Table II for a system configuration."""
    device = device or virtex7_xc7vx1140t()
    return [
        tablefree_row(system, device=device),
        tablesteer_row(system, total_bits=14, device=device),
        tablesteer_row(system, total_bits=18, device=device),
    ]


def format_table2(rows: list[ArchitectureRow]) -> str:
    """Render Table II rows as an aligned text table for examples/benchmarks."""
    headers = ["Architecture", "LUTs", "Regs", "BRAM", "Clock",
               "DRAM BW", "Throughput", "Frame rate", "Channels"]
    lines = []
    data = []
    for row in rows:
        d = row.as_dict()
        data.append([
            d["architecture"],
            f"{d['luts_pct']:.0f}%",
            f"{d['registers_pct']:.0f}%",
            f"{d['bram_pct']:.0f}%",
            f"{d['clock_mhz']:.0f} MHz",
            "none" if d["dram_gb_per_s"] == 0 else f"{d['dram_gb_per_s']:.1f} GB/s",
            f"{d['throughput_tdelays_per_s']:.2f} Tdelays/s",
            f"{d['frame_rate_fps']:.1f} fps",
            d["channels"],
        ])
    widths = [max(len(headers[i]), max(len(row[i]) for row in data))
              for i in range(len(headers))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in data:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
