"""Throughput, frame-rate and bandwidth models.

The end goal of both architectures is to sustain the delay-value throughput
realtime 3D imaging needs (~2.5e12 delays/s for 15 volumes/s, Section II-C).
This module converts structural parameters (units/blocks, delays per cycle,
clock) into delay throughput and achievable volume rate, and estimates the
off-chip traffic of the TABLESTEER streaming scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig


def required_delay_rate(system: SystemConfig) -> float:
    """Delay values per second needed for realtime imaging (Section II-C)."""
    return float(system.theoretical_delay_count * system.beamformer.frame_rate)


def delays_per_volume(system: SystemConfig) -> float:
    """Delay values needed to reconstruct a single volume."""
    return float(system.theoretical_delay_count)


@dataclass(frozen=True)
class ThroughputReport:
    """Throughput and volume-rate figures for one architecture design point."""

    architecture: str
    clock_hz: float
    delays_per_cycle: float
    delay_rate: float
    required_rate: float
    achievable_frame_rate: float
    target_frame_rate: float

    @property
    def meets_target(self) -> bool:
        """True if the design sustains the target volume rate."""
        return self.achievable_frame_rate >= self.target_frame_rate - 1e-9

    @property
    def headroom(self) -> float:
        """Ratio of delivered to required delay rate."""
        if self.required_rate == 0:
            return float("inf")
        return self.delay_rate / self.required_rate


def tablefree_throughput(system: SystemConfig, n_units: int,
                         clock_hz: float,
                         cycles_per_point_overhead: float = 1.3) -> ThroughputReport:
    """Throughput of a TABLEFREE array with one delay unit per channel.

    All units operate in lock-step on the same focal point, so a frame takes
    ``focal_points * overhead`` cycles regardless of the unit count; the
    delay rate scales with the number of instantiated units.  The default
    overhead factor (pipeline fill, nappe turnaround) is calibrated to the
    paper's "about 1 fps per 20 MHz" rule, which gives 7.8 fps at 167 MHz.
    """
    points = system.volume.focal_point_count
    cycles_per_frame = points * cycles_per_point_overhead
    frame_rate = clock_hz / cycles_per_frame
    delay_rate = n_units * clock_hz
    return ThroughputReport(
        architecture="TABLEFREE",
        clock_hz=clock_hz,
        delays_per_cycle=float(n_units),
        delay_rate=float(delay_rate),
        required_rate=required_delay_rate(system),
        achievable_frame_rate=float(frame_rate),
        target_frame_rate=system.beamformer.frame_rate,
    )


def tablesteer_throughput(system: SystemConfig, n_blocks: int,
                          delays_per_block_per_cycle: int,
                          clock_hz: float) -> ThroughputReport:
    """Throughput of the TABLESTEER block array (Fig. 4).

    Each block produces ``delays_per_block_per_cycle`` steered delays per
    clock (128 in the paper: 8 x 16 correction permutations); the volume rate
    follows from dividing the aggregate delay rate by the delays needed per
    volume.
    """
    delays_per_cycle = n_blocks * delays_per_block_per_cycle
    delay_rate = delays_per_cycle * clock_hz
    frame_rate = delay_rate / delays_per_volume(system)
    return ThroughputReport(
        architecture="TABLESTEER",
        clock_hz=clock_hz,
        delays_per_cycle=float(delays_per_cycle),
        delay_rate=float(delay_rate),
        required_rate=required_delay_rate(system),
        achievable_frame_rate=float(frame_rate),
        target_frame_rate=system.beamformer.frame_rate,
    )


def tablesteer_dram_bandwidth(system: SystemConfig, table_entries: int,
                              entry_bits: int,
                              target_frame_rate: float | None = None) -> float:
    """Unidirectional DRAM bandwidth of the table-streaming scheme [B/s].

    The full (pruned) reference table is re-fetched once per insonification;
    at 64 insonifications per volume and 15 volumes/s that is 960 fetches/s,
    which for the 45 Mb 18-bit table gives ~5.4 GB/s (the paper quotes
    5.3 GB/s).
    """
    if target_frame_rate is None:
        target_frame_rate = system.beamformer.frame_rate
    insonifications_per_second = (target_frame_rate
                                  * system.beamformer.insonifications_per_volume)
    table_bytes = table_entries * entry_bits / 8.0
    return float(table_bytes * insonifications_per_second)


def frames_per_second_per_mhz(system: SystemConfig,
                              cycles_per_point_overhead: float = 1.3) -> float:
    """TABLEFREE volume rate per MHz of clock (the paper's "1 fps per 20 MHz")."""
    points = system.volume.focal_point_count
    return 1.0e6 / (points * cycles_per_point_overhead)
