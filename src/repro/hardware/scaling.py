"""Design-space exploration around the paper's two architectures.

The paper evaluates one design point per architecture on one device and then
argues informally about scaling ("twice the LUT count", "10-15 fps should be
possible in the upcoming 16-nm family", "1 fps per 20 MHz").  This module
turns those arguments into explicit sweeps:

* :func:`tablefree_frequency_sweep` — frame rate and target feasibility as a
  function of the achievable clock;
* :func:`tablefree_device_sweep` — supported aperture as a function of the
  device LUT capacity (Virtex-7, UltraScale, and hypothetical scaling);
* :func:`tablesteer_block_sweep` — frame rate and resource cost as a function
  of the number of replicated Fig. 4 blocks;
* :func:`aperture_sweep` — how both architectures' costs scale when the
  probe grows from 32x32 to 128x128 elements;
* :func:`find_minimum_design` — smallest TABLESTEER block count (and the
  implied resources) that reaches a requested volume rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from .device import FpgaDevice, virtex7_xc7vx1140t
from .resources import TableFreeCostModel, TableSteerCostModel
from .timing import tablefree_throughput, tablesteer_throughput


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration of an architecture sweep."""

    label: str
    frame_rate: float
    meets_target: bool
    lut_fraction: float
    register_fraction: float
    bram_fraction: float
    parameters: dict[str, float]

    def as_dict(self) -> dict[str, object]:
        """Design point as a plain dictionary."""
        return {
            "label": self.label,
            "frame_rate": self.frame_rate,
            "meets_target": self.meets_target,
            "lut_fraction": self.lut_fraction,
            "register_fraction": self.register_fraction,
            "bram_fraction": self.bram_fraction,
            **self.parameters,
        }


def tablefree_frequency_sweep(system: SystemConfig,
                              clocks_hz: tuple[float, ...] = (
                                  100e6, 125e6, 167e6, 200e6, 250e6, 330e6, 400e6),
                              ) -> list[DesignPoint]:
    """TABLEFREE volume rate versus clock frequency (the "1 fps / 20 MHz" rule)."""
    model = TableFreeCostModel()
    device = virtex7_xc7vx1140t()
    demand = model.demand(system.transducer.element_count)
    points = []
    for clock in clocks_hz:
        report = tablefree_throughput(system,
                                      n_units=system.transducer.element_count,
                                      clock_hz=clock)
        points.append(DesignPoint(
            label=f"TABLEFREE@{clock / 1e6:.0f}MHz",
            frame_rate=report.achievable_frame_rate,
            meets_target=report.meets_target,
            lut_fraction=demand.luts / device.luts,
            register_fraction=demand.registers / device.registers,
            bram_fraction=0.0,
            parameters={"clock_mhz": clock / 1e6,
                        "units": float(system.transducer.element_count)},
        ))
    return points


def tablefree_device_sweep(system: SystemConfig,
                           lut_scaling: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
                           base_device: FpgaDevice | None = None) -> list[DesignPoint]:
    """Supported aperture versus device size (process-node scaling argument)."""
    base_device = base_device or virtex7_xc7vx1140t()
    model = TableFreeCostModel()
    points = []
    for factor in lut_scaling:
        luts = base_device.luts * factor
        side = model.max_square_aperture(luts)
        demand = model.demand(side * side)
        report = tablefree_throughput(system, n_units=side * side,
                                      clock_hz=model.achievable_clock_hz)
        points.append(DesignPoint(
            label=f"{factor:.1f}x {base_device.name}",
            frame_rate=report.achievable_frame_rate,
            meets_target=(side >= system.transducer.elements_x
                          and report.meets_target),
            lut_fraction=demand.luts / luts,
            register_fraction=demand.registers / (base_device.registers * factor),
            bram_fraction=0.0,
            parameters={"lut_scaling": factor, "supported_side": float(side)},
        ))
    return points


def tablesteer_block_sweep(system: SystemConfig,
                           block_counts: tuple[int, ...] = (16, 32, 64, 96, 128, 192, 256),
                           total_bits: int = 18,
                           device: FpgaDevice | None = None) -> list[DesignPoint]:
    """TABLESTEER volume rate and resources versus the number of Fig. 4 blocks."""
    device = device or virtex7_xc7vx1140t()
    model = TableSteerCostModel()
    correction_values = (system.transducer.elements_x * system.volume.n_theta
                         * ((system.volume.n_phi + 1) // 2)
                         + system.transducer.elements_y * system.volume.n_phi)
    points = []
    for n_blocks in block_counts:
        demand = model.demand(total_bits, n_blocks, 8, 16,
                              correction_storage_bits=correction_values * 18)
        report = tablesteer_throughput(system, n_blocks=n_blocks,
                                       delays_per_block_per_cycle=128,
                                       clock_hz=model.achievable_clock_hz)
        points.append(DesignPoint(
            label=f"TABLESTEER-{total_bits}b x{n_blocks}",
            frame_rate=report.achievable_frame_rate,
            meets_target=report.meets_target,
            lut_fraction=demand.luts / device.luts,
            register_fraction=demand.registers / device.registers,
            bram_fraction=demand.bram_bits / device.bram_bits,
            parameters={"blocks": float(n_blocks), "bits": float(total_bits)},
        ))
    return points


def aperture_sweep(system: SystemConfig,
                   sides: tuple[int, ...] = (32, 48, 64, 80, 100, 128),
                   device: FpgaDevice | None = None) -> list[dict[str, float]]:
    """Cost of both architectures as the probe aperture grows.

    Returns one row per aperture side with the TABLEFREE LUT demand (one unit
    per element) and the TABLESTEER reference-table size (which scales with
    the element count but not with the delay-unit count).
    """
    device = device or virtex7_xc7vx1140t()
    free_model = TableFreeCostModel()
    rows = []
    for side in sides:
        scaled = system.with_transducer(elements_x=side, elements_y=side)
        free_demand = free_model.demand(side * side)
        table_entries = ((side + 1) // 2) ** 2 * scaled.volume.n_depth
        rows.append({
            "side": float(side),
            "tablefree_lut_fraction": free_demand.luts / device.luts,
            "tablefree_fits": float(free_demand.luts <= device.luts),
            "tablesteer_table_megabits_18b": table_entries * 18 / 1e6,
            "tablesteer_table_fits_bram": float(
                table_entries * 18 <= device.bram_bits),
            "delay_rate_required": scaled.delay_throughput_required,
        })
    return rows


def find_minimum_design(system: SystemConfig, target_frame_rate: float,
                        total_bits: int = 18,
                        max_blocks: int = 1024) -> DesignPoint | None:
    """Smallest TABLESTEER block count reaching a requested volume rate.

    Returns ``None`` if no block count up to ``max_blocks`` reaches the target
    (e.g. unrealistically high rates).
    """
    model = TableSteerCostModel()
    device = virtex7_xc7vx1140t()
    target_system = system.with_beamformer(frame_rate=target_frame_rate)
    for n_blocks in range(1, max_blocks + 1):
        report = tablesteer_throughput(target_system, n_blocks=n_blocks,
                                       delays_per_block_per_cycle=128,
                                       clock_hz=model.achievable_clock_hz)
        if report.meets_target:
            demand = model.demand(total_bits, n_blocks, 8, 16,
                                  correction_storage_bits=0)
            return DesignPoint(
                label=f"TABLESTEER-{total_bits}b x{n_blocks}",
                frame_rate=report.achievable_frame_rate,
                meets_target=True,
                lut_fraction=demand.luts / device.luts,
                register_fraction=demand.registers / device.registers,
                bram_fraction=demand.bram_bits / device.bram_bits,
                parameters={"blocks": float(n_blocks),
                            "target_frame_rate": target_frame_rate},
            )
    return None
