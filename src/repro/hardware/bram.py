"""BRAM streaming model for the TABLESTEER reference-table cache.

Section V-B proposes keeping only a sliding window of the reference delay
table on-chip: the nappe-by-nappe beamformer consumes one constant-depth
slice of the table at a time, so the on-chip BRAM can be managed as a
circular buffer whose slices are refilled from external DRAM while older
slices are being consumed.  Delay values are *staggered* across the 128
BRAM banks so all banks can be read in parallel.

This module provides a cycle-approximate model of that circular buffer: it
tracks fill level, refill traffic and whether the consumer ever stalls for a
given (clock, DRAM bandwidth, consumption rate) triple.  It is used by
experiment E7 to show the 2.3 Mb + 14.3 Mb on-chip / 5.3 GB/s off-chip
design point is self-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BramBankSpec:
    """Geometry of one BRAM bank used by a delay computation block."""

    word_bits: int = 18
    words: int = 1024

    @property
    def capacity_bits(self) -> int:
        """Capacity of the bank in bits."""
        return self.word_bits * self.words


@dataclass(frozen=True)
class StreamingPlan:
    """Static description of the reference-table streaming scheme."""

    n_banks: int
    bank: BramBankSpec
    table_entries: int
    entry_bits: int
    refills_per_second: float

    @property
    def on_chip_bits(self) -> int:
        """Total on-chip buffer capacity (the paper's 2.3 Mb figure)."""
        return self.n_banks * self.bank.capacity_bits

    @property
    def table_bits(self) -> int:
        """Size of the complete reference table in bits."""
        return self.table_entries * self.entry_bits

    @property
    def dram_bandwidth_bytes_per_second(self) -> float:
        """Unidirectional DRAM read bandwidth needed to sustain the refills."""
        return self.table_bits / 8.0 * self.refills_per_second

    @property
    def chunks_per_table(self) -> int:
        """Number of on-chip-buffer-sized chunks the full table divides into."""
        if self.on_chip_bits == 0:
            return 0
        return int(np.ceil(self.table_bits / self.on_chip_bits))


def make_streaming_plan(table_entries: int, entry_bits: int,
                        insonifications_per_second: float,
                        n_banks: int = 128,
                        bank_words: int = 1024) -> StreamingPlan:
    """Build the streaming plan the paper describes for the paper system.

    The full table must be re-fetched once per insonification (each
    insonification sweeps all depths), so the refill rate equals the
    insonification rate: 64 insonifications/volume x 15 volumes/s = 960/s.
    """
    bank = BramBankSpec(word_bits=entry_bits, words=bank_words)
    return StreamingPlan(n_banks=n_banks, bank=bank,
                         table_entries=table_entries, entry_bits=entry_bits,
                         refills_per_second=insonifications_per_second)


@dataclass
class CircularBufferSimulator:
    """Discrete-time simulation of the circular-buffer refill process.

    The consumer drains ``consume_words_per_cycle`` words per clock cycle
    while the DRAM interface refills ``refill_words_per_cycle`` words per
    cycle.  The simulation reports whether the consumer ever finds the buffer
    empty (a stall) and the minimum fill margin observed — the "ample margin
    of 1k cycles of latency" claim of Section V-B corresponds to a large
    positive margin.
    """

    capacity_words: int
    consume_words_per_cycle: float
    refill_words_per_cycle: float
    initial_fill_words: int | None = None

    def run(self, n_cycles: int, refill_latency_cycles: int = 0) -> dict[str, float]:
        """Simulate ``n_cycles`` of streaming and return fill statistics."""
        if self.capacity_words <= 0:
            raise ValueError("capacity must be positive")
        fill = float(self.capacity_words if self.initial_fill_words is None
                     else self.initial_fill_words)
        fill = min(fill, float(self.capacity_words))
        min_fill = fill
        stalls = 0
        pending: list[tuple[int, float]] = []
        for cycle in range(n_cycles):
            # Issue this cycle's refill; it lands after the DRAM latency.
            pending.append((cycle + refill_latency_cycles,
                            self.refill_words_per_cycle))
            arrived = [amount for due, amount in pending if due <= cycle]
            pending = [(due, amount) for due, amount in pending if due > cycle]
            fill = min(fill + sum(arrived), float(self.capacity_words))
            if fill >= self.consume_words_per_cycle:
                fill -= self.consume_words_per_cycle
            else:
                stalls += 1
            min_fill = min(min_fill, fill)
        return {
            "stall_cycles": float(stalls),
            "min_fill_words": float(min_fill),
            "final_fill_words": float(fill),
            "stall_fraction": stalls / n_cycles if n_cycles else 0.0,
        }


def staggered_bank_assignment(n_depths: int, n_banks: int) -> np.ndarray:
    """Assign each depth slice to a BRAM bank in a staggered (round-robin) way.

    Staggering consecutive depths across different banks lets a beamformer
    that needs delay samples for consecutive nappes read all banks in
    parallel (Section V-B).  Returns an array of bank indices per depth.
    """
    if n_banks < 1:
        raise ValueError("need at least one bank")
    return np.arange(n_depths) % n_banks


def parallel_read_conflicts(assignment: np.ndarray, window: int) -> int:
    """Count bank conflicts when reading ``window`` consecutive depths at once.

    A conflict occurs when two depths within the window map to the same bank;
    with round-robin staggering and ``window <= n_banks`` this is zero, which
    is the property the architecture needs.
    """
    assignment = np.asarray(assignment)
    conflicts = 0
    for start in range(0, max(1, len(assignment) - window + 1)):
        banks = assignment[start:start + window]
        conflicts += len(banks) - len(np.unique(banks))
    return int(conflicts)
