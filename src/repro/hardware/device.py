"""FPGA device descriptions.

The paper targets the largest Xilinx Virtex-7, the XC7VX1140T (speed grade
-2), and projects the TABLEFREE architecture onto the then-upcoming
UltraScale parts with roughly twice the LUT count.  These device descriptions
carry the resource capacities the analytical cost models are measured
against; they replace the Vivado synthesis backend used by the authors (see
DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FpgaDevice:
    """Capacity description of an FPGA device."""

    name: str
    luts: int
    """Number of 6-input LUTs."""

    registers: int
    """Number of flip-flops."""

    bram_bits: int
    """Total Block RAM capacity in bits."""

    bram_blocks: int
    """Number of 36 Kb BRAM blocks."""

    dsp_slices: int
    """Number of DSP48 slices."""

    max_clock_hz: float
    """Practical upper bound on the datapath clock for this family [Hz]."""

    @property
    def bram_megabits(self) -> float:
        """Block RAM capacity in megabits."""
        return self.bram_bits / 1e6

    def utilization(self, luts: float = 0, registers: float = 0,
                    bram_bits: float = 0, dsp_slices: float = 0) -> dict[str, float]:
        """Fractional utilisation of each resource for a given demand."""
        return {
            "luts": luts / self.luts,
            "registers": registers / self.registers,
            "bram": bram_bits / self.bram_bits,
            "dsp": dsp_slices / self.dsp_slices if self.dsp_slices else 0.0,
        }

    def fits(self, luts: float = 0, registers: float = 0,
             bram_bits: float = 0, dsp_slices: float = 0) -> bool:
        """True if the demand fits within the device."""
        used = self.utilization(luts=luts, registers=registers,
                                bram_bits=bram_bits, dsp_slices=dsp_slices)
        return all(fraction <= 1.0 + 1e-9 for fraction in used.values())


def virtex7_xc7vx1140t() -> FpgaDevice:
    """Xilinx Virtex-7 XC7VX1140T (the paper's evaluation target).

    712k LUTs, 1.42 M flip-flops, 1880 x 36 Kb BRAM (~67.7 Mb), 3360 DSPs.
    """
    return FpgaDevice(
        name="XC7VX1140T-2",
        luts=712_000,
        registers=1_424_000,
        bram_bits=int(67.7e6),
        bram_blocks=1880,
        dsp_slices=3360,
        max_clock_hz=400e6,
    )


def virtex_ultrascale_projection() -> FpgaDevice:
    """Projection of the 20 nm Virtex UltraScale family used in Section VI-B.

    The paper notes UltraScale devices carry roughly twice the LUT count of
    Virtex-7, which is what lets it project 10-15 fps for TABLEFREE with
    100x100 channels.
    """
    base = virtex7_xc7vx1140t()
    return FpgaDevice(
        name="Virtex-UltraScale (projected)",
        luts=base.luts * 2,
        registers=base.registers * 2,
        bram_bits=int(base.bram_bits * 1.9),
        bram_blocks=int(base.bram_blocks * 1.9),
        dsp_slices=base.dsp_slices * 2,
        max_clock_hz=500e6,
    )
