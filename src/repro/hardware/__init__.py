"""FPGA hardware modelling: devices, resource/timing/bandwidth models, Table II."""

from .architecture import BlockArray, BlockGeometry, DelayComputeBlock, paper_block_array
from .bram import (
    BramBankSpec,
    CircularBufferSimulator,
    StreamingPlan,
    make_streaming_plan,
    parallel_read_conflicts,
    staggered_bank_assignment,
)
from .device import FpgaDevice, virtex7_xc7vx1140t, virtex_ultrascale_projection
from .report import (
    ArchitectureRow,
    format_table2,
    full_table_row,
    table2,
    tablefree_row,
    tablesteer_row,
)
from .scaling import (
    DesignPoint,
    aperture_sweep,
    find_minimum_design,
    tablefree_device_sweep,
    tablefree_frequency_sweep,
    tablesteer_block_sweep,
)
from .resources import (
    FullTableBaseline,
    ResourceDemand,
    TableFreeCostModel,
    TableSteerCostModel,
)
from .timing import (
    ThroughputReport,
    delays_per_volume,
    frames_per_second_per_mhz,
    required_delay_rate,
    tablefree_throughput,
    tablesteer_dram_bandwidth,
    tablesteer_throughput,
)

__all__ = [
    "FpgaDevice",
    "virtex7_xc7vx1140t",
    "virtex_ultrascale_projection",
    "ResourceDemand",
    "TableFreeCostModel",
    "TableSteerCostModel",
    "FullTableBaseline",
    "BramBankSpec",
    "StreamingPlan",
    "make_streaming_plan",
    "CircularBufferSimulator",
    "staggered_bank_assignment",
    "parallel_read_conflicts",
    "BlockGeometry",
    "DelayComputeBlock",
    "BlockArray",
    "paper_block_array",
    "ThroughputReport",
    "required_delay_rate",
    "delays_per_volume",
    "tablefree_throughput",
    "tablesteer_throughput",
    "tablesteer_dram_bandwidth",
    "frames_per_second_per_mhz",
    "DesignPoint",
    "tablefree_frequency_sweep",
    "tablefree_device_sweep",
    "tablesteer_block_sweep",
    "aperture_sweep",
    "find_minimum_design",
    "ArchitectureRow",
    "tablefree_row",
    "tablesteer_row",
    "full_table_row",
    "table2",
    "format_table2",
]
