"""Structural model of the TABLESTEER delay computation block (Fig. 4).

The block is memory-centric: one BRAM bank streams reference delay samples
(one per cycle); a first rank of ``nx`` adders applies the x-direction
steering corrections, a second rank of ``nx * ny`` adders applies the
y-direction corrections and rounds, so each cycle the block emits the delays
of ``nx * ny`` steered lines of sight for the depth sample it just read.
Replicating the block ``n_blocks`` times (128 in the paper) and staggering
depth samples across the banks yields the aggregate throughput.

The :class:`DelayComputeBlock` here is a *functional* model: it reproduces the
exact dataflow (BRAM word -> x-adders -> y-adders -> rounding) in NumPy so
that tests can verify the hardware ordering produces bit-identical results to
the direct TABLESTEER computation, and so the structural counts (adders,
BRAM words, delays per cycle) used by the resource/throughput models are
derived from one place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fixedpoint.format import QFormat
from ..fixedpoint.quantize import quantize


@dataclass(frozen=True)
class BlockGeometry:
    """Structural parameters of one delay computation block."""

    nx: int = 8
    """Number of x-direction correction permutations applied per cycle."""

    ny: int = 16
    """Number of y-direction correction permutations applied per cycle."""

    bram_words: int = 1024
    """Depth samples held in the block's BRAM bank."""

    word_bits: int = 18
    """Width of the BRAM words (and of the adder datapath)."""

    @property
    def adder_count(self) -> int:
        """Adders in the block: ``nx`` x-stage plus ``nx * ny`` y-stage (136 in the paper)."""
        return self.nx + self.nx * self.ny

    @property
    def rounding_adder_count(self) -> int:
        """Adders that also round to an integer index (the ``nx * ny`` outputs)."""
        return self.nx * self.ny

    @property
    def delays_per_cycle(self) -> int:
        """Steered delay samples the block emits per clock."""
        return self.nx * self.ny

    @property
    def bram_bits(self) -> int:
        """BRAM capacity of the block."""
        return self.bram_words * self.word_bits


@dataclass
class DelayComputeBlock:
    """Functional model of one Fig. 4 block.

    Parameters
    ----------
    geometry:
        Structural parameters (``nx`` x ``ny`` corrections, BRAM size).
    reference_format, correction_format:
        Fixed-point formats of the BRAM contents and the correction
        coefficients; pass ``None`` for an un-quantised functional model.
    """

    geometry: BlockGeometry
    reference_format: QFormat | None = None
    correction_format: QFormat | None = None

    def process_cycle(self, reference_sample: float,
                      x_corrections: np.ndarray,
                      y_corrections: np.ndarray) -> np.ndarray:
        """Emit the ``nx * ny`` steered delays for one reference sample.

        ``x_corrections`` must have length ``nx`` and ``y_corrections`` length
        ``ny``; the output is an integer-index array of shape ``(nx, ny)``.
        """
        nx, ny = self.geometry.nx, self.geometry.ny
        x_corrections = np.asarray(x_corrections, dtype=np.float64)
        y_corrections = np.asarray(y_corrections, dtype=np.float64)
        if x_corrections.shape != (nx,):
            raise ValueError(f"expected {nx} x-corrections")
        if y_corrections.shape != (ny,):
            raise ValueError(f"expected {ny} y-corrections")
        reference = float(reference_sample)
        if self.reference_format is not None:
            reference = float(quantize(reference, self.reference_format))
        if self.correction_format is not None:
            x_corrections = quantize(x_corrections, self.correction_format)
            y_corrections = quantize(y_corrections, self.correction_format)
        # First adder rank: reference + x corrections.
        stage_x = reference + x_corrections               # (nx,)
        # Second adder rank: + y corrections, then round to an index.
        total = stage_x[:, None] + y_corrections[None, :]  # (nx, ny)
        return np.floor(total + 0.5).astype(np.int64)

    def process_sequence(self, reference_samples: np.ndarray,
                         x_corrections: np.ndarray,
                         y_corrections: np.ndarray) -> np.ndarray:
        """Process a stream of reference samples with fixed corrections.

        Models the paper's timing optimisation of keeping the same correction
        coefficients throughout an insonification; returns an array of shape
        ``(n_samples, nx, ny)``.
        """
        reference_samples = np.asarray(reference_samples, dtype=np.float64)
        out = np.empty((reference_samples.size, self.geometry.nx,
                        self.geometry.ny), dtype=np.int64)
        for i, sample in enumerate(reference_samples):
            out[i] = self.process_cycle(sample, x_corrections, y_corrections)
        return out


@dataclass(frozen=True)
class BlockArray:
    """An array of identical delay computation blocks (128 in the paper)."""

    n_blocks: int
    geometry: BlockGeometry

    @property
    def total_adders(self) -> int:
        """Total adders across all blocks (128 x 136 = 17408 in the paper)."""
        return self.n_blocks * self.geometry.adder_count

    @property
    def delays_per_cycle(self) -> int:
        """Aggregate steered delays produced per clock."""
        return self.n_blocks * self.geometry.delays_per_cycle

    @property
    def total_bram_bits(self) -> int:
        """Aggregate BRAM capacity of the block array (the 2.3 Mb figure)."""
        return self.n_blocks * self.geometry.bram_bits

    def peak_delay_rate(self, clock_hz: float) -> float:
        """Peak delay throughput at a given clock (3.3 Tdelays/s at 200 MHz)."""
        return float(self.delays_per_cycle) * clock_hz


def paper_block_array() -> BlockArray:
    """The design point of Section V-B: 128 blocks of 8 x 16 corrections."""
    return BlockArray(n_blocks=128, geometry=BlockGeometry())
