"""Analytical resource-cost models for the two delay architectures.

These models replace the Vivado synthesis runs of Section VI-B: each
architecture's demand for LUTs, registers, BRAM bits and off-chip bandwidth
is expressed as a function of its structural parameters (number of delay
units, adder width, BRAM banks, table sizes).  The per-primitive coefficients
are calibrated once against the utilisation percentages the paper reports for
the XC7VX1140T and then reused for every what-if experiment (smaller probes,
different bit widths, UltraScale projection), which is exactly how the
authors use their synthesis numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig


@dataclass(frozen=True)
class ResourceDemand:
    """Resource demand of one design point."""

    luts: float
    registers: float
    bram_bits: float
    dsp_slices: float = 0.0

    def scaled(self, factor: float) -> "ResourceDemand":
        """Demand multiplied by a replication factor."""
        return ResourceDemand(luts=self.luts * factor,
                              registers=self.registers * factor,
                              bram_bits=self.bram_bits * factor,
                              dsp_slices=self.dsp_slices * factor)

    def plus(self, other: "ResourceDemand") -> "ResourceDemand":
        """Sum of two demands."""
        return ResourceDemand(luts=self.luts + other.luts,
                              registers=self.registers + other.registers,
                              bram_bits=self.bram_bits + other.bram_bits,
                              dsp_slices=self.dsp_slices + other.dsp_slices)


# ---------------------------------------------------------------------------
# TABLEFREE
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TableFreeCostModel:
    """Per-delay-unit cost of the TABLEFREE datapath.

    One unit serves one transducer element and produces one delay per clock.
    The unit contains the incremental argument-update adders, the PWL
    multiply-add (mapped to LUT fabric, which is what limits the clock to
    ~167 MHz on Virtex-7) and the small c1/c0 segment LUTs.

    Default coefficients are calibrated so that the largest single-chip
    design point on the XC7VX1140T supports a 42 x 42 aperture at 100 % LUT /
    23 % register utilisation, matching Table II.
    """

    luts_per_unit: float = 400.0
    registers_per_unit: float = 186.0
    dsp_per_unit: float = 0.0
    segment_lut_bits_per_unit: float = 70.0 * (30.0 + 21.0 + 24.0)
    """c1 (30 b), c0 (21 b) and breakpoint (24 b) storage for 70 segments;
    implemented in distributed RAM, hence no BRAM demand."""

    achievable_clock_hz: float = 167.0e6
    """Post-place clock on Virtex-7 (limited by the LUT-fabric multiplier)."""

    control_overhead_luts: float = 5000.0
    """Shared sequencing/control logic independent of the unit count."""

    def unit_demand(self) -> ResourceDemand:
        """Resource demand of a single delay unit."""
        return ResourceDemand(luts=self.luts_per_unit,
                              registers=self.registers_per_unit,
                              bram_bits=0.0,
                              dsp_slices=self.dsp_per_unit)

    def demand(self, n_units: int) -> ResourceDemand:
        """Total demand of ``n_units`` delay units plus shared control."""
        total = self.unit_demand().scaled(n_units)
        return total.plus(ResourceDemand(luts=self.control_overhead_luts,
                                         registers=0.0, bram_bits=0.0))

    def max_units(self, available_luts: float) -> int:
        """Largest number of delay units that fits a LUT budget."""
        usable = max(0.0, available_luts - self.control_overhead_luts)
        return int(usable // self.luts_per_unit)

    def max_square_aperture(self, available_luts: float) -> int:
        """Largest ``n`` such that an ``n x n`` aperture fits the LUT budget.

        Table II reports 42 x 42 for the XC7VX1140T.
        """
        units = self.max_units(available_luts)
        n = int(units ** 0.5)
        return n


# ---------------------------------------------------------------------------
# TABLESTEER
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TableSteerCostModel:
    """Per-block cost of the TABLESTEER memory-centric architecture (Fig. 4).

    Each block is built around one BRAM bank holding a slice of the reference
    delay table and applies all permutations of ``nx`` x-corrections and
    ``ny`` y-corrections to the delay sample it reads each cycle, producing
    ``nx * ny`` steered delays per clock.  That requires
    ``nx + ny * nx`` adders (8 + 16*8 = 136 in the paper), of which
    ``nx * ny`` also perform the final rounding.

    Adder cost is affine in the operand width; the default coefficients are
    calibrated to reproduce the 91 % / 100 % LUT and 25 % / 30 % register
    utilisation of the 14-bit / 18-bit design points in Table II.
    """

    adder_luts_base: float = 23.4
    adder_luts_per_bit: float = 0.925
    adder_registers_base: float = 5.5
    adder_registers_per_bit: float = 1.02
    control_luts_per_block: float = 120.0
    control_registers_per_block: float = 80.0
    bram_lines_per_block: int = 1024
    achievable_clock_hz: float = 200.0e6

    def adder_luts(self, bits: int) -> float:
        """LUTs per adder at the given operand width."""
        return self.adder_luts_base + self.adder_luts_per_bit * bits

    def adder_registers(self, bits: int) -> float:
        """Flip-flops per adder at the given operand width."""
        return self.adder_registers_base + self.adder_registers_per_bit * bits

    def adders_per_block(self, nx: int, ny: int) -> int:
        """Adder count per block: ``nx`` x-stage adders plus ``nx * ny`` outputs."""
        return nx + nx * ny

    def block_demand(self, bits: int, nx: int, ny: int) -> ResourceDemand:
        """Resource demand of one delay computation block."""
        n_adders = self.adders_per_block(nx, ny)
        luts = n_adders * self.adder_luts(bits) + self.control_luts_per_block
        registers = (n_adders * self.adder_registers(bits)
                     + self.control_registers_per_block)
        bram_bits = self.bram_lines_per_block * bits
        return ResourceDemand(luts=luts, registers=registers, bram_bits=bram_bits)

    def demand(self, bits: int, n_blocks: int, nx: int, ny: int,
               correction_storage_bits: float) -> ResourceDemand:
        """Total demand: replicated blocks plus on-chip correction storage."""
        blocks = self.block_demand(bits, nx, ny).scaled(n_blocks)
        corrections = ResourceDemand(luts=0.0, registers=0.0,
                                     bram_bits=correction_storage_bits)
        return blocks.plus(corrections)

    def delays_per_cycle(self, n_blocks: int, nx: int, ny: int) -> int:
        """Steered delay samples produced per clock by ``n_blocks`` blocks."""
        return n_blocks * nx * ny


# ---------------------------------------------------------------------------
# Naive full-table baseline (Section II-B / II-C)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FullTableBaseline:
    """The strawman the paper argues against: precompute every delay.

    Storage is one coefficient per (focal point, element) pair; the access
    bandwidth is that same count per frame, times the frame rate.  The point
    of experiment E1 is that both numbers are orders of magnitude beyond any
    realistic memory system (hundreds of gigabytes, terabytes per second).
    """

    bits_per_coefficient: int = 13

    def coefficient_count(self, system: SystemConfig) -> int:
        """Number of coefficients without any optimisation (~164e9)."""
        return system.theoretical_delay_count

    def storage_bytes(self, system: SystemConfig) -> float:
        """Storage requirement in bytes."""
        return self.coefficient_count(system) * self.bits_per_coefficient / 8.0

    def access_bandwidth_bytes_per_second(self, system: SystemConfig) -> float:
        """Sustained coefficient-fetch bandwidth for realtime imaging [B/s]."""
        coefficients_per_second = (self.coefficient_count(system)
                                   * system.beamformer.frame_rate)
        return coefficients_per_second * self.bits_per_coefficient / 8.0

    def delay_rate_per_second(self, system: SystemConfig) -> float:
        """Delay coefficients consumed per second (~2.5e12 for the paper)."""
        return float(self.coefficient_count(system) * system.beamformer.frame_rate)
