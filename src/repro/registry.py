"""Generic name -> factory registries with declarative options.

The paper's central object of study is a *family* of interchangeable delay
generation architectures evaluated under one fixed system spec.  This module
provides the open-ended software counterpart: a :class:`Registry` maps a
public name to a factory plus (optionally) a frozen options dataclass and a
human-readable description, so that adding a new architecture, execution
backend or scan scenario is one ``@REGISTRY.register(...)`` away instead of
an edit to an enum and several if-chains.

Two registry instances form the public extension surface
(:data:`repro.architectures.ARCHITECTURES` and
:data:`repro.runtime.backends.BACKENDS`); a third
(:data:`repro.api.specs.SCENARIOS`) covers streaming scan scenarios.

Options dataclasses double as the serialisation schema: every registered
options type can be round-tripped through plain dicts (and therefore JSON)
with :func:`encode_options` / :func:`decode_options`, which understand
nested dataclasses (e.g. :class:`repro.fixedpoint.format.QFormat` inside
:class:`repro.core.tablefree.TableFreeConfig`), enums and optional fields.
"""

from __future__ import annotations

import types
import typing
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from typing import Any, Callable, Iterator


class RegistryError(ValueError):
    """Unknown name, duplicate registration or malformed options."""


# ---------------------------------------------------------------- options
def _is_dataclass_instance(value: Any) -> bool:
    return is_dataclass(value) and not isinstance(value, type)


def _encode(value: Any) -> Any:
    if _is_dataclass_instance(value):
        return {f.name: _encode(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    return value


def encode_options(options: Any) -> dict | None:
    """Serialise an options dataclass instance into a plain (JSON-safe) dict."""
    if options is None:
        return None
    if not _is_dataclass_instance(options):
        raise RegistryError(
            f"options must be a dataclass instance, got {type(options).__name__}")
    return _encode(options)


def _decode(annotation: Any, value: Any) -> Any:
    if value is None:
        return None
    origin = typing.get_origin(annotation)
    if origin is typing.Union or origin is types.UnionType:
        for arg in typing.get_args(annotation):
            if arg is type(None):
                continue
            try:
                return _decode(arg, value)
            except (RegistryError, TypeError, ValueError):
                continue
        raise RegistryError(f"cannot decode {value!r} as {annotation}")
    if isinstance(annotation, type) and is_dataclass(annotation):
        if isinstance(annotation, type) and isinstance(value, annotation):
            return value
        if isinstance(value, dict):
            return decode_options(annotation, value)
        raise RegistryError(f"cannot decode {value!r} as {annotation.__name__}")
    if isinstance(annotation, type) and issubclass(annotation, Enum):
        return annotation(value)
    if isinstance(annotation, type) and annotation in (tuple,) or origin is tuple:
        return tuple(value)
    return value


def decode_options(options_type: type, data: dict) -> Any:
    """Rebuild an options dataclass instance from its :func:`encode_options` dict.

    Field values are decoded recursively using the dataclass type hints, so
    nested dataclasses, enums and ``X | None`` fields all round-trip.
    Unknown keys raise :class:`RegistryError` (they would be silently lost
    otherwise, masking typos in spec files).
    """
    if not (isinstance(options_type, type) and is_dataclass(options_type)):
        raise RegistryError(f"{options_type!r} is not an options dataclass")
    if not isinstance(data, dict):
        raise RegistryError(
            f"options for {options_type.__name__} must be a mapping, "
            f"got {type(data).__name__}")
    known = {f.name for f in fields(options_type)}
    unknown = set(data) - known
    if unknown:
        raise RegistryError(
            f"unknown option(s) for {options_type.__name__}: "
            f"{', '.join(sorted(unknown))}; known: {', '.join(sorted(known))}")
    hints = typing.get_type_hints(options_type)
    kwargs = {name: _decode(hints.get(name, Any), value)
              for name, value in data.items()}
    return options_type(**kwargs)


# ---------------------------------------------------------------- registry
@dataclass(frozen=True)
class RegistryEntry:
    """One registered plugin: a factory, its options schema and a description."""

    name: str
    factory: Callable[..., Any]
    options: type | None
    description: str

    def make_options(self, value: Any = None) -> Any:
        """Coerce ``value`` (None / dict / instance) into an options instance.

        ``None`` yields the default-constructed options (or ``None`` when the
        entry declares no options type).
        """
        if value is None:
            return self.options() if self.options is not None else None
        if self.options is None:
            raise RegistryError(f"{self.name!r} takes no options")
        if isinstance(value, self.options):
            return value
        if isinstance(value, dict):
            return decode_options(self.options, value)
        raise RegistryError(
            f"options for {self.name!r} must be a {self.options.__name__} "
            f"or a mapping, got {type(value).__name__}")


class Registry:
    """An ordered mapping of public names to :class:`RegistryEntry` plugins.

    Usage::

        THINGS = Registry("thing")

        @THINGS.register("fast", options=FastOptions, description="...")
        def _build_fast(context, options):
            return FastThing(context, options)

        THINGS.create("fast", context, options={"knob": 3})

    Factories are called as ``factory(*args, options)`` by :meth:`create`,
    with ``options`` already coerced through
    :meth:`RegistryEntry.make_options`.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    # ------------------------------------------------------------ mutation
    def register(self, name: str, *, options: type | None = None,
                 description: str = "") -> Callable[[Callable], Callable]:
        """Decorator registering ``factory`` under ``name``.

        Duplicate names raise :class:`RegistryError`; call
        :meth:`unregister` first to replace an entry deliberately.
        """
        if options is not None and not (isinstance(options, type)
                                        and is_dataclass(options)):
            raise RegistryError(
                f"options for {self.kind} {name!r} must be a dataclass type")

        def decorator(factory: Callable) -> Callable:
            if name in self._entries:
                raise RegistryError(
                    f"{self.kind} {name!r} is already registered")
            self._entries[name] = RegistryEntry(
                name=name, factory=factory, options=options,
                description=description)
            return factory

        return decorator

    def unregister(self, name: str) -> None:
        """Remove an entry (raises :class:`RegistryError` when absent)."""
        if name not in self._entries:
            raise RegistryError(f"{self.kind} {name!r} is not registered")
        del self._entries[name]

    # ------------------------------------------------------------- lookup
    def get(self, name: str) -> RegistryEntry:
        """The entry for ``name``; unknown names list what *is* available."""
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; "
                f"available: {', '.join(self.names())}") from None

    def create(self, name: str, *args: Any, options: Any = None) -> Any:
        """Instantiate ``name`` by calling its factory with coerced options."""
        entry = self.get(name)
        return entry.factory(*args, entry.make_options(options))

    def names(self) -> tuple[str, ...]:
        """Registered names in registration order."""
        return tuple(self._entries)

    def items(self) -> tuple[tuple[str, RegistryEntry], ...]:
        """(name, entry) pairs in registration order."""
        return tuple(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, names={list(self._entries)})"
