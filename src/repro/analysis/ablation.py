"""Ablation studies for the design choices called out in DESIGN.md.

Each function isolates one design decision of the paper's architectures and
quantifies what changes when it is switched off or varied:

* :func:`directivity_filtering_ablation` — Section VI-A argues the worst
  TABLESTEER errors are harmless because they fall outside the elements'
  directivity; this ablation reports the error statistics with and without
  that filtering.
* :func:`symmetry_pruning_ablation` — Section V-A prunes three quarters of
  the reference table by symmetry; this ablation verifies the pruned lookup
  is lossless and reports the storage saved.
* :func:`incremental_tracking_ablation` — Section IV-B replaces the PWL
  segment search with incremental tracking; this ablation counts the segment
  steps actually needed along scanline- and nappe-ordered sweeps.
* :func:`interpolation_ablation` — the hardware addresses the echo buffer
  with integer indices; this ablation measures the image-level difference
  between nearest and linear interpolation.
* :func:`correction_reuse_ablation` — Fig. 4 keeps the same correction
  coefficients through an insonification; this ablation counts how many
  distinct coefficient sets a block needs per insonification versus per
  frame, which is what removes them from the critical timing path.
"""

from __future__ import annotations

import numpy as np

from ..acoustics.echo import EchoSimulator
from ..acoustics.phantom import point_target
from ..beamformer.das import DelayAndSumBeamformer
from ..beamformer.drivers import reconstruct_plane
from ..beamformer.image import envelope, normalized_rms_difference
from ..beamformer.interpolation import InterpolationKind, interpolation_cost_model
from ..config import SystemConfig
from ..core.exact import ExactDelayEngine
from ..core.reference_table import ReferenceDelayTable
from ..core.tablefree import TableFreeDelayGenerator
from ..core.tablesteer import TableSteerConfig, TableSteerDelayGenerator
from .accuracy import ErrorStats, directivity_mask, sample_volume_points, selection_errors


def directivity_filtering_ablation(system: SystemConfig,
                                   max_points: int = 400,
                                   seed: int = 21) -> dict[str, object]:
    """TABLESTEER error statistics with and without directivity filtering."""
    exact = ExactDelayEngine.from_config(system)
    generator = TableSteerDelayGenerator.from_config(
        system, TableSteerConfig(total_bits=None))
    points = sample_volume_points(system, max_points=max_points, seed=seed)
    errors = selection_errors(generator, exact, points)
    mask = directivity_mask(exact, points)
    unfiltered = ErrorStats.from_errors(errors)
    filtered = ErrorStats.from_errors(errors[mask]) if np.any(mask) else unfiltered
    return {
        "without_filtering": unfiltered.as_dict(),
        "with_filtering": filtered.as_dict(),
        "max_error_reduction_factor":
            unfiltered.max_abs / filtered.max_abs if filtered.max_abs > 0 else np.inf,
        "masked_fraction": float(1.0 - np.mean(mask)),
    }


def symmetry_pruning_ablation(system: SystemConfig) -> dict[str, float]:
    """Verify quadrant pruning is lossless and report the storage saved."""
    table = ReferenceDelayTable.build(system)
    depth_indices = np.linspace(0, len(table.grid.depths) - 1, 5).astype(int)
    worst_reconstruction_error = 0.0
    for i_depth in depth_indices:
        reconstructed = table.lookup(int(i_depth))
        direct = table.delays[:, :, int(i_depth)]
        worst_reconstruction_error = max(
            worst_reconstruction_error,
            float(np.max(np.abs(reconstructed - direct))))
    return {
        "full_entries": float(table.full_entry_count),
        "pruned_entries": float(table.quadrant_entry_count),
        "storage_saving_fraction": table.symmetry_savings,
        "max_reconstruction_error_samples": worst_reconstruction_error,
        "additional_directivity_prunable_fraction": table.prunable_fraction(),
    }


def incremental_tracking_ablation(system: SystemConfig,
                                  element_index: int = 0) -> dict[str, float]:
    """Segment steps needed by the PWL tracker in depth- vs angle-ordered sweeps."""
    generator = TableFreeDelayGenerator.from_config(system)
    grid = generator.grid

    # Depth-ordered (scanline) sweep for one element.
    scanline_stats = generator.segment_step_statistics(
        i_theta=len(grid.thetas) // 2, i_phi=len(grid.phis) // 2,
        element_index=element_index)

    # Angle-ordered (nappe) sweep at a mid depth for the same element.
    i_depth = len(grid.depths) // 2
    points = grid.nappe_points(i_depth).reshape(-1, 3)
    _tx_sq, rx_sq = generator._squared_args_samples(points)
    args = rx_sq[:, element_index]
    evaluator = generator.incremental_evaluator()
    evaluator.reset(int(generator.pwl.segment_index(args[0])))
    evaluator.evaluate_sequence(args)

    return {
        "segment_count": float(generator.segment_count),
        "scanline_mean_steps": scanline_stats["mean_steps"],
        "scanline_max_steps": scanline_stats["max_steps"],
        "nappe_mean_steps": evaluator.mean_steps_per_evaluation,
        "nappe_max_steps": float(evaluator.max_steps_single_evaluation),
        "search_cost_avoided_steps_per_point":
            float(np.log2(max(generator.segment_count, 2))),
    }


def interpolation_ablation(system: SystemConfig,
                           target_depth_fraction: float = 0.55) -> dict[str, object]:
    """Image-level effect of integer-index addressing vs linear interpolation."""
    exact = ExactDelayEngine.from_config(system)
    grid = exact.grid
    requested = (system.volume.depth_min
                 + target_depth_fraction * system.volume.depth_span)
    depth = float(grid.depths[np.argmin(np.abs(grid.depths - requested))])
    channel_data = EchoSimulator.from_config(system).simulate(
        point_target(depth=depth))

    images = {}
    for kind in (InterpolationKind.NEAREST, InterpolationKind.LINEAR):
        beamformer = DelayAndSumBeamformer(system, exact, interpolation=kind)
        images[kind.value] = envelope(
            reconstruct_plane(beamformer, channel_data), axis=1)
    difference = normalized_rms_difference(images["linear"], images["nearest"])
    return {
        "nrms_nearest_vs_linear": difference,
        "peak_ratio": float(np.max(images["nearest"]) / np.max(images["linear"])),
        "cost_nearest": interpolation_cost_model(
            InterpolationKind.NEAREST, system.transducer.element_count),
        "cost_linear": interpolation_cost_model(
            InterpolationKind.LINEAR, system.transducer.element_count),
    }


def correction_reuse_ablation(system: SystemConfig) -> dict[str, float]:
    """How often a Fig. 4 block must change its correction coefficients.

    Keeping the coefficients constant during an insonification (the paper's
    timing optimisation) means each block loads new coefficients only
    ``insonifications_per_volume`` times per frame instead of once per focal
    point; the ratio of the two is the coefficient-reload traffic avoided.
    """
    per_frame_points = system.volume.focal_point_count
    insonifications = system.beamformer.insonifications_per_volume
    scanlines_per_insonification = system.beamformer.scanlines_per_insonification
    reload_per_point = float(per_frame_points)
    reload_per_insonification = float(insonifications)
    return {
        "coefficient_reloads_per_frame_naive": reload_per_point,
        "coefficient_reloads_per_frame_optimised": reload_per_insonification,
        "reload_reduction_factor": reload_per_point / reload_per_insonification,
        "scanlines_per_insonification": float(scanlines_per_insonification),
    }
