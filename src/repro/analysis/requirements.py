"""Delay-table scale analysis (Section II-B / II-C, experiment E1).

Quantifies the problem the paper sets out to solve: how many delay
coefficients a naive precomputed table needs, how much storage that is, and
what access bandwidth realtime 3D imaging implies — the "164 x 10^9
coefficients" and "2.5 x 10^12 delay values/s" figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..hardware.resources import FullTableBaseline


@dataclass(frozen=True)
class RequirementsReport:
    """Storage/bandwidth requirements of naive and optimised delay schemes."""

    system_name: str
    focal_points: int
    elements: int
    naive_coefficients: int
    naive_storage_gigabytes: float
    naive_bandwidth_terabytes_per_second: float
    required_delay_rate_per_second: float
    symmetric_table_entries: int
    symmetric_table_megabits_18b: float
    correction_values: int
    correction_megabits_18b: float

    def as_dict(self) -> dict[str, float | str]:
        """Report as a plain dictionary."""
        return {
            "system": self.system_name,
            "focal_points": float(self.focal_points),
            "elements": float(self.elements),
            "naive_coefficients": float(self.naive_coefficients),
            "naive_storage_gigabytes": self.naive_storage_gigabytes,
            "naive_bandwidth_terabytes_per_second":
                self.naive_bandwidth_terabytes_per_second,
            "required_delay_rate_per_second": self.required_delay_rate_per_second,
            "symmetric_table_entries": float(self.symmetric_table_entries),
            "symmetric_table_megabits_18b": self.symmetric_table_megabits_18b,
            "correction_values": float(self.correction_values),
            "correction_megabits_18b": self.correction_megabits_18b,
        }


def requirements_report(system: SystemConfig,
                        bits_per_coefficient: int = 13) -> RequirementsReport:
    """Compute the requirements report for a system configuration.

    The "symmetric table" and "correction" entries quantify how far the
    TABLESTEER decomposition shrinks the problem (2.5e6 entries / 45 Mb and
    832e3 values / 14.3 Mb for the paper system) without building the actual
    tables, so the report is cheap even at paper scale.
    """
    baseline = FullTableBaseline(bits_per_coefficient=bits_per_coefficient)
    ex = system.transducer.elements_x
    ey = system.transducer.elements_y
    quadrant_entries = ((ex + 1) // 2) * ((ey + 1) // 2) * system.volume.n_depth
    correction_values = (ex * system.volume.n_theta * ((system.volume.n_phi + 1) // 2)
                         + ey * system.volume.n_phi)
    return RequirementsReport(
        system_name=system.name,
        focal_points=system.volume.focal_point_count,
        elements=system.transducer.element_count,
        naive_coefficients=baseline.coefficient_count(system),
        naive_storage_gigabytes=baseline.storage_bytes(system) / 1e9,
        naive_bandwidth_terabytes_per_second=
            baseline.access_bandwidth_bytes_per_second(system) / 1e12,
        required_delay_rate_per_second=baseline.delay_rate_per_second(system),
        symmetric_table_entries=quadrant_entries,
        symmetric_table_megabits_18b=quadrant_entries * 18 / 1e6,
        correction_values=correction_values,
        correction_megabits_18b=correction_values * 18 / 1e6,
    )
