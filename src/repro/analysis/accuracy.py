"""Delay accuracy analysis (Section VI-A of the paper).

The figure of merit is the *selection error*: the difference, in sample
units, between the echo-buffer index an approximate delay generator selects
and the index an exact double-precision computation selects.  This module
computes selection-error statistics for any delay provider against the exact
engine, over deterministic sweeps of the imaging volume, optionally masking
out points/elements that apodization and directivity would suppress anyway
(which is how the paper argues the worst TABLESTEER errors are harmless).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..core.exact import ExactDelayEngine
from ..geometry.apodization import directivity_weights
from ..geometry.coordinates import off_axis_angle
from ..geometry.volume import FocalGrid


@dataclass(frozen=True)
class ErrorStats:
    """Summary statistics of a (selection or delay) error population."""

    count: int
    mean_abs: float
    max_abs: float
    rms: float
    p95_abs: float
    p99_abs: float
    fraction_nonzero: float
    fraction_above_one: float

    @classmethod
    def from_errors(cls, errors: np.ndarray) -> "ErrorStats":
        """Compute statistics from an array of signed errors."""
        errors = np.asarray(errors, dtype=np.float64).ravel()
        if errors.size == 0:
            raise ValueError("error population is empty")
        abs_errors = np.abs(errors)
        return cls(
            count=int(errors.size),
            mean_abs=float(np.mean(abs_errors)),
            max_abs=float(np.max(abs_errors)),
            rms=float(np.sqrt(np.mean(errors ** 2))),
            p95_abs=float(np.percentile(abs_errors, 95)),
            p99_abs=float(np.percentile(abs_errors, 99)),
            fraction_nonzero=float(np.mean(abs_errors > 0)),
            fraction_above_one=float(np.mean(abs_errors > 1.0)),
        )

    def as_dict(self) -> dict[str, float]:
        """Statistics as a plain dictionary."""
        return {
            "count": float(self.count),
            "mean_abs": self.mean_abs,
            "max_abs": self.max_abs,
            "rms": self.rms,
            "p95_abs": self.p95_abs,
            "p99_abs": self.p99_abs,
            "fraction_nonzero": self.fraction_nonzero,
            "fraction_above_one": self.fraction_above_one,
        }


def sample_volume_points(system: SystemConfig,
                         max_points: int = 4000,
                         seed: int = 7,
                         include_extremes: bool = True) -> np.ndarray:
    """A deterministic sample of focal points covering the imaging volume.

    The sample always includes the grid corners and edge mid-points when
    ``include_extremes`` is set (the regions where the TABLESTEER error
    peaks), plus a seeded random selection of interior grid points.
    Returns Cartesian points of shape ``(n, 3)``.
    """
    grid = FocalGrid.from_config(system)
    n_theta, n_phi, n_depth = grid.shape
    rng = np.random.default_rng(seed)
    n_random = max(0, max_points)
    i_theta = rng.integers(0, n_theta, n_random)
    i_phi = rng.integers(0, n_phi, n_random)
    i_depth = rng.integers(0, n_depth, n_random)
    if include_extremes:
        extreme_theta = np.array([0, n_theta // 2, n_theta - 1])
        extreme_phi = np.array([0, n_phi // 2, n_phi - 1])
        extreme_depth = np.array([0, n_depth // 2, n_depth - 1])
        tt, pp, dd = np.meshgrid(extreme_theta, extreme_phi, extreme_depth,
                                 indexing="ij")
        i_theta = np.concatenate([i_theta, tt.ravel()])
        i_phi = np.concatenate([i_phi, pp.ravel()])
        i_depth = np.concatenate([i_depth, dd.ravel()])
    points = np.stack([
        grid.thetas[i_theta],
        grid.phis[i_phi],
        grid.depths[i_depth],
    ], axis=-1)
    from ..geometry.coordinates import spherical_to_cartesian
    return spherical_to_cartesian(points[:, 0], points[:, 1], points[:, 2])


def selection_errors(provider, exact: ExactDelayEngine,
                     points: np.ndarray) -> np.ndarray:
    """Integer selection-error matrix ``provider_index - exact_index``.

    Shape ``(n_points, n_elements)``.
    """
    approx = provider.delay_indices(points)
    truth = exact.delay_indices(points)
    return (approx - truth).astype(np.float64)


def delay_errors_samples(provider, exact: ExactDelayEngine,
                         points: np.ndarray) -> np.ndarray:
    """Continuous delay error (before index rounding), in sample units."""
    return provider.delays_samples(points) - exact.delays_samples(points)


def directivity_mask(exact: ExactDelayEngine, points: np.ndarray,
                     rolloff: float = 0.0) -> np.ndarray:
    """Mask of (point, element) pairs inside the elements' directivity cone.

    Entries outside the cone receive (near-)zero apodization weight in the
    beamformer; excluding them mirrors the paper's argument that the largest
    TABLESTEER errors "are in practice filtered away by apodization".
    """
    angles = off_axis_angle(np.atleast_2d(points), exact.transducer.positions)
    weights = directivity_weights(
        angles, exact.transducer.config.directivity_max_angle, rolloff)
    return weights > 0


@dataclass(frozen=True)
class AccuracyReport:
    """Selection-error statistics for one delay generator."""

    architecture: str
    all_points: ErrorStats
    within_directivity: ErrorStats
    delay_error_seconds_max: float
    delay_error_seconds_mean: float

    def as_dict(self) -> dict[str, object]:
        """Report as nested dictionaries."""
        return {
            "architecture": self.architecture,
            "all_points": self.all_points.as_dict(),
            "within_directivity": self.within_directivity.as_dict(),
            "delay_error_seconds_max": self.delay_error_seconds_max,
            "delay_error_seconds_mean": self.delay_error_seconds_mean,
        }


def evaluate_provider(provider, system: SystemConfig, architecture: str,
                      points: np.ndarray | None = None,
                      max_points: int = 2000,
                      seed: int = 7) -> AccuracyReport:
    """Full accuracy evaluation of a delay provider against the exact engine."""
    exact = ExactDelayEngine.from_config(system)
    if points is None:
        points = sample_volume_points(system, max_points=max_points, seed=seed)
    sel = selection_errors(provider, exact, points)
    continuous = delay_errors_samples(provider, exact, points)
    seconds = continuous / system.acoustic.sampling_frequency
    mask = directivity_mask(exact, points)
    masked = sel[mask] if np.any(mask) else sel
    return AccuracyReport(
        architecture=architecture,
        all_points=ErrorStats.from_errors(sel),
        within_directivity=ErrorStats.from_errors(masked),
        delay_error_seconds_max=float(np.max(np.abs(seconds))),
        delay_error_seconds_mean=float(np.mean(np.abs(seconds))),
    )


def error_map_by_region(provider, system: SystemConfig,
                        n_theta_bins: int = 8, n_depth_bins: int = 8,
                        elements_stride: int = 7,
                        seed: int = 11) -> dict[str, np.ndarray]:
    """Mean absolute selection error binned by steering angle and depth.

    Reproduces the qualitative claim of Section VI-A that the TABLESTEER
    error concentrates at extreme angles and short distances: returns bin
    centres plus a ``(n_theta_bins, n_depth_bins)`` matrix of mean absolute
    errors (sample units) evaluated on a decimated element set.
    """
    grid = FocalGrid.from_config(system)
    exact = ExactDelayEngine.from_config(system)
    theta_bins = np.linspace(-system.volume.theta_max, system.volume.theta_max,
                             n_theta_bins)
    depth_bins = np.linspace(system.volume.depth_min, system.volume.depth_max,
                             n_depth_bins)
    element_subset = np.arange(0, exact.transducer.element_count, elements_stride)
    error_matrix = np.zeros((n_theta_bins, n_depth_bins))
    from ..geometry.coordinates import spherical_to_cartesian
    for i, theta in enumerate(theta_bins):
        for j, depth in enumerate(depth_bins):
            point = spherical_to_cartesian(theta, 0.0, depth).reshape(1, 3)
            approx = provider.delay_indices(point)[:, element_subset]
            truth = exact.delay_indices(point)[:, element_subset]
            error_matrix[i, j] = float(np.mean(np.abs(approx - truth)))
    return {
        "theta_bins": theta_bins,
        "depth_bins": depth_bins,
        "mean_abs_error": error_matrix,
    }
