"""Image-quality studies: contrast and resolution under approximate delays.

The paper's accuracy analysis stops at delay-sample statistics; the implicit
claim (Section II-A) is that sufficiently accurate delays leave image quality
untouched.  These studies close the loop with standard image-quality figures
of merit computed on synthetic phantoms:

* :func:`cyst_contrast_study` — contrast and contrast-to-noise ratio of an
  anechoic cyst in speckle, reconstructed with each delay architecture;
  defocusing from delay errors leaks speckle energy into the cyst and lowers
  the contrast.
* :func:`resolution_vs_depth_study` — axial and lateral point-spread width
  at several depths for each architecture; delay errors broaden the PSF.
* :func:`delay_error_to_image_error` — a sweep that injects controlled
  delay-quantisation error (by degrading the TABLEFREE delta) and measures
  the resulting image NRMS, mapping the paper's "+/- 1 sample is acceptable"
  argument onto an image-level curve.
"""

from __future__ import annotations

import numpy as np

from ..acoustics.echo import EchoSimulator
from ..acoustics.phantom import cyst_phantom, point_target
from ..beamformer.das import DelayAndSumBeamformer
from ..beamformer.drivers import reconstruct_plane
from ..beamformer.image import (
    contrast_ratio_db,
    contrast_to_noise_ratio,
    envelope,
    normalized_rms_difference,
    point_spread_metrics,
)
from ..config import SystemConfig
from ..core.exact import ExactDelayEngine
from ..core.tablefree import TableFreeConfig, TableFreeDelayGenerator
from ..geometry.volume import FocalGrid
from ..architectures import ARCHITECTURES


def _cyst_masks(system: SystemConfig, grid: FocalGrid, cyst_depth: float,
                cyst_radius: float) -> tuple[np.ndarray, np.ndarray]:
    """Inside/outside masks for the centre-elevation image plane.

    Thin wrapper over the shared region geometry in
    :func:`repro.scenarios.scoring.plane_region_masks`, so the analyses
    here and the scenario scoring hook can never disagree on what counts
    as "inside the cyst".
    """
    from ..scenarios.scoring import plane_region_masks
    return plane_region_masks(grid, cyst_depth, cyst_radius)


def cyst_contrast_study(system: SystemConfig,
                        architectures: tuple[str, ...] = ("exact", "tablefree",
                                                          "tablesteer"),
                        n_scatterers: int = 1500,
                        seed: int = 33) -> dict[str, dict[str, float]]:
    """Anechoic-cyst contrast for each delay architecture.

    Returns, per architecture, the cyst contrast in dB and the contrast-to-
    noise ratio (CNR), plus the NRMS difference of the image against the
    exact-delay reconstruction.
    """
    volume = system.volume
    cyst_depth = volume.depth_min + 0.55 * volume.depth_span
    cyst_radius = 0.12 * volume.depth_span
    phantom = cyst_phantom(system, cyst_depth=cyst_depth,
                           cyst_radius=cyst_radius,
                           n_scatterers=n_scatterers, seed=seed)
    channel_data = EchoSimulator.from_config(system).simulate(phantom)
    grid = FocalGrid.from_config(system)
    inside, outside = _cyst_masks(system, grid, cyst_depth, cyst_radius)
    if not inside.any() or not outside.any():
        raise RuntimeError("cyst geometry does not intersect the image plane")

    results: dict[str, dict[str, float]] = {}
    reference_image: np.ndarray | None = None
    for name in architectures:
        provider = ARCHITECTURES.create(name, system)
        beamformer = DelayAndSumBeamformer(system, provider)
        image = envelope(reconstruct_plane(beamformer, channel_data), axis=1)
        if reference_image is None:
            reference_image = image
        contrast = contrast_ratio_db(image, inside, outside)
        cnr = contrast_to_noise_ratio(image[inside], image[outside])
        results[name] = {
            "contrast_db": float(contrast),
            "cnr": cnr,
            "nrms_vs_exact": normalized_rms_difference(reference_image, image),
        }
    return results


def resolution_vs_depth_study(system: SystemConfig,
                              architectures: tuple[str, ...] = ("exact",
                                                                "tablefree",
                                                                "tablesteer"),
                              depth_fractions: tuple[float, ...] = (0.3, 0.6, 0.9),
                              ) -> dict[str, list[dict[str, float]]]:
    """Axial / lateral PSF width vs depth for each delay architecture."""
    grid = FocalGrid.from_config(system)
    results: dict[str, list[dict[str, float]]] = {name: [] for name in architectures}
    simulator = EchoSimulator.from_config(system)
    providers = {name: ARCHITECTURES.create(name, system)
                 for name in architectures}
    for fraction in depth_fractions:
        requested = system.volume.depth_min + fraction * system.volume.depth_span
        depth = float(grid.depths[np.argmin(np.abs(grid.depths - requested))])
        channel_data = simulator.simulate(point_target(depth=depth))
        for name, provider in providers.items():
            beamformer = DelayAndSumBeamformer(system, provider)
            image = envelope(reconstruct_plane(beamformer, channel_data), axis=1)
            peak_theta, peak_depth = np.unravel_index(np.argmax(image),
                                                      image.shape)
            axial = point_spread_metrics(image[peak_theta, :])
            lateral = point_spread_metrics(image[:, peak_depth])
            results[name].append({
                "depth_m": depth,
                "axial_fwhm": axial.fwhm_samples,
                "lateral_fwhm": lateral.fwhm_samples,
                "peak_depth_index": float(peak_depth),
            })
    return results


def delay_error_to_image_error(system: SystemConfig,
                               deltas: tuple[float, ...] = (0.125, 0.25, 0.5,
                                                            1.0, 2.0),
                               target_depth_fraction: float = 0.5,
                               ) -> list[dict[str, float]]:
    """Image NRMS versus the TABLEFREE delay error bound (delta sweep).

    Larger delta means coarser square-root approximation and therefore larger
    delay errors; the returned curve maps delay accuracy to image-level
    degradation, quantifying how much slack the "+/- 1 sample" budget leaves.
    """
    grid = FocalGrid.from_config(system)
    requested = (system.volume.depth_min
                 + target_depth_fraction * system.volume.depth_span)
    depth = float(grid.depths[np.argmin(np.abs(grid.depths - requested))])
    channel_data = EchoSimulator.from_config(system).simulate(
        point_target(depth=depth))

    exact = ExactDelayEngine.from_config(system)
    reference = envelope(reconstruct_plane(
        DelayAndSumBeamformer(system, exact), channel_data), axis=1)

    rows = []
    for delta in deltas:
        generator = TableFreeDelayGenerator.from_config(
            system, TableFreeConfig(delta=delta))
        image = envelope(reconstruct_plane(
            DelayAndSumBeamformer(system, generator), channel_data), axis=1)
        points = grid.scanline_points(len(grid.thetas) // 2, len(grid.phis) // 2)
        delay_error = np.mean(np.abs(
            generator.delays_samples(points) - exact.delays_samples(points)))
        rows.append({
            "delta": float(delta),
            "segments": float(generator.segment_count),
            "mean_delay_error_samples": float(delay_error),
            "image_nrms_vs_exact": normalized_rms_difference(reference, image),
        })
    return rows
