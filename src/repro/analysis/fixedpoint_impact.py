"""Fixed-point representation impact on delay selection (experiment E6).

Section VI-A reports that storing TABLESTEER delays as plain 13-bit integers
makes ~33 % of the selected echo samples differ (by +/- 1) from a
high-precision floating-point computation, while an 18-bit (13.5) fixed
point representation reduces the affected fraction to below 2 %.  The paper
obtained these numbers with a Matlab simulation over 10 x 10^6 random
inputs; here the same experiment is a seeded NumPy Monte-Carlo.

The model matches the paper's datapath, which sums *three* values per delay
(Section V-B: "a sum of three values is needed to compute the overall
delay"): the reference delay plus the x- and y-direction steering
corrections.  Each of the three is stored in its fixed-point format, the sum
is rounded to an integer echo-buffer index, and that index is compared with
the index obtained from the unquantised sum.  With plain integer storage the
three independent +/-0.5-sample rounding errors move roughly a third of the
indices by one sample; with the 18-bit formats the residual quantisation
error almost never crosses a rounding boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..fixedpoint.format import tablesteer_formats
from ..fixedpoint.quantize import quantize


@dataclass(frozen=True)
class FixedPointImpactResult:
    """Outcome of the fixed-point Monte-Carlo for one representation width."""

    total_bits: int
    sample_count: int
    affected_fraction: float
    max_index_error: int
    mean_abs_index_error: float

    def as_dict(self) -> dict[str, float]:
        """Result as a plain dictionary."""
        return {
            "total_bits": float(self.total_bits),
            "sample_count": float(self.sample_count),
            "affected_fraction": self.affected_fraction,
            "max_index_error": float(self.max_index_error),
            "mean_abs_index_error": self.mean_abs_index_error,
        }


def _round_half_away(values: np.ndarray) -> np.ndarray:
    return np.sign(values) * np.floor(np.abs(values) + 0.5)


def fixed_point_impact(total_bits: int,
                       n_samples: int = 1_000_000,
                       max_delay_samples: float = 8000.0,
                       max_correction_samples: float = 130.0,
                       seed: int = 2015) -> FixedPointImpactResult:
    """Monte-Carlo estimate of how often quantisation changes the selected index.

    Parameters
    ----------
    total_bits:
        Width of the reference-delay representation (13, 14 or 18).
    n_samples:
        Number of random (reference, x-correction, y-correction) triples; the
        paper used 10e6.
    max_delay_samples:
        Range of the reference delays (the ~8000-sample echo buffer).
    max_correction_samples:
        Magnitude bound of each per-axis steering correction in sample units.
    seed:
        RNG seed for reproducibility.
    """
    rng = np.random.default_rng(seed)
    reference = rng.uniform(0.0, max_delay_samples, n_samples)
    correction_x = rng.uniform(-max_correction_samples, max_correction_samples,
                               n_samples)
    correction_y = rng.uniform(-max_correction_samples, max_correction_samples,
                               n_samples)

    # Ideal index: full-precision sum rounded once at the end.
    ideal_index = _round_half_away(reference + correction_x + correction_y)

    ref_fmt, corr_fmt = tablesteer_formats(total_bits)
    ref_q = quantize(reference, ref_fmt)
    corr_x_q = quantize(correction_x, corr_fmt)
    corr_y_q = quantize(correction_y, corr_fmt)
    hw_index = _round_half_away(ref_q + corr_x_q + corr_y_q)

    index_error = hw_index - ideal_index
    affected = float(np.mean(index_error != 0))
    return FixedPointImpactResult(
        total_bits=total_bits,
        sample_count=n_samples,
        affected_fraction=affected,
        max_index_error=int(np.max(np.abs(index_error))),
        mean_abs_index_error=float(np.mean(np.abs(index_error))),
    )


def fixed_point_sweep(bit_widths: tuple[int, ...] = (13, 14, 16, 18, 20),
                      n_samples: int = 200_000,
                      seed: int = 2015) -> list[FixedPointImpactResult]:
    """Affected-sample fraction as a function of representation width."""
    return [fixed_point_impact(bits, n_samples=n_samples, seed=seed)
            for bits in bit_widths]


@dataclass(frozen=True)
class KernelFixedPointResult:
    """Per-width outcome of the E6 sweep run through the kernel layer.

    Where :class:`FixedPointImpactResult` Monte-Carlos random delay
    triples, this result comes from compiling the real TABLESTEER delay
    tensors at one representation width into a bit-true
    :class:`repro.kernels.QuantizedPlan` and comparing its echo-buffer
    addressing (and the beamformed volume) against the unquantised
    TABLESTEER plan — the runtime and the experiment share one code path,
    so they cannot drift apart.
    """

    total_bits: int
    sample_count: int
    affected_fraction: float
    max_index_error: int
    mean_abs_index_error: float
    volume_rms_error: float
    """RMS difference of the quantized volume, relative to the peak
    amplitude of the unquantised reference volume."""

    def as_dict(self) -> dict[str, float]:
        """Result as a plain dictionary."""
        return {
            "total_bits": float(self.total_bits),
            "sample_count": float(self.sample_count),
            "affected_fraction": self.affected_fraction,
            "max_index_error": float(self.max_index_error),
            "mean_abs_index_error": self.mean_abs_index_error,
            "volume_rms_error": self.volume_rms_error,
        }


def kernel_fixed_point_sweep(system: SystemConfig | None = None,
                             bit_widths: tuple[int, ...] = (13, 14, 16, 18,
                                                            20),
                             store: "object | str | None" = None
                             ) -> list[KernelFixedPointResult]:
    """The E6 bit-width sweep executed through the compiled kernel path.

    For each width the TABLESTEER delay generator is built *at that width*
    (its fixed-point three-value sum is the very datapath the Monte-Carlo
    models) and compiled into a :class:`repro.kernels.QuantizedPlan` whose
    delay format matches the width, so the whole engine — delay generation,
    echo addressing, weighting and accumulation — is hardware-faithful.
    The unquantised reference is the floating-point TABLESTEER plan (same
    algorithmic far-field approximation, no quantisation), which isolates
    representation error exactly as :func:`fixed_point_impact` does.

    Defaults to the ``tiny`` preset: the trends (affected fraction falling
    from tens of percent at 13 bits to ~nothing at 20, index errors of at
    most one sample) are scale-free, and the tiny grid keeps the sweep
    cheap enough for tests and the E6 experiment to run it routinely.

    ``store`` (a :class:`repro.sweep.SweepStore` or a directory path)
    opts into content-addressed reuse: each width's result is keyed on
    the system digest + width, so reruns — and other experiments sharing
    the store — skip the compile entirely and read the metrics back.
    """
    # Imported here: repro.analysis sits below the kernel/beamformer layers
    # in some import orders, and the sweep is the only consumer.
    from ..acoustics.echo import EchoSimulator
    from ..acoustics.phantom import point_target
    from ..beamformer.das import DelayAndSumBeamformer
    from ..config import tiny_system
    from ..core.tablesteer import TableSteerConfig, TableSteerDelayGenerator
    from ..geometry.volume import FocalGrid
    from ..kernels import QuantizationSpec, compile_plan

    system = system or tiny_system()
    cell_keys: dict[int, str] = {}
    if store is not None:
        from ..sweep import SweepStore, cell_key
        from ..sweep.hashing import CELL_SPEC_FORMAT
        if not isinstance(store, SweepStore):
            store = SweepStore(store)
        # Kernel cells have no scenario/scheme grid; their identity is the
        # physics digest + representation width (plus the format stamp, so
        # a schema change invalidates instead of mis-serving).
        cell_keys = {bits: cell_key({"format": CELL_SPEC_FORMAT,
                                     "kind": "e6_kernel_fixed_point",
                                     "system": system.cache_key(),
                                     "total_bits": bits})
                     for bits in bit_widths}
        if all(cell_keys[bits] in store for bits in bit_widths):
            results = []
            for bits in bit_widths:
                metrics = store.read(cell_keys[bits])["metrics"]
                results.append(KernelFixedPointResult(
                    total_bits=int(metrics["total_bits"]),
                    sample_count=int(metrics["sample_count"]),
                    affected_fraction=metrics["affected_fraction"],
                    max_index_error=int(metrics["max_index_error"]),
                    mean_abs_index_error=metrics["mean_abs_index_error"],
                    volume_rms_error=metrics["volume_rms_error"],
                ))
            return results

    grid = FocalGrid.from_config(system)
    depth = float(grid.depths[len(grid.depths) // 2])
    channel_data = EchoSimulator.from_config(system).simulate(
        point_target(depth=depth))

    float_provider = TableSteerDelayGenerator.from_config(
        system, TableSteerConfig(total_bits=None))
    float_plan = compile_plan(DelayAndSumBeamformer(system, float_provider))
    reference_indices = float_plan.gather_index().indices
    reference_volume = float_plan.execute(channel_data)
    peak = float(np.max(np.abs(reference_volume))) or 1.0

    results = []
    for bits in bit_widths:
        provider = TableSteerDelayGenerator.from_config(
            system, TableSteerConfig(total_bits=bits))
        beamformer = DelayAndSumBeamformer(
            system, provider,
            quantization=QuantizationSpec.from_total_bits(bits))
        plan = compile_plan(beamformer)
        index_error = plan.gather_index().indices - reference_indices
        volume = plan.execute(channel_data)
        rms = float(np.sqrt(np.mean((volume - reference_volume) ** 2)))
        result = KernelFixedPointResult(
            total_bits=bits,
            sample_count=int(index_error.size),
            affected_fraction=float(np.mean(index_error != 0)),
            max_index_error=int(np.max(np.abs(index_error))),
            mean_abs_index_error=float(np.mean(np.abs(index_error))),
            volume_rms_error=rms / peak,
        )
        if cell_keys:
            store.write(cell_keys[bits], None, result.as_dict(),
                        {"kind": "e6_kernel_fixed_point",
                         "system": system.cache_key(), "total_bits": bits})
        results.append(result)
    return results


def impact_for_system(system: SystemConfig, total_bits: int,
                      n_samples: int = 200_000,
                      seed: int = 2015) -> FixedPointImpactResult:
    """Fixed-point impact with ranges derived from an actual system config."""
    max_delay = float(system.echo_buffer_samples)
    # The largest per-axis steering correction is the aperture half-extent
    # projected at the maximum steering angle, in sample units.
    aperture_x = system.transducer.aperture_x / 2.0
    aperture_y = system.transducer.aperture_y / 2.0
    per_axis_seconds = max(aperture_x * np.sin(system.volume.theta_max),
                           aperture_y * np.sin(system.volume.phi_max)) \
        / system.acoustic.speed_of_sound
    max_correction = per_axis_seconds * system.acoustic.sampling_frequency
    return fixed_point_impact(total_bits, n_samples=n_samples,
                              max_delay_samples=max_delay,
                              max_correction_samples=float(max_correction),
                              seed=seed)
