"""Accuracy, requirements and fixed-point impact analysis."""

from .ablation import (
    correction_reuse_ablation,
    directivity_filtering_ablation,
    incremental_tracking_ablation,
    interpolation_ablation,
    symmetry_pruning_ablation,
)
from .accuracy import (
    AccuracyReport,
    ErrorStats,
    delay_errors_samples,
    directivity_mask,
    error_map_by_region,
    evaluate_provider,
    sample_volume_points,
    selection_errors,
)
from .image_quality import (
    cyst_contrast_study,
    delay_error_to_image_error,
    resolution_vs_depth_study,
)
from .fixedpoint_impact import (
    FixedPointImpactResult,
    fixed_point_impact,
    fixed_point_sweep,
    impact_for_system,
)
from .requirements import RequirementsReport, requirements_report

__all__ = [
    "ErrorStats",
    "AccuracyReport",
    "selection_errors",
    "delay_errors_samples",
    "directivity_mask",
    "evaluate_provider",
    "sample_volume_points",
    "error_map_by_region",
    "FixedPointImpactResult",
    "fixed_point_impact",
    "fixed_point_sweep",
    "impact_for_system",
    "RequirementsReport",
    "requirements_report",
    "cyst_contrast_study",
    "resolution_vs_depth_study",
    "delay_error_to_image_error",
    "directivity_filtering_ablation",
    "symmetry_pruning_ablation",
    "incremental_tracking_ablation",
    "interpolation_ablation",
    "correction_reuse_ablation",
]
