"""Bulk (whole-volume) delay generation shared by all delay providers.

The streaming runtime (:mod:`repro.runtime`) beamforms entire volumes in one
batched pass, which needs the complete ``(n_points, n_elements)`` delay
tensor instead of the per-scanline slices the hardware-style providers
naturally emit.  Rather than teaching every provider a second bulk code
path, this mixin derives the volume tensor from the provider's existing
``scanline_delays_samples`` — scanline by scanline, in the same traversal
order the reference beamformer uses — so the bulk tensor is numerically
*identical* to what the per-scanline path would have produced.  Providers
with a cheaper native batch computation (the exact engine) simply override
:meth:`volume_delays_samples`.
"""

from __future__ import annotations

import numpy as np


class BulkDelayProviderMixin:
    """Default whole-volume delay generation for scanline-oriented providers.

    Requires the host class to expose a ``grid`` attribute (a
    :class:`repro.geometry.volume.FocalGrid`) and the standard
    ``scanline_delays_samples(i_theta, i_phi)`` method.
    """

    def volume_delays_samples(self) -> np.ndarray:
        """Delays for every focal point of the grid, in fractional samples.

        Returns an array of shape ``(n_theta, n_phi, n_depth, n_elements)``
        assembled scanline by scanline, so it matches the per-scanline API
        bit for bit.
        """
        grid = self.grid
        n_theta, n_phi, n_depth = grid.shape
        first = np.asarray(self.scanline_delays_samples(0, 0))
        n_elements = first.shape[-1]
        out = np.empty((n_theta, n_phi, n_depth, n_elements))
        out[0, 0] = first
        for i_theta in range(n_theta):
            for i_phi in range(n_phi):
                if i_theta == 0 and i_phi == 0:
                    continue
                out[i_theta, i_phi] = self.scanline_delays_samples(i_theta, i_phi)
        return out
