"""Reference (broadside) delay table for the TABLESTEER architecture.

Section V-A: for the unsteered line of sight along the Z axis, the two-way
delay from the origin ``O = (0, 0, 0)`` to the reference point
``R = (0, 0, r)`` and back to element ``D = (xD, yD, 0)`` is

    tp(O, R, D) = ( r + sqrt(xD^2 + yD^2 + r^2) ) / c

Conceptually this is a 3-D matrix of ``ex x ey x n_depth`` entries
(10 x 10^6 for the paper system).  Because it only depends on ``xD^2 + yD^2``
and the element grid is symmetric about the origin, exactly three quarters of
the matrix are redundant and only one quadrant (50 x 50 x 1000 = 2.5 x 10^6
entries) needs to be stored.  Elements whose off-axis angle to a point
exceeds their directivity never contribute and can additionally be pruned
(Fig. 3a).

This module builds the table, performs the symmetry/directivity pruning and
accounts for the storage cost in bits for a given fixed-point format — the
"45 Mb" figure of Section V-B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..fixedpoint.format import QFormat, REFERENCE_DELAY_18B
from ..fixedpoint.quantize import quantize
from ..geometry.transducer import MatrixTransducer
from ..geometry.volume import FocalGrid


@dataclass(frozen=True)
class ReferenceDelayTable:
    """Broadside delay table in sample units.

    Attributes
    ----------
    delays:
        Full table, shape ``(ex, ey, n_depth)``, two-way delays in
        (fractional) sample units at the system sampling frequency.
    quadrant:
        The stored quadrant (non-negative element coordinates), shape
        ``(qx, qy, n_depth)``.
    """

    system: SystemConfig
    transducer: MatrixTransducer
    grid: FocalGrid
    delays: np.ndarray
    quadrant: np.ndarray
    quadrant_x_index: np.ndarray
    quadrant_y_index: np.ndarray

    @classmethod
    def build(cls, system: SystemConfig) -> "ReferenceDelayTable":
        """Compute the reference table for a system configuration."""
        transducer = MatrixTransducer.from_config(system)
        grid = FocalGrid.from_config(system)
        scale = system.acoustic.sampling_frequency / system.acoustic.speed_of_sound
        x = transducer.x[:, None, None]
        y = transducer.y[None, :, None]
        r = grid.depths[None, None, :]
        receive = np.sqrt(x * x + y * y + r * r)
        delays = (r + receive) * scale

        # Quadrant extraction: map every element column/row to the stored
        # non-negative-coordinate entry with the same |x| (resp. |y|).
        qx_index, qx_unique = _fold_axis(transducer.x)
        qy_index, qy_unique = _fold_axis(transducer.y)
        quadrant = delays[np.ix_(qx_unique, qy_unique,
                                 np.arange(len(grid.depths)))]
        return cls(system=system, transducer=transducer, grid=grid,
                   delays=delays, quadrant=quadrant,
                   quadrant_x_index=qx_index, quadrant_y_index=qy_index)

    # ------------------------------------------------------------------ size
    @property
    def full_entry_count(self) -> int:
        """Entries of the conceptual full table (``ex * ey * n_depth``)."""
        return int(np.prod(self.delays.shape))

    @property
    def quadrant_entry_count(self) -> int:
        """Entries actually stored after symmetry pruning (~one quarter)."""
        return int(np.prod(self.quadrant.shape))

    @property
    def symmetry_savings(self) -> float:
        """Fraction of the full table removed by symmetry pruning."""
        return 1.0 - self.quadrant_entry_count / self.full_entry_count

    def storage_bits(self, fmt: QFormat = REFERENCE_DELAY_18B) -> int:
        """Storage of the pruned table in bits for a given delay format."""
        return self.quadrant_entry_count * fmt.total_bits

    def storage_megabits(self, fmt: QFormat = REFERENCE_DELAY_18B) -> float:
        """Storage of the pruned table in Mb (the paper's 45 Mb figure)."""
        return self.storage_bits(fmt) / 1e6

    # ------------------------------------------------------------ directivity
    def directivity_mask(self) -> np.ndarray:
        """Mask of table entries within the elements' directivity cone.

        ``True`` marks entries that are actually needed; entries where the
        off-axis angle from the element to the on-axis point exceeds
        ``directivity_max_angle`` can be pruned (Fig. 3a).
        """
        x = self.transducer.x[:, None, None]
        y = self.transducer.y[None, :, None]
        r = self.grid.depths[None, None, :]
        lateral = np.sqrt(x * x + y * y)
        angle = np.arctan2(lateral, r)
        return angle <= self.transducer.config.directivity_max_angle

    def prunable_fraction(self) -> float:
        """Fraction of full-table entries removable by directivity pruning."""
        mask = self.directivity_mask()
        return 1.0 - float(np.count_nonzero(mask)) / mask.size

    # --------------------------------------------------------------- lookups
    def lookup(self, i_depth: int | np.ndarray) -> np.ndarray:
        """Reference delays for one or more depth indices, shape ``(..., ex, ey)``.

        The lookup reads the stored quadrant and expands it by symmetry,
        mirroring what the hardware does when reading the pruned table.
        """
        i_depth = np.asarray(i_depth)
        quadrant_slice = self.quadrant[:, :, i_depth]
        expanded = quadrant_slice[self.quadrant_x_index][:, self.quadrant_y_index]
        # Move the depth axis (currently last) to the front if vectorised.
        if expanded.ndim == 3 and i_depth.ndim == 1:
            expanded = np.moveaxis(expanded, -1, 0)
        return expanded

    def quantized_quadrant(self, fmt: QFormat = REFERENCE_DELAY_18B) -> np.ndarray:
        """The stored quadrant quantised to the given fixed-point format."""
        return quantize(self.quadrant, fmt)

    def nappe_slice(self, i_depth: int) -> np.ndarray:
        """Full-aperture reference delays at one depth, shape ``(ex, ey)``."""
        return self.lookup(int(i_depth))


def _fold_axis(coords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Fold a symmetric coordinate axis onto its non-negative half.

    Returns ``(index_map, kept_indices)`` where ``kept_indices`` selects the
    elements with non-negative coordinates (the stored half) and
    ``index_map[i]`` gives, for every original element ``i``, the position
    within the kept half that holds the value for ``|coords[i]|``.
    """
    coords = np.asarray(coords, dtype=np.float64)
    tol = 1e-12
    kept = np.flatnonzero(coords >= -tol)
    kept_values = coords[kept]
    order = np.argsort(kept_values)
    kept_sorted = kept[order]
    sorted_values = coords[kept_sorted]
    index_map = np.empty(len(coords), dtype=np.int64)
    for i, value in enumerate(np.abs(coords)):
        j = int(np.argmin(np.abs(sorted_values - value)))
        index_map[i] = j
    return index_map, kept_sorted
