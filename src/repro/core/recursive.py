"""Recursive (incremental) delay calculation baseline.

The paper's related-work section cites Nikolov, Jensen and Tomov's
"Recursive delay calculation unit for parametric beamformer" [17] as the
other main on-the-fly approach: instead of re-evaluating the square root for
every focal point, the receive distance is updated *recursively* as the
focal point advances along a scanline, using the identity

    d(r + dr)^2 = d(r)^2 + 2 * dr * (r - s) + dr^2

where ``d`` is the element-to-point distance, ``r`` the radial position along
the scanline and ``s`` the projection of the element position onto the
scanline direction.  A small number of adds per depth step plus one square
root (itself computable iteratively from the previous value with a
Newton/Heron step) replace the full evaluation.

This module implements that scheme as another :class:`DelayProvider`-style
baseline so the accuracy experiments can compare three on-the-fly strategies:
exact, PWL (TABLEFREE) and recursive.  The interesting property — and the
reason the paper's authors prefer the PWL datapath — is that the Newton-step
variant *accumulates* error along a scanline unless the iteration is given
enough steps, whereas the PWL error is bounded per evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..geometry.coordinates import spherical_to_cartesian
from ..geometry.transducer import MatrixTransducer
from ..geometry.volume import FocalGrid
from .bulk import BulkDelayProviderMixin


@dataclass(frozen=True)
class RecursiveConfig:
    """Design parameters of the recursive delay unit."""

    newton_iterations: int = 1
    """Newton/Heron refinement steps per depth advance (1 in the cited work)."""

    exact_start: bool = True
    """Whether the first depth sample of each scanline uses an exact sqrt
    (a hardware implementation would bootstrap each scanline this way)."""


@dataclass
class RecursiveDelayGenerator(BulkDelayProviderMixin):
    """Delay generator that updates distances recursively along scanlines."""

    system: SystemConfig
    design: RecursiveConfig
    transducer: MatrixTransducer
    grid: FocalGrid
    origin: np.ndarray

    @classmethod
    def from_config(cls, system: SystemConfig,
                    design: RecursiveConfig | None = None,
                    origin: np.ndarray | None = None) -> "RecursiveDelayGenerator":
        """Build the generator for a system configuration."""
        design = design or RecursiveConfig()
        transducer = MatrixTransducer.from_config(system)
        grid = FocalGrid.from_config(system)
        if origin is None:
            origin = np.zeros(3)
        return cls(system=system, design=design, transducer=transducer,
                   grid=grid, origin=np.asarray(origin, dtype=np.float64))

    # ------------------------------------------------------------ internals
    def _samples_per_meter(self) -> float:
        return (self.system.acoustic.sampling_frequency
                / self.system.acoustic.speed_of_sound)

    def _scanline_geometry(self, i_theta: int, i_phi: int) -> tuple[np.ndarray, np.ndarray]:
        """Unit direction of the scanline and element projections onto it."""
        direction = spherical_to_cartesian(self.grid.thetas[i_theta],
                                           self.grid.phis[i_phi], 1.0).reshape(3)
        projections = self.transducer.positions @ direction
        return direction, projections

    def scanline_delays_samples(self, i_theta: int, i_phi: int) -> np.ndarray:
        """Delays along one scanline, updated recursively in depth.

        Returns an array of shape ``(n_depth, n_elements)`` in fractional
        sample units.
        """
        depths = self.grid.depths
        scale = self._samples_per_meter()
        direction, projections = self._scanline_geometry(i_theta, i_phi)
        element_sq = np.sum(self.transducer.positions ** 2, axis=1)

        n_depth = len(depths)
        n_elements = self.transducer.element_count
        out = np.empty((n_depth, n_elements))

        # Transmit term: |r * direction - origin| per depth (cheap, exact).
        points = depths[:, None] * direction[None, :]
        tx = np.linalg.norm(points - self.origin[None, :], axis=1)

        # Receive term: recursive update of d^2 and iterative sqrt.
        r0 = depths[0]
        d_sq = r0 * r0 - 2.0 * r0 * projections + element_sq
        d_sq = np.maximum(d_sq, 0.0)
        if self.design.exact_start:
            d = np.sqrt(d_sq)
        else:
            # A crude bootstrap (the far-field guess) to expose the effect of
            # skipping the exact start.
            d = np.maximum(r0 - projections, 1e-12)
        out[0] = (tx[0] + d) * scale

        for k in range(1, n_depth):
            dr = depths[k] - depths[k - 1]
            # d^2 recurrence: exact, only adds and one multiply per element.
            d_sq = d_sq + 2.0 * dr * (depths[k - 1] - projections) + dr * dr
            d_sq = np.maximum(d_sq, 0.0)
            # Iterative square root: Newton/Heron steps seeded with the
            # previous distance (which is close, since dr is small).
            d = np.maximum(d, 1e-12)
            for _ in range(max(1, self.design.newton_iterations)):
                d = 0.5 * (d + d_sq / d)
            out[k] = (tx[k] + d) * scale
        return out

    def nappe_delays_samples(self, i_depth: int) -> np.ndarray:
        """Delays for one nappe, shape ``(n_theta, n_phi, n_elements)``.

        The recursion runs along depth, so a nappe request replays each
        scanline up to ``i_depth`` — correct but the unfavourable access
        pattern for this architecture (the co-design point of Section II-A).
        """
        n_theta = len(self.grid.thetas)
        n_phi = len(self.grid.phis)
        out = np.empty((n_theta, n_phi, self.transducer.element_count))
        for i_theta in range(n_theta):
            for i_phi in range(n_phi):
                out[i_theta, i_phi] = self.scanline_delays_samples(
                    i_theta, i_phi)[i_depth]
        return out

    def delays_samples(self, points: np.ndarray) -> np.ndarray:
        """Delays for arbitrary points (mapped to the nearest grid scanline).

        Each point is assigned to its nearest grid scanline and depth; the
        recursion is run down that scanline to the requested depth.
        """
        from .tablesteer import _nearest_index
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        from ..geometry.coordinates import cartesian_to_spherical
        theta, phi, r = cartesian_to_spherical(points)
        i_theta = _nearest_index(self.grid.thetas, theta)
        i_phi = _nearest_index(self.grid.phis, phi)
        i_depth = _nearest_index(self.grid.depths, r)
        out = np.empty((points.shape[0], self.transducer.element_count))
        cache: dict[tuple[int, int], np.ndarray] = {}
        for row in range(points.shape[0]):
            key = (int(i_theta[row]), int(i_phi[row]))
            if key not in cache:
                cache[key] = self.scanline_delays_samples(*key)
            out[row] = cache[key][int(i_depth[row])]
        return out

    def delay_indices(self, points: np.ndarray) -> np.ndarray:
        """Delays rounded to integer echo-buffer indices."""
        return np.floor(self.delays_samples(points) + 0.5).astype(np.int64)

    # ------------------------------------------------------------- analysis
    def error_accumulation_along_scanline(self, i_theta: int, i_phi: int,
                                          newton_iterations: int | None = None
                                          ) -> np.ndarray:
        """Per-depth mean absolute error versus the exact computation [samples].

        Shows how the iterative square root's residual error behaves along
        the recursion — the accumulation risk that motivates bounded-error
        alternatives like the PWL approximation.
        """
        from .exact import ExactDelayEngine
        if newton_iterations is not None:
            generator = RecursiveDelayGenerator.from_config(
                self.system,
                RecursiveConfig(newton_iterations=newton_iterations,
                                exact_start=self.design.exact_start),
                origin=self.origin)
        else:
            generator = self
        exact = ExactDelayEngine.from_config(self.system, origin=self.origin)
        approx = generator.scanline_delays_samples(i_theta, i_phi)
        truth = exact.delays_samples(self.grid.scanline_points(i_theta, i_phi))
        return np.mean(np.abs(approx - truth), axis=1)

    def arithmetic_cost_per_point(self) -> dict[str, float]:
        """Operations per focal point per element (for comparison with TABLEFREE).

        The d^2 recurrence needs 3 additions and 1 multiply; each Newton step
        needs 1 divide, 1 add and 1 multiply.  TABLEFREE's PWL datapath needs
        2 additions and 1 multiply (plus the LUT read) — no divider, which is
        the key hardware difference.
        """
        newton = max(1, self.design.newton_iterations)
        return {
            "additions": 3.0 + newton,
            "multiplications": 1.0 + newton,
            "divisions": float(newton),
        }
