"""Core delay-generation algorithms: the paper's primary contribution.

* :mod:`repro.core.exact` — double-precision reference delays (ground truth).
* :mod:`repro.core.piecewise` — piecewise-linear square-root approximation.
* :mod:`repro.core.tablefree` — TABLEFREE on-the-fly delay generation.
* :mod:`repro.core.reference_table` — broadside reference delay table.
* :mod:`repro.core.steering` — per-scanline steering correction planes.
* :mod:`repro.core.tablesteer` — TABLESTEER table-plus-steering generation.
"""

from .bulk import BulkDelayProviderMixin
from .exact import ExactDelayEngine, propagation_delay, receive_delay, transmit_delay
from .multi_origin import (
    MultiOriginTableFree,
    MultiOriginTableSteer,
    OriginSchedule,
    synthetic_aperture_cost_comparison,
)
from .piecewise import IncrementalSqrtEvaluator, PiecewiseSqrt, minimax_linear_sqrt
from .recursive import RecursiveConfig, RecursiveDelayGenerator
from .reference_table import ReferenceDelayTable
from .steering import SteeringCorrections, correction_plane
from .tablefree import TableFreeConfig, TableFreeDelayGenerator
from .tablesteer import (
    TableSteerConfig,
    TableSteerDelayGenerator,
    farfield_error_seconds,
    lagrange_error_bound_seconds,
)

__all__ = [
    "BulkDelayProviderMixin",
    "ExactDelayEngine",
    "propagation_delay",
    "transmit_delay",
    "receive_delay",
    "PiecewiseSqrt",
    "IncrementalSqrtEvaluator",
    "minimax_linear_sqrt",
    "TableFreeConfig",
    "TableFreeDelayGenerator",
    "ReferenceDelayTable",
    "SteeringCorrections",
    "correction_plane",
    "TableSteerConfig",
    "TableSteerDelayGenerator",
    "farfield_error_seconds",
    "lagrange_error_bound_seconds",
    "RecursiveConfig",
    "RecursiveDelayGenerator",
    "OriginSchedule",
    "MultiOriginTableSteer",
    "MultiOriginTableFree",
    "synthetic_aperture_cost_comparison",
]
