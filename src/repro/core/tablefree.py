"""TABLEFREE: on-the-fly delay computation without any delay table.

This models the architecture of Section IV (originally from the authors'
GLSVLSI'14 / BioCAS'14 papers): for every focal point ``S`` and every
receive element ``D`` the two-way delay of Eq. (3) is computed at runtime
using

* an exact-ish transmit term ``|S - O|`` computed once per focal point (its
  cost is amortised over all elements and is therefore "negligible"), and
* a receive term ``|S - D|`` whose square root is evaluated with the
  piecewise-linear approximation of :mod:`repro.core.piecewise`, the only
  per-element arithmetic being two additions plus the PWL multiply-add.

The generator mirrors the hardware numerics: the PWL output for *both*
distance terms is bounded by ``delta`` (0.25 samples), the LUT coefficients
and the accumulated delay live in fixed point, and the final value is rounded
to an integer echo-buffer index.  Section VI-A's accuracy analysis (mean
selection error ~0.25 samples, maximum 2) is reproduced by comparing this
generator against :class:`repro.core.exact.ExactDelayEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig
from ..fixedpoint.format import QFormat, signed, unsigned
from ..fixedpoint.quantize import quantize
from ..geometry.transducer import MatrixTransducer
from ..geometry.volume import FocalGrid
from .bulk import BulkDelayProviderMixin
from .piecewise import IncrementalSqrtEvaluator, PiecewiseSqrt


@dataclass(frozen=True)
class TableFreeConfig:
    """Numerical design parameters of the TABLEFREE datapath."""

    delta: float = 0.25
    """Maximum PWL square-root error, in delay samples (paper: 0.25)."""

    coefficient_format: QFormat = field(default_factory=lambda: signed(3, 26))
    """Fixed-point format of the PWL slope (c1) LUT entries.

    The slope multiplies the full-magnitude squared-distance argument, so it
    needs a generous number of fractional bits for the product error to stay
    well below one sample; 26 fractional bits keep the slope-quantisation
    contribution under ~0.1 samples for the paper's argument range.
    """

    intercept_format: QFormat = field(default_factory=lambda: unsigned(13, 8))
    """Fixed-point format of the PWL intercept (c0) LUT entries."""

    delay_fraction_bits: int = 5
    """Fractional bits kept when accumulating the delay before rounding."""

    quantize_coefficients: bool = True
    """If False the PWL coefficients stay in double precision (algorithmic
    error only); used to separate algorithmic from fixed-point error."""

    approximate_transmit: bool = True
    """If True the transmit distance also goes through the PWL square root,
    matching the paper's error budget of *two* approximations summed."""


@dataclass
class TableFreeDelayGenerator(BulkDelayProviderMixin):
    """Delay generator implementing the TABLEFREE scheme.

    Use :meth:`from_config` to construct; then :meth:`delay_indices` /
    :meth:`delays_samples` produce delays for arbitrary focal points with the
    same calling convention as :class:`repro.core.exact.ExactDelayEngine`, so
    the beamformer and the accuracy analysis can swap providers freely.
    """

    system: SystemConfig
    design: TableFreeConfig
    transducer: MatrixTransducer
    grid: FocalGrid
    origin: np.ndarray
    pwl: PiecewiseSqrt
    _pwl_exact_coeffs: PiecewiseSqrt

    @classmethod
    def from_config(cls, system: SystemConfig,
                    design: TableFreeConfig | None = None,
                    origin: np.ndarray | None = None) -> "TableFreeDelayGenerator":
        """Build the generator, constructing the PWL segmentation for the system.

        The PWL argument is the squared distance expressed in *squared sample*
        units, so that its square root is directly a delay in sample units and
        ``delta`` is an error in samples.
        """
        design = design or TableFreeConfig()
        transducer = MatrixTransducer.from_config(system)
        grid = FocalGrid.from_config(system)
        if origin is None:
            origin = np.zeros(3)
        origin = np.asarray(origin, dtype=np.float64)

        samples_per_meter = (system.acoustic.sampling_frequency
                             / system.acoustic.speed_of_sound)
        # Maximum one-way distance: deepest, most-steered focal point to the
        # farthest aperture corner (or to the origin, whichever is larger).
        corner = np.array([np.max(np.abs(transducer.x)),
                           np.max(np.abs(transducer.y)), 0.0])
        far_point = grid.point(len(grid.thetas) - 1, len(grid.phis) - 1,
                               len(grid.depths) - 1)
        max_distance = max(float(np.linalg.norm(far_point - corner)),
                           float(np.linalg.norm(far_point - origin)))
        max_samples = max_distance * samples_per_meter * 1.05
        pwl_exact = PiecewiseSqrt.build(0.0, max_samples ** 2, design.delta)
        if design.quantize_coefficients:
            pwl = pwl_exact.quantized(design.coefficient_format,
                                      design.intercept_format)
        else:
            pwl = pwl_exact
        return cls(system=system, design=design, transducer=transducer,
                   grid=grid, origin=origin, pwl=pwl,
                   _pwl_exact_coeffs=pwl_exact)

    @property
    def segment_count(self) -> int:
        """Number of PWL segments (the paper reports 70 for its system)."""
        return self.pwl.segment_count

    def _samples_per_meter(self) -> float:
        return (self.system.acoustic.sampling_frequency
                / self.system.acoustic.speed_of_sound)

    def _squared_args_samples(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Squared TX and RX distances in squared-sample units.

        Returns ``(tx_sq, rx_sq)`` with shapes ``(n_points,)`` and
        ``(n_points, n_elements)``.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        scale = self._samples_per_meter()
        tx_delta = (points - self.origin[None, :]) * scale
        tx_sq = np.sum(tx_delta * tx_delta, axis=-1)
        rx_delta = (points[:, None, :] - self.transducer.positions[None, :, :]) * scale
        rx_sq = np.sum(rx_delta * rx_delta, axis=-1)
        return tx_sq, rx_sq

    def delays_samples(self, points: np.ndarray) -> np.ndarray:
        """Approximate delays in fractional sample units, shape ``(n_points, n_elements)``."""
        tx_sq, rx_sq = self._squared_args_samples(points)
        rx = self.pwl.evaluate(rx_sq)
        if self.design.approximate_transmit:
            tx = self.pwl.evaluate(tx_sq)
        else:
            tx = np.sqrt(tx_sq)
        total = tx[:, None] + rx
        fraction = self.design.delay_fraction_bits
        if fraction is not None and fraction >= 0:
            accumulate_fmt = unsigned(self.system.delay_index_bits, fraction)
            total = quantize(total, accumulate_fmt)
        return total

    def delay_indices(self, points: np.ndarray) -> np.ndarray:
        """Approximate delays rounded to integer echo-buffer indices."""
        samples = self.delays_samples(points)
        return np.floor(samples + 0.5).astype(np.int64)

    def scanline_delays_samples(self, i_theta: int, i_phi: int) -> np.ndarray:
        """Delays for one grid scanline, shape ``(n_depth, n_elements)``."""
        return self.delays_samples(self.grid.scanline_points(i_theta, i_phi))

    def nappe_delays_samples(self, i_depth: int) -> np.ndarray:
        """Delays for one nappe, shape ``(n_theta, n_phi, n_elements)``."""
        points = self.grid.nappe_points(i_depth)
        shape = points.shape[:-1]
        delays = self.delays_samples(points.reshape(-1, 3))
        return delays.reshape(*shape, -1)

    def incremental_evaluator(self) -> IncrementalSqrtEvaluator:
        """An incremental segment-tracking evaluator over this generator's PWL.

        Used by experiment E3 to quantify how many segment steps are needed
        when focal points are visited in scanline or nappe order.
        """
        return IncrementalSqrtEvaluator(pwl=self.pwl)

    def segment_step_statistics(self, i_theta: int = 0, i_phi: int = 0,
                                element_index: int = 0) -> dict[str, float]:
        """Segment-tracking statistics along one scanline for one element.

        Returns the mean and maximum number of segment steps per focal point
        when sweeping the scanline in depth order — the quantity that must be
        small for the TABLEFREE control logic to avoid a segment search.
        """
        points = self.grid.scanline_points(i_theta, i_phi)
        _tx_sq, rx_sq = self._squared_args_samples(points)
        args = rx_sq[:, element_index]
        evaluator = self.incremental_evaluator()
        evaluator.reset(int(self.pwl.segment_index(args[0])))
        evaluator.evaluate_sequence(args)
        return {
            "mean_steps": evaluator.mean_steps_per_evaluation,
            "max_steps": float(evaluator.max_steps_single_evaluation),
            "evaluations": float(evaluator.total_evaluations),
        }
