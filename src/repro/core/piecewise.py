"""Piecewise-linear approximation of the square root (TABLEFREE datapath).

The TABLEFREE architecture replaces the exact square root of Eq. (3) with a
piecewise-linear (PWL) approximation whose maximum absolute error is bounded
by a chosen ``delta`` (0.25 delay samples in the paper), which required 70
segments for the paper's argument range (Section IV-B / Fig. 2).

Two evaluation strategies are provided:

* :meth:`PiecewiseSqrt.evaluate` — find the segment by binary search; this is
  what a naive implementation would do for every sample.
* :class:`IncrementalSqrtEvaluator` — track the active segment incrementally,
  exploiting the paper's observation that the square-root argument changes
  only slightly between consecutive focal points, so the correct segment is
  almost always the current one or a neighbour.  This is the key hardware
  simplification: no parallel segment search is needed, only a tiny
  up/down-stepping control.

Segments use the *minimax* (equioscillating) linear fit on each interval, not
the chord: for the concave square root this halves the error of the chord and
is what makes ~70 segments sufficient for ``delta = 0.25`` over the paper's
argument range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fixedpoint.format import QFormat
from ..fixedpoint.quantize import quantize


def _chord_slope(a: float, b: float) -> float:
    """Slope of the chord of sqrt between ``a`` and ``b``."""
    return (np.sqrt(b) - np.sqrt(a)) / (b - a)


def minimax_linear_sqrt(a: float, b: float) -> tuple[float, float, float]:
    """Best uniform linear approximation of ``sqrt`` on ``[a, b]``.

    Returns ``(c1, c0, max_error)`` such that ``c1 * x + c0`` equioscillates
    around ``sqrt(x)`` on the interval with maximum absolute error
    ``max_error``.  Requires ``0 <= a < b``.
    """
    if not 0 <= a < b:
        raise ValueError("need 0 <= a < b")
    c1 = _chord_slope(a, b)
    # The interior extremum of sqrt(x) - c1*x is where 1/(2*sqrt(xi)) == c1.
    xi = 1.0 / (4.0 * c1 * c1)
    xi = min(max(xi, a), b)
    # Chord value at xi minus sqrt(xi) is the (negative) chord error; the
    # minimax fit shifts the chord by half that gap.
    chord_at_xi = np.sqrt(a) + c1 * (xi - a)
    gap = np.sqrt(xi) - chord_at_xi          # > 0 for concave sqrt
    c0 = np.sqrt(a) - c1 * a + gap / 2.0
    max_error = gap / 2.0
    return float(c1), float(c0), float(max_error)


def _widest_segment_end(a: float, x_max: float, delta: float) -> float:
    """Largest ``b`` such that the minimax error of sqrt on ``[a, b]`` is <= delta."""
    # Check whether one segment can cover the whole remaining range.
    if minimax_linear_sqrt(a, x_max)[2] <= delta:
        return x_max
    # Exponential probe to bracket the widest admissible end point: ``lo``
    # always satisfies the error bound, ``hi`` violates it.
    step = max(a * 1e-3, 64.0 * delta * delta * 0.25)
    lo = a
    hi = min(a + step, x_max)
    while hi < x_max and minimax_linear_sqrt(a, hi)[2] <= delta:
        lo = hi
        step *= 2.0
        hi = min(a + step, x_max)
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if minimax_linear_sqrt(a, mid)[2] <= delta:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-9 * max(1.0, hi):
            break
    return lo


@dataclass(frozen=True)
class PiecewiseSqrt:
    """A piecewise-linear approximation of ``sqrt`` on ``[x_min, x_max]``.

    Attributes
    ----------
    breakpoints:
        Segment boundaries, shape ``(n_segments + 1,)``; ``breakpoints[0]`` is
        ``x_min`` and ``breakpoints[-1]`` is ``x_max``.
    slopes, intercepts:
        Per-segment linear coefficients ``c1`` and ``c0`` (Fig. 2a of the
        paper stores exactly these in the ``c1``/``c0`` LUTs).
    delta:
        The error bound the segmentation was built for.
    """

    breakpoints: np.ndarray
    slopes: np.ndarray
    intercepts: np.ndarray
    delta: float

    @classmethod
    def build(cls, x_min: float, x_max: float, delta: float) -> "PiecewiseSqrt":
        """Greedily build the minimal-width segmentation for an error bound.

        Starting at ``x_min``, each segment is extended as far as the minimax
        error allows; this yields a near-minimal number of segments (the
        paper reports 70 for its range with ``delta = 0.25`` samples).
        """
        if delta <= 0:
            raise ValueError("delta must be positive")
        if not 0 <= x_min < x_max:
            raise ValueError("need 0 <= x_min < x_max")
        breakpoints = [x_min]
        slopes: list[float] = []
        intercepts: list[float] = []
        a = x_min
        # Guard against pathological configurations producing millions of
        # segments: delta below ~1e-6 of sqrt(x_max) is not a realistic
        # hardware design point.
        max_segments = 1_000_000
        while a < x_max:
            b = _widest_segment_end(a, x_max, delta)
            if b <= a:
                b = min(x_max, a + max(a * 1e-6, 1e-9))
            c1, c0, _err = minimax_linear_sqrt(a, b)
            breakpoints.append(b)
            slopes.append(c1)
            intercepts.append(c0)
            a = b
            if len(slopes) > max_segments:
                raise RuntimeError("segmentation did not converge; delta too small")
        return cls(breakpoints=np.asarray(breakpoints, dtype=np.float64),
                   slopes=np.asarray(slopes, dtype=np.float64),
                   intercepts=np.asarray(intercepts, dtype=np.float64),
                   delta=float(delta))

    @property
    def segment_count(self) -> int:
        """Number of linear segments."""
        return len(self.slopes)

    @property
    def x_min(self) -> float:
        """Lower end of the approximated domain."""
        return float(self.breakpoints[0])

    @property
    def x_max(self) -> float:
        """Upper end of the approximated domain."""
        return float(self.breakpoints[-1])

    def segment_index(self, x: np.ndarray | float) -> np.ndarray:
        """Index of the segment containing each ``x`` (clamped to the domain)."""
        x = np.asarray(x, dtype=np.float64)
        idx = np.searchsorted(self.breakpoints, x, side="right") - 1
        return np.clip(idx, 0, self.segment_count - 1)

    def evaluate(self, x: np.ndarray | float) -> np.ndarray:
        """Evaluate the PWL approximation (binary-search segment selection)."""
        x = np.asarray(x, dtype=np.float64)
        idx = self.segment_index(x)
        return self.slopes[idx] * x + self.intercepts[idx]

    def error(self, x: np.ndarray | float) -> np.ndarray:
        """Signed approximation error ``pwl(x) - sqrt(x)``."""
        x = np.asarray(x, dtype=np.float64)
        return self.evaluate(x) - np.sqrt(x)

    def max_error(self, samples_per_segment: int = 64) -> float:
        """Numerically estimated maximum absolute error over the domain."""
        worst = 0.0
        for i in range(self.segment_count):
            xs = np.linspace(self.breakpoints[i], self.breakpoints[i + 1],
                             samples_per_segment)
            worst = max(worst, float(np.max(np.abs(self.error(xs)))))
        return worst

    def quantized(self, coefficient_format: QFormat,
                  intercept_format: QFormat | None = None) -> "PiecewiseSqrt":
        """Return a copy with LUT coefficients quantised to fixed point.

        Models the finite-precision ``c1``/``c0`` LUTs of the TABLEFREE
        hardware (Fig. 2a).  The slope and intercept formats may differ
        because slopes are small fractional numbers while intercepts span the
        full output range.
        """
        if intercept_format is None:
            intercept_format = coefficient_format
        return PiecewiseSqrt(
            breakpoints=self.breakpoints.copy(),
            slopes=quantize(self.slopes, coefficient_format),
            intercepts=quantize(self.intercepts, intercept_format),
            delta=self.delta,
        )

    def lut_storage_bits(self, coefficient_format: QFormat,
                         intercept_format: QFormat | None = None) -> int:
        """Total LUT storage (bits) for the c1/c0 tables plus breakpoints."""
        if intercept_format is None:
            intercept_format = coefficient_format
        slope_bits = self.segment_count * coefficient_format.total_bits
        intercept_bits = self.segment_count * intercept_format.total_bits
        # Breakpoints are compared against the argument; assume they are
        # stored at the same precision as the intercepts.
        breakpoint_bits = (self.segment_count + 1) * intercept_format.total_bits
        return slope_bits + intercept_bits + breakpoint_bits


@dataclass
class IncrementalSqrtEvaluator:
    """Evaluate a :class:`PiecewiseSqrt` by tracking the active segment.

    The evaluator keeps the index of the segment used for the previous
    argument and, for each new argument, steps the index up or down until the
    argument falls inside the segment.  When consecutive arguments change
    slowly — as they do when focal points are visited nappe-by-nappe or along
    a scanline — almost every evaluation needs zero or one step, which is the
    property the TABLEFREE hardware relies on to avoid a full segment search.

    The evaluator records the number of steps taken so experiments can verify
    the "gradual transition" claim quantitatively.
    """

    pwl: PiecewiseSqrt
    current_segment: int = 0
    total_steps: int = 0
    total_evaluations: int = 0
    max_steps_single_evaluation: int = 0

    def reset(self, segment: int = 0) -> None:
        """Reset the tracked segment and the step counters."""
        self.current_segment = int(np.clip(segment, 0, self.pwl.segment_count - 1))
        self.total_steps = 0
        self.total_evaluations = 0
        self.max_steps_single_evaluation = 0

    def evaluate(self, x: float) -> float:
        """Evaluate ``sqrt(x)`` approximately, updating the tracked segment."""
        breakpoints = self.pwl.breakpoints
        n = self.pwl.segment_count
        idx = self.current_segment
        steps = 0
        x = float(x)
        while idx + 1 < n and x >= breakpoints[idx + 1]:
            idx += 1
            steps += 1
        while idx > 0 and x < breakpoints[idx]:
            idx -= 1
            steps += 1
        self.current_segment = idx
        self.total_steps += steps
        self.total_evaluations += 1
        self.max_steps_single_evaluation = max(self.max_steps_single_evaluation, steps)
        return float(self.pwl.slopes[idx] * x + self.pwl.intercepts[idx])

    def evaluate_sequence(self, xs: np.ndarray) -> np.ndarray:
        """Evaluate a whole sequence of arguments in order."""
        return np.array([self.evaluate(x) for x in np.asarray(xs, dtype=np.float64)])

    @property
    def mean_steps_per_evaluation(self) -> float:
        """Average number of segment steps per evaluation (0 when idle)."""
        if self.total_evaluations == 0:
            return 0.0
        return self.total_steps / self.total_evaluations
