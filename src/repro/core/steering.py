"""Steering-plane correction coefficients for the TABLESTEER architecture.

Section V-A derives (Eq. 7) that, under the far-field (first-order Taylor)
approximation, the delay for a point ``S`` on the steered line of sight
``(theta, phi)`` at radius ``r`` equals the broadside reference delay at the
same radius minus a correction that is *linear in the element coordinates*:

    tp(O, S, D)  ~=  tp(O, R, D)  -  ( xD * cos(phi) * sin(theta) + yD * sin(phi) ) / c

Geometrically the correction is a tilted plane over the aperture
(Fig. 3c) whose inclination depends only on the steering angles — the delay
table is "steered" by adding this plane.

The correction is separable into an x-term ``-xD cos(phi) sin(theta) / c``
(depends on xD, theta and phi) and a y-term ``-yD sin(phi) / c`` (depends on
yD and phi only).  Exploiting the symmetry of ``cos(phi)`` about zero, the
paper precomputes ``ex * n_theta * n_phi/2 + ey * n_phi`` values — the
``832 x 10^3`` figure of Section V-B — instead of one full plane per
scanline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..fixedpoint.format import CORRECTION_18B, QFormat
from ..fixedpoint.quantize import quantize
from ..geometry.transducer import MatrixTransducer
from ..geometry.volume import FocalGrid


def correction_plane(element_x: np.ndarray,
                     element_y: np.ndarray,
                     theta: float,
                     phi: float,
                     speed_of_sound: float,
                     sampling_frequency: float | None = None) -> np.ndarray:
    """The steering correction for every element, for one line of sight.

    Parameters
    ----------
    element_x, element_y:
        Element coordinate axes [m]; the result has shape
        ``(len(element_x), len(element_y))``.
    theta, phi:
        Steering angles [rad].
    speed_of_sound:
        ``c`` [m/s].
    sampling_frequency:
        If given, the correction is returned in sample units instead of
        seconds.

    Returns
    -------
    numpy.ndarray
        Correction values (to be *added* to the reference delay), i.e. the
        ``- (xD cos(phi) sin(theta) + yD sin(phi)) / c`` term of Eq. (7).
    """
    x = np.asarray(element_x, dtype=np.float64)[:, None]
    y = np.asarray(element_y, dtype=np.float64)[None, :]
    seconds = -(x * np.cos(phi) * np.sin(theta) + y * np.sin(phi)) / speed_of_sound
    if sampling_frequency is None:
        return seconds
    return seconds * sampling_frequency


@dataclass(frozen=True)
class SteeringCorrections:
    """Precomputed steering corrections for every scanline of a focal grid.

    Corrections are stored in the separable form the paper proposes:
    ``x_terms[i_x, i_theta, i_phi]`` and ``y_terms[i_y, i_phi]`` (in sample
    units), with the full per-scanline plane recovered as their broadcast
    sum.  ``precomputed_value_count`` reports the number of distinct values a
    hardware table would hold when additionally exploiting the symmetry of
    ``cos(phi)`` about zero.
    """

    system: SystemConfig
    transducer: MatrixTransducer
    grid: FocalGrid
    x_terms: np.ndarray
    y_terms: np.ndarray

    @classmethod
    def build(cls, system: SystemConfig) -> "SteeringCorrections":
        """Precompute the correction terms for every scanline of the system."""
        transducer = MatrixTransducer.from_config(system)
        grid = FocalGrid.from_config(system)
        fs = system.acoustic.sampling_frequency
        c = system.acoustic.speed_of_sound
        x = transducer.x[:, None, None]
        theta = grid.thetas[None, :, None]
        phi = grid.phis[None, None, :]
        x_terms = -(x * np.cos(phi) * np.sin(theta)) / c * fs
        y = transducer.y[:, None]
        phi_y = grid.phis[None, :]
        y_terms = -(y * np.sin(phi_y)) / c * fs
        return cls(system=system, transducer=transducer, grid=grid,
                   x_terms=x_terms, y_terms=y_terms)

    def plane(self, i_theta: int, i_phi: int) -> np.ndarray:
        """Correction plane for scanline ``(i_theta, i_phi)``, shape ``(ex, ey)`` [samples]."""
        return (self.x_terms[:, i_theta, i_phi][:, None]
                + self.y_terms[:, i_phi][None, :])

    def plane_seconds(self, i_theta: int, i_phi: int) -> np.ndarray:
        """Correction plane in seconds rather than sample units."""
        return self.plane(i_theta, i_phi) / self.system.acoustic.sampling_frequency

    @property
    def precomputed_value_count(self) -> int:
        """Distinct correction values a hardware table needs to hold.

        ``cos(phi)`` is symmetric about ``phi = 0`` so the x-term only needs
        half of the phi axis; the y-term needs every ``(yD, phi)`` pair.  For
        the paper system this is ``100 * 128 * 64 + 100 * 128 = 832e3``.
        """
        ex = self.transducer.config.elements_x
        ey = self.transducer.config.elements_y
        n_theta = len(self.grid.thetas)
        n_phi = len(self.grid.phis)
        half_phi = (n_phi + 1) // 2
        return ex * n_theta * half_phi + ey * n_phi

    def storage_bits(self, fmt: QFormat = CORRECTION_18B) -> int:
        """Storage of the precomputed corrections in bits (paper: 14.3 Mb)."""
        return self.precomputed_value_count * fmt.total_bits

    def storage_megabits(self, fmt: QFormat = CORRECTION_18B) -> float:
        """Storage of the precomputed corrections in Mb."""
        return self.storage_bits(fmt) / 1e6

    def quantized_plane(self, i_theta: int, i_phi: int,
                        fmt: QFormat = CORRECTION_18B) -> np.ndarray:
        """Correction plane quantised to the hardware fixed-point format."""
        return quantize(self.plane(i_theta, i_phi), fmt)

    def max_correction_samples(self) -> float:
        """Largest correction magnitude over all scanlines and elements [samples].

        Useful to size the integer part of the correction fixed-point format.
        """
        max_x = float(np.max(np.abs(self.x_terms)))
        max_y = float(np.max(np.abs(self.y_terms)))
        return max_x + max_y
