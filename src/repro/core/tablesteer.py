"""TABLESTEER: reference delay table plus steering corrections.

This is the paper's second delay-generation scheme (Section V): keep the
broadside reference table of :mod:`repro.core.reference_table` in (on-chip)
memory and obtain the delay for any steered focal point by adding the
per-scanline correction plane of :mod:`repro.core.steering`:

    delay(theta, phi, r, D) = reference(r, D) + correction(theta, phi, D)

The generator supports

* a *float* mode, isolating the algorithmic (far-field Taylor) error, and
* *fixed-point* modes parameterised by the total bit width (13, 14 or 18
  bits as in the paper), where the reference delays are stored unsigned, the
  corrections signed, the two are added with aligned binary points and the
  result is rounded to an integer echo-buffer index — exactly the datapath of
  Fig. 4.

Like the other delay providers it exposes ``delays_samples`` /
``delay_indices`` on arbitrary points (mapped to the nearest grid scanline
and depth, since TABLESTEER is by construction a gridded generator) plus
grid-native accessors (``scanline_delays_samples``, ``nappe_delays_samples``)
used by the beamformer and the accuracy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig
from ..fixedpoint.array import FixedPointArray
from ..fixedpoint.format import QFormat, tablesteer_formats
from ..geometry.coordinates import cartesian_to_spherical
from ..geometry.transducer import MatrixTransducer
from ..geometry.volume import FocalGrid
from .bulk import BulkDelayProviderMixin
from .reference_table import ReferenceDelayTable
from .steering import SteeringCorrections


@dataclass(frozen=True)
class TableSteerConfig:
    """Numerical design parameters of the TABLESTEER datapath."""

    total_bits: int | None = 18
    """Total fixed-point width (13, 14 or 18 in the paper).  ``None`` selects
    the floating-point mode that isolates the algorithmic steering error."""

    @property
    def is_fixed_point(self) -> bool:
        """Whether the generator quantises delays and corrections."""
        return self.total_bits is not None

    def formats(self) -> tuple[QFormat, QFormat]:
        """Reference-delay and correction formats for the configured width."""
        if self.total_bits is None:
            raise ValueError("floating-point mode has no fixed-point formats")
        return tablesteer_formats(self.total_bits)


@dataclass
class TableSteerDelayGenerator(BulkDelayProviderMixin):
    """Delay generator implementing the TABLESTEER scheme."""

    system: SystemConfig
    design: TableSteerConfig
    reference: ReferenceDelayTable
    corrections: SteeringCorrections
    transducer: MatrixTransducer
    grid: FocalGrid
    _reference_fixed: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def from_config(cls, system: SystemConfig,
                    design: TableSteerConfig | None = None) -> "TableSteerDelayGenerator":
        """Build the generator: reference table plus precomputed corrections."""
        design = design or TableSteerConfig()
        reference = ReferenceDelayTable.build(system)
        corrections = SteeringCorrections.build(system)
        generator = cls(system=system, design=design, reference=reference,
                        corrections=corrections,
                        transducer=reference.transducer, grid=reference.grid)
        if design.is_fixed_point:
            ref_fmt, _corr_fmt = design.formats()
            object.__setattr__(generator, "_reference_fixed",
                               reference.quantized_quadrant(ref_fmt))
        return generator

    # ------------------------------------------------------------- grid API
    def scanline_delays_samples(self, i_theta: int, i_phi: int) -> np.ndarray:
        """Delays for one grid scanline, shape ``(n_depth, n_elements)`` [samples]."""
        n_depth = len(self.grid.depths)
        reference = self._reference_all_depths()          # (n_depth, ex, ey)
        plane = self._correction_plane(i_theta, i_phi)     # (ex, ey)
        total = reference + plane[None, :, :]
        return total.reshape(n_depth, -1)

    def nappe_delays_samples(self, i_depth: int) -> np.ndarray:
        """Delays for one nappe, shape ``(n_theta, n_phi, n_elements)`` [samples]."""
        reference = self._reference_at_depth(i_depth)      # (ex, ey)
        n_theta = len(self.grid.thetas)
        n_phi = len(self.grid.phis)
        out = np.empty((n_theta, n_phi, reference.size))
        for i_theta in range(n_theta):
            for i_phi in range(n_phi):
                plane = self._correction_plane(i_theta, i_phi)
                out[i_theta, i_phi] = (reference + plane).ravel()
        return out

    def grid_delay_samples(self, i_theta: int, i_phi: int, i_depth: int) -> np.ndarray:
        """Delays for a single focal point, shape ``(n_elements,)`` [samples]."""
        reference = self._reference_at_depth(i_depth)
        plane = self._correction_plane(i_theta, i_phi)
        return (reference + plane).ravel()

    # ----------------------------------------------------- point-based API
    def delays_samples(self, points: np.ndarray) -> np.ndarray:
        """Delays for arbitrary Cartesian points, shape ``(n_points, n_elements)``.

        Each point is mapped to the nearest grid scanline and depth before the
        table lookup; points far from any grid node therefore include a
        gridding error on top of the steering approximation.  The accuracy
        experiments always evaluate on grid points, where the gridding error
        is zero.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        theta, phi, r = cartesian_to_spherical(points)
        i_theta = _nearest_index(self.grid.thetas, theta)
        i_phi = _nearest_index(self.grid.phis, phi)
        i_depth = _nearest_index(self.grid.depths, r)
        out = np.empty((points.shape[0], self.transducer.element_count))
        for row in range(points.shape[0]):
            out[row] = self.grid_delay_samples(int(i_theta[row]),
                                               int(i_phi[row]),
                                               int(i_depth[row]))
        return out

    def delay_indices(self, points: np.ndarray) -> np.ndarray:
        """Delays rounded to integer echo-buffer indices."""
        samples = self.delays_samples(points)
        return np.floor(samples + 0.5).astype(np.int64)

    # ------------------------------------------------------------ internals
    def _correction_plane(self, i_theta: int, i_phi: int) -> np.ndarray:
        if not self.design.is_fixed_point:
            return self.corrections.plane(i_theta, i_phi)
        # The hardware stores the separable x- and y-terms individually
        # (Section V-B: the overall delay is a sum of three stored values),
        # so each term is quantised on its own before the addition.
        from ..fixedpoint.quantize import quantize
        _ref_fmt, corr_fmt = self.design.formats()
        x_term = quantize(self.corrections.x_terms[:, i_theta, i_phi], corr_fmt)
        y_term = quantize(self.corrections.y_terms[:, i_phi], corr_fmt)
        return x_term[:, None] + y_term[None, :]

    def _reference_at_depth(self, i_depth: int) -> np.ndarray:
        if not self.design.is_fixed_point:
            return self.reference.lookup(int(i_depth))
        quadrant = self._reference_fixed[:, :, int(i_depth)]
        expanded = quadrant[self.reference.quadrant_x_index]
        return expanded[:, self.reference.quadrant_y_index]

    def _reference_all_depths(self) -> np.ndarray:
        indices = np.arange(len(self.grid.depths))
        if not self.design.is_fixed_point:
            return self.reference.lookup(indices)
        quadrant = self._reference_fixed[:, :, indices]
        expanded = quadrant[self.reference.quadrant_x_index]
        expanded = expanded[:, self.reference.quadrant_y_index]
        return np.moveaxis(expanded, -1, 0)

    # ----------------------------------------------------------- reporting
    def fixed_point_datapath(self, i_theta: int, i_phi: int,
                             i_depth: int) -> FixedPointArray:
        """Bit-aligned fixed-point sum for one focal point (datapath model).

        Returns the :class:`FixedPointArray` holding the reference + correction
        sum before final rounding; used by tests that verify the rounding stage
        against the float datapath.
        """
        if not self.design.is_fixed_point:
            raise ValueError("datapath model requires a fixed-point design")
        ref_fmt, corr_fmt = self.design.formats()
        ex = self.transducer.config.elements_x
        ey = self.transducer.config.elements_y
        reference = FixedPointArray.from_float(
            self._reference_at_depth(i_depth).ravel(), ref_fmt)
        x_term = FixedPointArray.from_float(
            np.repeat(self.corrections.x_terms[:, i_theta, i_phi], ey), corr_fmt)
        y_term = FixedPointArray.from_float(
            np.tile(self.corrections.y_terms[:, i_phi], ex), corr_fmt)
        return reference.add(x_term).add(y_term)

    def storage_summary(self) -> dict[str, float]:
        """Storage cost summary in megabits (reference table + corrections)."""
        if self.design.is_fixed_point:
            ref_fmt, corr_fmt = self.design.formats()
        else:
            from ..fixedpoint.format import REFERENCE_DELAY_18B, CORRECTION_18B
            ref_fmt, corr_fmt = REFERENCE_DELAY_18B, CORRECTION_18B
        return {
            "reference_entries": float(self.reference.quadrant_entry_count),
            "reference_megabits": self.reference.storage_megabits(ref_fmt),
            "correction_entries": float(self.corrections.precomputed_value_count),
            "correction_megabits": self.corrections.storage_megabits(corr_fmt),
            "total_megabits": (self.reference.storage_megabits(ref_fmt)
                               + self.corrections.storage_megabits(corr_fmt)),
        }


def _nearest_index(grid_values: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Index of the nearest grid value for each element of ``values``."""
    grid_values = np.asarray(grid_values, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    idx = np.searchsorted(grid_values, values)
    idx = np.clip(idx, 1, len(grid_values) - 1)
    left = grid_values[idx - 1]
    right = grid_values[idx]
    choose_left = np.abs(values - left) <= np.abs(right - values)
    return np.where(choose_left, idx - 1, idx).astype(np.int64)


# --------------------------------------------------------------------------
# Error bounds of the far-field (first-order Taylor) approximation
# --------------------------------------------------------------------------
def farfield_error_seconds(theta: float, phi: float, r: float,
                           element_x: np.ndarray, element_y: np.ndarray,
                           speed_of_sound: float) -> np.ndarray:
    """Exact error of the Eq. (7) approximation for one focal point.

    Returns ``approx - exact`` (seconds) for every element, where ``approx``
    is the reference-plus-plane delay and ``exact`` the true two-way delay of
    Eq. (6).  Used to validate the theoretical Lagrange-type bound of
    Section V-A and to map where in the volume the worst errors occur.
    """
    x = np.asarray(element_x, dtype=np.float64)[:, None]
    y = np.asarray(element_y, dtype=np.float64)[None, :]
    # Exact steered receive distance (law of cosines form of Eq. 6).
    steer = x * np.cos(phi) * np.sin(theta) + y * np.sin(phi)
    exact_rx = np.sqrt(r * r + x * x + y * y - 2.0 * r * steer)
    reference_rx = np.sqrt(r * r + x * x + y * y)
    approx_rx = reference_rx - steer
    return (approx_rx - exact_rx) / speed_of_sound


def lagrange_error_bound_seconds(system: SystemConfig) -> float:
    """Conservative bound on the far-field approximation error [s].

    The second-order remainder of the expansion of
    ``sqrt(r^2 + d^2 - 2 r s) - sqrt(r^2 + d^2)`` in ``s`` (with
    ``d^2 = xD^2 + yD^2`` and ``s`` the steering projection) is bounded by
    ``s^2 / (2 * (r - |s|))`` for ``|s| < r``; evaluating it at the worst
    corner of the aperture, the maximum steering angle and the shallowest
    depth gives a loose bound comparable to the paper's 6.7 us figure.
    """
    transducer = MatrixTransducer.from_config(system)
    grid = FocalGrid.from_config(system)
    c = system.acoustic.speed_of_sound
    x_max = float(np.max(np.abs(transducer.x))) if len(transducer.x) else 0.0
    y_max = float(np.max(np.abs(transducer.y))) if len(transducer.y) else 0.0
    theta_max = float(np.max(np.abs(grid.thetas)))
    phi_max = float(np.max(np.abs(grid.phis)))
    s_max = x_max * np.sin(theta_max) + y_max * np.sin(phi_max)
    r_min = float(grid.depths[0])
    # Only radii safely above the aperture projection admit a finite bound;
    # clamp to the smallest such radius in the grid.
    usable = grid.depths[grid.depths > 1.5 * s_max]
    r_eff = float(usable[0]) if len(usable) else max(r_min, 2.0 * s_max)
    bound = (s_max ** 2) / (2.0 * (r_eff - s_max))
    return float(bound / c)
