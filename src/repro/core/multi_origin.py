"""Synthetic-aperture / multi-origin delay generation support.

Section V of the paper notes that TABLESTEER assumes a *constant* sound
origin across frames; techniques like synthetic aperture imaging, which
reposition the (virtual) source ``O`` at every insonification, "can be
supported by way of multiple precalculated delay tables, at extra hardware
cost", while TABLEFREE handles arbitrary origins natively because the
transmit distance is computed on the fly.  The conclusion lists this
flexibility as one of TABLEFREE's advantages.

This module makes that comparison concrete:

* :class:`OriginSchedule` — a set of transmit origins (one per
  insonification), with factories for the common synthetic-aperture layouts
  (virtual sources behind the probe, translated sub-apertures).
* :class:`MultiOriginTableSteer` — one TABLESTEER reference table per origin
  plus the shared steering corrections; exposes per-origin delay generation
  and the aggregate storage / bandwidth cost, which is what the paper means
  by "extra hardware cost".
* :class:`MultiOriginTableFree` — a thin wrapper that re-targets a single
  TABLEFREE generator to each origin, demonstrating that its cost is
  independent of the origin count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig
from ..fixedpoint.format import QFormat, REFERENCE_DELAY_18B
from ..geometry.transducer import MatrixTransducer
from ..geometry.volume import FocalGrid
from .exact import ExactDelayEngine
from .steering import SteeringCorrections
from .tablefree import TableFreeConfig, TableFreeDelayGenerator


@dataclass(frozen=True)
class OriginSchedule:
    """Transmit origins used across the insonifications of one volume.

    Attributes
    ----------
    origins:
        Origin positions, shape ``(n_insonifications, 3)`` [m].
    name:
        Human-readable label of the acquisition scheme.
    """

    origins: np.ndarray
    name: str = "custom"

    def __post_init__(self) -> None:
        origins = np.atleast_2d(np.asarray(self.origins, dtype=np.float64))
        if origins.shape[1] != 3:
            raise ValueError("origins must have shape (n, 3)")
        object.__setattr__(self, "origins", origins)

    @property
    def count(self) -> int:
        """Number of distinct transmit origins."""
        return self.origins.shape[0]

    @classmethod
    def single_center(cls) -> "OriginSchedule":
        """The paper's default: one origin at the transducer centre."""
        return cls(origins=np.zeros((1, 3)), name="center")

    @classmethod
    def virtual_sources_behind_probe(cls, system: SystemConfig,
                                     count: int = 8,
                                     standoff_wavelengths: float = 16.0) -> "OriginSchedule":
        """Virtual point sources placed behind the aperture (diverging waves).

        The sources are spread along x at a fixed negative z stand-off, a
        common synthetic-aperture transmit scheme for fast volumetric
        imaging.
        """
        if count < 1:
            raise ValueError("need at least one virtual source")
        aperture = system.transducer.aperture_x
        standoff = standoff_wavelengths * system.acoustic.wavelength
        xs = np.linspace(-aperture / 2, aperture / 2, count)
        origins = np.stack([xs, np.zeros(count), np.full(count, -standoff)],
                           axis=-1)
        return cls(origins=origins, name="virtual_sources")

    @classmethod
    def translated_subapertures(cls, system: SystemConfig,
                                count: int = 4) -> "OriginSchedule":
        """Origins at the centres of ``count`` sub-apertures along x."""
        if count < 1:
            raise ValueError("need at least one sub-aperture")
        aperture = system.transducer.aperture_x
        xs = (np.arange(count) - (count - 1) / 2) * aperture / max(count, 1)
        origins = np.stack([xs, np.zeros(count), np.zeros(count)], axis=-1)
        return cls(origins=origins, name="subapertures")


@dataclass
class MultiOriginTableSteer:
    """TABLESTEER extended to a schedule of transmit origins.

    One reference delay table is (conceptually) stored per origin; the
    steering corrections depend only on the receive geometry and are shared.
    The tables here are generated from the exact engine per origin — the
    point of this class is the delay values and the *cost accounting*, not a
    new approximation.
    """

    system: SystemConfig
    schedule: OriginSchedule
    corrections: SteeringCorrections
    transducer: MatrixTransducer
    grid: FocalGrid
    _engines: list[ExactDelayEngine] = field(default_factory=list, repr=False)

    @classmethod
    def from_config(cls, system: SystemConfig,
                    schedule: OriginSchedule) -> "MultiOriginTableSteer":
        """Build per-origin engines and the shared steering corrections."""
        corrections = SteeringCorrections.build(system)
        transducer = MatrixTransducer.from_config(system)
        grid = FocalGrid.from_config(system)
        engines = [ExactDelayEngine.from_config(system, origin=origin)
                   for origin in schedule.origins]
        return cls(system=system, schedule=schedule, corrections=corrections,
                   transducer=transducer, grid=grid, _engines=engines)

    # ------------------------------------------------------------------ API
    def reference_scanline(self, origin_index: int) -> np.ndarray:
        """Broadside reference delays for one origin, shape ``(n_depth, n_elements)``.

        This is the column of the per-origin reference table that the
        steering corrections are applied to.
        """
        engine = self._engine(origin_index)
        depths = self.grid.depths
        points = np.stack([np.zeros_like(depths), np.zeros_like(depths), depths],
                          axis=-1)
        return engine.delays_samples(points)

    def scanline_delays_samples(self, origin_index: int, i_theta: int,
                                i_phi: int) -> np.ndarray:
        """Steered delays for one origin and scanline (reference + plane)."""
        reference = self.reference_scanline(origin_index)
        plane = self.corrections.plane(i_theta, i_phi).ravel()
        return reference + plane[None, :]

    def exact_scanline_delays(self, origin_index: int, i_theta: int,
                              i_phi: int) -> np.ndarray:
        """Exact delays for the same origin/scanline (for error analysis)."""
        engine = self._engine(origin_index)
        return engine.delays_samples(self.grid.scanline_points(i_theta, i_phi))

    def _engine(self, origin_index: int) -> ExactDelayEngine:
        if not 0 <= origin_index < self.schedule.count:
            raise IndexError(f"origin index {origin_index} out of range")
        return self._engines[origin_index]

    # ----------------------------------------------------------------- cost
    def reference_entries_per_origin(self) -> int:
        """Stored table entries per origin (one quadrant only when centred).

        Off-centre origins break the four-fold symmetry: only origins on the
        z axis (x = y = 0) allow quadrant pruning, mirroring the paper's
        remark that "the table needs to be proportionally larger as the sound
        origin is displaced from the vertical of the transducer's centre".
        """
        ex = self.system.transducer.elements_x
        ey = self.system.transducer.elements_y
        n_depth = self.system.volume.n_depth
        return ((ex + 1) // 2) * ((ey + 1) // 2) * n_depth

    def reference_entries_for_origin(self, origin_index: int) -> int:
        """Stored entries for one specific origin, accounting for lost symmetry."""
        origin = self.schedule.origins[origin_index]
        ex = self.system.transducer.elements_x
        ey = self.system.transducer.elements_y
        n_depth = self.system.volume.n_depth
        x_factor = (ex + 1) // 2 if abs(origin[0]) < 1e-12 else ex
        y_factor = (ey + 1) // 2 if abs(origin[1]) < 1e-12 else ey
        return x_factor * y_factor * n_depth

    def total_reference_entries(self) -> int:
        """Stored entries across all origins."""
        return sum(self.reference_entries_for_origin(i)
                   for i in range(self.schedule.count))

    def storage_megabits(self, fmt: QFormat = REFERENCE_DELAY_18B) -> float:
        """Total reference-table storage across origins [Mb]."""
        return self.total_reference_entries() * fmt.total_bits / 1e6

    def dram_bandwidth_bytes_per_second(self, fmt: QFormat = REFERENCE_DELAY_18B) -> float:
        """DRAM bandwidth when streaming the per-origin tables.

        Each insonification uses exactly one origin, so the traffic per
        second equals the single-origin streaming traffic — the *bandwidth*
        cost of synthetic aperture is unchanged, only the off-chip *storage*
        grows with the origin count.
        """
        single_origin_entries = self.reference_entries_per_origin()
        insonifications_per_second = (self.system.beamformer.frame_rate
                                      * self.system.beamformer.insonifications_per_volume)
        return single_origin_entries * fmt.total_bits / 8.0 * insonifications_per_second


@dataclass
class MultiOriginTableFree:
    """TABLEFREE re-targeted to each origin of a synthetic-aperture schedule.

    The generator's hardware cost does not depend on the origin at all (the
    transmit term is computed per focal point), so this wrapper simply builds
    one :class:`TableFreeDelayGenerator` per origin and exposes the same
    per-origin API as :class:`MultiOriginTableSteer` for comparison.
    """

    system: SystemConfig
    schedule: OriginSchedule
    design: TableFreeConfig
    _generators: list[TableFreeDelayGenerator] = field(default_factory=list,
                                                       repr=False)

    @classmethod
    def from_config(cls, system: SystemConfig, schedule: OriginSchedule,
                    design: TableFreeConfig | None = None) -> "MultiOriginTableFree":
        """Build one generator per origin (they share the PWL design)."""
        design = design or TableFreeConfig()
        generators = [TableFreeDelayGenerator.from_config(system, design,
                                                          origin=origin)
                      for origin in schedule.origins]
        return cls(system=system, schedule=schedule, design=design,
                   _generators=generators)

    def scanline_delays_samples(self, origin_index: int, i_theta: int,
                                i_phi: int) -> np.ndarray:
        """Delays for one origin and grid scanline."""
        if not 0 <= origin_index < self.schedule.count:
            raise IndexError(f"origin index {origin_index} out of range")
        return self._generators[origin_index].scanline_delays_samples(i_theta, i_phi)

    def table_storage_megabits(self) -> float:
        """Delay-table storage: zero, for any number of origins."""
        return 0.0

    def segment_count(self) -> int:
        """PWL segments of the shared square-root approximation."""
        return self._generators[0].segment_count if self._generators else 0


def synthetic_aperture_cost_comparison(system: SystemConfig,
                                       origin_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
                                       ) -> list[dict[str, float]]:
    """Storage cost of TABLESTEER vs TABLEFREE as the origin count grows.

    Returns one row per origin count with the TABLESTEER reference-table
    storage (which grows linearly, and loses quadrant pruning for off-centre
    origins) and the TABLEFREE table storage (always zero).  This quantifies
    the paper's flexibility argument without building the actual tables.
    """
    rows = []
    for count in origin_counts:
        if count == 1:
            schedule = OriginSchedule.single_center()
        else:
            schedule = OriginSchedule.virtual_sources_behind_probe(system, count)
        # Storage accounting only: reuse the entry-count logic without
        # constructing per-origin engines.
        ex = system.transducer.elements_x
        ey = system.transducer.elements_y
        n_depth = system.volume.n_depth
        total_entries = 0
        for origin in schedule.origins:
            x_factor = (ex + 1) // 2 if abs(origin[0]) < 1e-12 else ex
            y_factor = (ey + 1) // 2 if abs(origin[1]) < 1e-12 else ey
            total_entries += x_factor * y_factor * n_depth
        rows.append({
            "origins": float(count),
            "tablesteer_entries": float(total_entries),
            "tablesteer_megabits_18b": total_entries * 18 / 1e6,
            "tablefree_megabits": 0.0,
        })
    return rows
