"""Exact (double-precision) propagation-delay computation.

This is the reference implementation of Eq. (2)/(3) of the paper:

    tp(O, S, D) = (|S - O| + |S - D|) / c

It is the ground truth against which both hardware-friendly delay generators
(TABLEFREE and TABLESTEER) are compared in the accuracy experiments of
Section VI-A.  Delays can be returned in seconds or in units of the echo
sampling period (32 MHz for the paper system), optionally quantised to the
integer sample index used to address the echo buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..geometry.coordinates import spherical_to_cartesian
from ..geometry.transducer import MatrixTransducer
from ..geometry.volume import FocalGrid
from .bulk import BulkDelayProviderMixin


def propagation_delay(origin: np.ndarray,
                      points: np.ndarray,
                      elements: np.ndarray,
                      speed_of_sound: float) -> np.ndarray:
    """Two-way propagation delay from ``origin`` to ``points`` to ``elements``.

    Parameters
    ----------
    origin:
        Sound (transmit) origin, shape ``(3,)`` [m].
    points:
        Focal points, shape ``(n_points, 3)`` [m].
    elements:
        Receive element positions, shape ``(n_elements, 3)`` [m].
    speed_of_sound:
        Speed of sound ``c`` [m/s].

    Returns
    -------
    numpy.ndarray
        Delays in seconds, shape ``(n_points, n_elements)``.
    """
    origin = np.asarray(origin, dtype=np.float64).reshape(3)
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    elements = np.atleast_2d(np.asarray(elements, dtype=np.float64))
    if points.shape[-1] != 3 or elements.shape[-1] != 3:
        raise ValueError("points and elements must have a trailing dimension of 3")
    transmit = np.linalg.norm(points - origin[None, :], axis=-1)
    receive = np.linalg.norm(points[:, None, :] - elements[None, :, :], axis=-1)
    return (transmit[:, None] + receive) / speed_of_sound


def transmit_delay(origin: np.ndarray, points: np.ndarray,
                   speed_of_sound: float) -> np.ndarray:
    """One-way delay from the sound origin to each focal point [s]."""
    origin = np.asarray(origin, dtype=np.float64).reshape(3)
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    return np.linalg.norm(points - origin[None, :], axis=-1) / speed_of_sound


def receive_delay(points: np.ndarray, elements: np.ndarray,
                  speed_of_sound: float) -> np.ndarray:
    """One-way delay from each focal point back to each element [s]."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    elements = np.atleast_2d(np.asarray(elements, dtype=np.float64))
    dist = np.linalg.norm(points[:, None, :] - elements[None, :, :], axis=-1)
    return dist / speed_of_sound


@dataclass(frozen=True)
class ExactDelayEngine(BulkDelayProviderMixin):
    """Reference delay generator bound to a system configuration.

    The engine fixes the transducer element positions, the focal grid and the
    sound origin, and exposes the delay computations in the units the rest of
    the library needs (seconds, fractional samples or integer sample
    indices).
    """

    config: SystemConfig
    transducer: MatrixTransducer
    grid: FocalGrid
    origin: np.ndarray

    @classmethod
    def from_config(cls, config: SystemConfig,
                    origin: np.ndarray | None = None) -> "ExactDelayEngine":
        """Build an engine for ``config`` with the origin at the probe centre."""
        transducer = MatrixTransducer.from_config(config)
        grid = FocalGrid.from_config(config)
        if origin is None:
            origin = np.zeros(3)
        return cls(config=config, transducer=transducer, grid=grid,
                   origin=np.asarray(origin, dtype=np.float64))

    def delays_seconds(self, points: np.ndarray) -> np.ndarray:
        """Exact delays in seconds for arbitrary focal ``points`` ((n, 3))."""
        return propagation_delay(self.origin, points,
                                 self.transducer.positions,
                                 self.config.acoustic.speed_of_sound)

    def delays_samples(self, points: np.ndarray) -> np.ndarray:
        """Exact delays in fractional sample units (at ``fs``)."""
        return self.delays_seconds(points) * self.config.acoustic.sampling_frequency

    def delay_indices(self, points: np.ndarray) -> np.ndarray:
        """Exact delays quantised to integer echo-buffer indices.

        Rounding is half-away-from-zero, matching the hardware rounding stage
        modelled by :mod:`repro.fixedpoint`.
        """
        samples = self.delays_samples(points)
        return np.floor(samples + 0.5).astype(np.int64)

    def scanline_delays_samples(self, i_theta: int, i_phi: int) -> np.ndarray:
        """Delays (fractional samples) for one scanline, shape ``(n_depth, n_elements)``."""
        points = self.grid.scanline_points(i_theta, i_phi)
        return self.delays_samples(points)

    def nappe_delays_samples(self, i_depth: int) -> np.ndarray:
        """Delays (fractional samples) for one nappe, shape ``(n_theta, n_phi, n_elements)``."""
        points = self.grid.nappe_points(i_depth)
        shape = points.shape[:-1]
        flat = points.reshape(-1, 3)
        delays = self.delays_samples(flat)
        return delays.reshape(*shape, -1)

    def volume_delays_samples(self) -> np.ndarray:
        """Delays for the whole grid, shape ``(n_theta, n_phi, n_depth, n_elements)``.

        Overrides the scanline-stacking default with one batched evaluation;
        the distance arithmetic is elementwise, so the result is identical.
        """
        n_theta, n_phi, n_depth = self.grid.shape
        points = self.grid.all_points().reshape(-1, 3)
        delays = self.delays_samples(points)
        return delays.reshape(n_theta, n_phi, n_depth, -1)

    def scanline_points(self, theta: float, phi: float,
                        depths: np.ndarray | None = None) -> np.ndarray:
        """Cartesian focal points of an arbitrary (non-grid) scanline."""
        if depths is None:
            depths = self.grid.depths
        return spherical_to_cartesian(theta, phi, np.asarray(depths))

    def max_delay_samples(self) -> float:
        """Upper bound on any delay in sample units (sizes the echo buffer).

        The farthest focal point sits at maximum depth and maximum steering;
        the receive leg is maximised by the aperture corner on the opposite
        side of the steering direction, so all four corners are checked.
        """
        x_max = float(np.max(np.abs(self.transducer.x))) if len(self.transducer.x) else 0.0
        y_max = float(np.max(np.abs(self.transducer.y))) if len(self.transducer.y) else 0.0
        corners = np.array([[sx * x_max, sy * y_max, 0.0]
                            for sx in (-1.0, 1.0) for sy in (-1.0, 1.0)])
        theta = self.grid.thetas[-1]
        phi = self.grid.phis[-1]
        depth = self.grid.depths[-1]
        point = spherical_to_cartesian(theta, phi, depth).reshape(3)
        tx = np.linalg.norm(point - self.origin)
        rx = float(np.max(np.linalg.norm(corners - point[None, :], axis=1)))
        seconds = (tx + rx) / self.config.acoustic.speed_of_sound
        return float(seconds * self.config.acoustic.sampling_frequency)
