"""repro: delay generation for realtime 3D ultrasound beamforming.

A from-scratch Python reproduction of

    A. Ibrahim et al., "Tackling the Bottleneck of Delay Tables in 3D
    Ultrasound Imaging", DATE 2015.

The package provides:

* the two delay-generation architectures the paper proposes — TABLEFREE
  (:class:`repro.core.TableFreeDelayGenerator`) and TABLESTEER
  (:class:`repro.core.TableSteerDelayGenerator`) — plus the exact reference
  engine they are compared against;
* the substrates they need: system configuration (Table I presets),
  fixed-point arithmetic, transducer/volume geometry, synthetic acoustics
  and a delay-and-sum beamformer;
* an analytical FPGA hardware model reproducing the resource, bandwidth and
  throughput analysis of Table II;
* an experiment harness (:mod:`repro.experiments`) with one entry point per
  paper table and figure.

Quick start::

    from repro import small_system
    from repro.core import ExactDelayEngine, TableSteerDelayGenerator

    system = small_system()
    exact = ExactDelayEngine.from_config(system)
    steer = TableSteerDelayGenerator.from_config(system)
    points = exact.grid.scanline_points(4, 4)
    error = steer.delay_indices(points) - exact.delay_indices(points)
"""

from .config import (
    PRESETS,
    AcousticConfig,
    BeamformerConfig,
    SystemConfig,
    TransducerConfig,
    VolumeConfig,
    get_preset,
    paper_system,
    small_system,
    tiny_system,
)

__version__ = "1.0.0"

_API_EXPORTS = frozenset({
    "ARCHITECTURES",
    "BACKENDS",
    "SCENARIOS",
    "SCHEMES",
    "EngineSpec",
    "ScanSpec",
    "SweepSpec",
    "Session",
    "Registry",
    "RegistryError",
})

__all__ = [
    "__version__",
    "SystemConfig",
    "AcousticConfig",
    "TransducerConfig",
    "VolumeConfig",
    "BeamformerConfig",
    "PRESETS",
    "get_preset",
    "paper_system",
    "small_system",
    "tiny_system",
    *sorted(_API_EXPORTS),
]


def __getattr__(name: str):
    # The declarative API (registries, specs, Session) pulls in the whole
    # pipeline/runtime stack; importing it lazily keeps `import repro`
    # config-only cheap for users who just want the Table I presets.
    if name in _API_EXPORTS:
        from . import api
        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
