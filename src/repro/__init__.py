"""repro: delay generation for realtime 3D ultrasound beamforming.

A from-scratch Python reproduction of

    A. Ibrahim et al., "Tackling the Bottleneck of Delay Tables in 3D
    Ultrasound Imaging", DATE 2015.

The package provides:

* the two delay-generation architectures the paper proposes — TABLEFREE
  (:class:`repro.core.TableFreeDelayGenerator`) and TABLESTEER
  (:class:`repro.core.TableSteerDelayGenerator`) — plus the exact reference
  engine they are compared against;
* the substrates they need: system configuration (Table I presets),
  fixed-point arithmetic, transducer/volume geometry, synthetic acoustics
  and a delay-and-sum beamformer;
* an analytical FPGA hardware model reproducing the resource, bandwidth and
  throughput analysis of Table II;
* an experiment harness (:mod:`repro.experiments`) with one entry point per
  paper table and figure.

Quick start::

    from repro import small_system
    from repro.core import ExactDelayEngine, TableSteerDelayGenerator

    system = small_system()
    exact = ExactDelayEngine.from_config(system)
    steer = TableSteerDelayGenerator.from_config(system)
    points = exact.grid.scanline_points(4, 4)
    error = steer.delay_indices(points) - exact.delay_indices(points)
"""

from .config import (
    AcousticConfig,
    BeamformerConfig,
    SystemConfig,
    TransducerConfig,
    VolumeConfig,
    paper_system,
    small_system,
    tiny_system,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SystemConfig",
    "AcousticConfig",
    "TransducerConfig",
    "VolumeConfig",
    "BeamformerConfig",
    "paper_system",
    "small_system",
    "tiny_system",
]
