"""System specification for the 3D ultrasound beamformer.

This module captures Table I of the paper ("System Specifications") as a set
of immutable dataclasses.  Every other subsystem (geometry, delay generation,
hardware modelling, experiments) derives its parameters from a
:class:`SystemConfig` instance so the whole library can be re-targeted to a
different probe or imaging volume by changing a single object.

Three presets are provided:

``paper_system()``
    The exact configuration evaluated in the paper: a 100x100 element matrix
    transducer at 4 MHz, lambda/2 pitch, a 73 deg x 73 deg x 500 lambda imaging
    volume sampled on a 128 x 128 x 1000 focal-point grid, 32 MHz echo
    sampling and a 15 volumes/s target rate.

``small_system()``
    A scaled-down configuration (16x16 elements, 16x16x64 focal points) used
    by unit tests and quick examples; all the algorithms are identical, only
    the grid sizes shrink.

``tiny_system()``
    An even smaller configuration for property-based tests where many
    configurations are evaluated per test run.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, replace
from typing import Callable


@dataclass(frozen=True)
class AcousticConfig:
    """Physical and transducer-front-end acoustic parameters."""

    speed_of_sound: float = 1540.0
    """Speed of sound in tissue ``c`` [m/s]."""

    center_frequency: float = 4.0e6
    """Transducer centre frequency ``fc`` [Hz]."""

    bandwidth: float = 4.0e6
    """Transducer (two-sided) bandwidth ``B`` [Hz]."""

    sampling_frequency: float = 32.0e6
    """Echo sampling frequency ``fs`` [Hz]."""

    @property
    def wavelength(self) -> float:
        """Acoustic wavelength ``lambda = c / fc`` [m]."""
        return self.speed_of_sound / self.center_frequency

    @property
    def sampling_period(self) -> float:
        """Time between consecutive echo samples [s]."""
        return 1.0 / self.sampling_frequency

    @property
    def samples_per_wavelength(self) -> float:
        """Number of echo samples per acoustic wavelength."""
        return self.sampling_frequency / self.center_frequency

    def seconds_to_samples(self, seconds: float) -> float:
        """Convert a time in seconds into (fractional) sample units."""
        return seconds * self.sampling_frequency

    def samples_to_seconds(self, samples: float) -> float:
        """Convert a (fractional) sample count into seconds."""
        return samples / self.sampling_frequency


@dataclass(frozen=True)
class TransducerConfig:
    """Matrix transducer geometry.

    The transducer lies in the ``z = 0`` plane, centred on the origin, with
    elements laid out on a regular grid with the given pitch.
    """

    elements_x: int = 100
    """Number of elements along x (``ex``)."""

    elements_y: int = 100
    """Number of elements along y (``ey``)."""

    pitch: float = 0.385e-3 / 2.0
    """Element pitch [m]; the paper uses lambda/2 = 0.1925 mm."""

    directivity_max_angle: float = math.radians(45.0)
    """Maximum off-axis angle [rad] an element can insonify / receive from.

    Used for directivity pruning of delay tables (Section V-A / Fig. 3a).
    """

    @property
    def element_count(self) -> int:
        """Total number of elements ``N = ex * ey``."""
        return self.elements_x * self.elements_y

    @property
    def aperture_x(self) -> float:
        """Physical aperture size along x [m]."""
        return (self.elements_x - 1) * self.pitch

    @property
    def aperture_y(self) -> float:
        """Physical aperture size along y [m]."""
        return (self.elements_y - 1) * self.pitch


@dataclass(frozen=True)
class VolumeConfig:
    """Imaging volume and focal-point grid.

    Focal points are indexed by ``(i_theta, i_phi, i_depth)``; the azimuth
    angle ``theta`` spans ``[-theta_max, +theta_max]``, the elevation angle
    ``phi`` spans ``[-phi_max, +phi_max]`` and the depth spans
    ``[depth_min, depth_max]``.  The paper's volume is 73 deg x 73 deg x
    500 lambda reconstructed on a 128 x 128 x 1000 grid.
    """

    n_theta: int = 128
    """Number of steered lines of sight along azimuth."""

    n_phi: int = 128
    """Number of steered lines of sight along elevation."""

    n_depth: int = 1000
    """Number of focal points along each line of sight (depth samples)."""

    theta_max: float = math.radians(73.0) / 2.0
    """Half-opening angle in azimuth [rad]; total field of view is 73 deg."""

    phi_max: float = math.radians(73.0) / 2.0
    """Half-opening angle in elevation [rad]."""

    depth_min: float = 0.385e-3
    """Shallowest reconstructed depth [m] (one wavelength by default)."""

    depth_max: float = 500 * 0.385e-3
    """Deepest reconstructed depth [m]; the paper images 500 lambda."""

    @property
    def focal_point_count(self) -> int:
        """Total number of focal points in the volume."""
        return self.n_theta * self.n_phi * self.n_depth

    @property
    def scanline_count(self) -> int:
        """Number of steered lines of sight (scanlines)."""
        return self.n_theta * self.n_phi

    @property
    def depth_span(self) -> float:
        """Imaged depth range [m]."""
        return self.depth_max - self.depth_min


@dataclass(frozen=True)
class BeamformerConfig:
    """Target performance figures for the receive beamformer."""

    frame_rate: float = 15.0
    """Target volume (frame) rate [volumes/s]."""

    insonifications_per_volume: int = 64
    """Number of transmit events used to reconstruct one volume."""

    scanlines_per_insonification: int = 256
    """Number of receive lines beamformed in parallel per insonification."""

    clock_frequency: float = 200.0e6
    """Nominal FPGA clock frequency [Hz] used by throughput estimates."""


@dataclass(frozen=True)
class SystemConfig:
    """Complete system specification (Table I of the paper)."""

    acoustic: AcousticConfig = field(default_factory=AcousticConfig)
    transducer: TransducerConfig = field(default_factory=TransducerConfig)
    volume: VolumeConfig = field(default_factory=VolumeConfig)
    beamformer: BeamformerConfig = field(default_factory=BeamformerConfig)

    name: str = "paper"
    """Human readable preset name."""

    @property
    def max_round_trip_time(self) -> float:
        """Two-way propagation time to the deepest focal point [s]."""
        return 2.0 * self.volume.depth_max / self.acoustic.speed_of_sound

    @property
    def echo_buffer_samples(self) -> int:
        """Number of echo samples stored per element per insonification.

        The paper quotes "slightly more than 8000 samples" for a 32 MHz
        sampling of the two-way propagation over 2 x 500 lambda.
        """
        return int(math.ceil(self.max_round_trip_time
                             * self.acoustic.sampling_frequency)) + 1

    @property
    def delay_index_bits(self) -> int:
        """Bits needed to index the echo buffer (13 for the paper system)."""
        return max(1, int(math.ceil(math.log2(self.echo_buffer_samples))))

    @property
    def theoretical_delay_count(self) -> int:
        """Total number of delay coefficients without any optimisation.

        One coefficient per (focal point, receive element) pair; about
        164e9 for the paper system (Section II-B).
        """
        return self.volume.focal_point_count * self.transducer.element_count

    @property
    def delay_throughput_required(self) -> float:
        """Delay coefficients needed per second for realtime imaging [1/s].

        About 2.5e12 delay values/s at 15 volumes/s (Section II-C).
        """
        return self.theoretical_delay_count * self.beamformer.frame_rate

    def to_dict(self) -> dict:
        """Plain-dict (JSON-safe) form of the full configuration.

        Inverse of :meth:`from_dict`; used by ``repro.api.EngineSpec`` to
        embed non-preset systems inline in portable spec documents.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Rebuild (and validate) a configuration from :meth:`to_dict` output.

        Missing sections fall back to their defaults; unknown sections raise
        :class:`ValueError` so typos in spec files surface instead of being
        silently dropped.
        """
        if not isinstance(data, dict):
            raise ValueError(f"system config must be a mapping, "
                             f"got {type(data).__name__}")
        sections = {"acoustic": AcousticConfig, "transducer": TransducerConfig,
                    "volume": VolumeConfig, "beamformer": BeamformerConfig}
        unknown = set(data) - set(sections) - {"name"}
        if unknown:
            raise ValueError(f"unknown system config section(s): "
                             f"{', '.join(sorted(unknown))}")
        kwargs = {}
        for key, section_cls in sections.items():
            value = data.get(key, {})
            try:
                kwargs[key] = value if isinstance(value, section_cls) \
                    else section_cls(**value)
            except TypeError as exc:
                raise ValueError(f"bad {key!r} section: {exc}") from None
        config = cls(name=data.get("name", "custom"), **kwargs)
        config.validate()
        return config

    def cache_key(self) -> str:
        """Stable digest of every physical parameter of the system.

        Two configurations with identical acoustic, transducer, volume and
        beamformer parameters produce the same key even if their ``name``
        differs, so delay/weight tensors cached under the key (see
        :class:`repro.runtime.cache.DelayTableCache`) are shared between
        presets that describe the same probe and grid.  The key is a hex
        string, safe to embed in file names or composite dictionary keys.
        """
        payload = asdict(self)
        payload.pop("name", None)
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def with_volume(self, **kwargs) -> "SystemConfig":
        """Return a copy with selected :class:`VolumeConfig` fields replaced."""
        return replace(self, volume=replace(self.volume, **kwargs))

    def with_transducer(self, **kwargs) -> "SystemConfig":
        """Return a copy with selected :class:`TransducerConfig` fields replaced."""
        return replace(self, transducer=replace(self.transducer, **kwargs))

    def with_acoustic(self, **kwargs) -> "SystemConfig":
        """Return a copy with selected :class:`AcousticConfig` fields replaced."""
        return replace(self, acoustic=replace(self.acoustic, **kwargs))

    def with_beamformer(self, **kwargs) -> "SystemConfig":
        """Return a copy with selected :class:`BeamformerConfig` fields replaced."""
        return replace(self, beamformer=replace(self.beamformer, **kwargs))

    def validate(self) -> None:
        """Raise :class:`ValueError` if the configuration is inconsistent."""
        if self.acoustic.speed_of_sound <= 0:
            raise ValueError("speed of sound must be positive")
        if self.acoustic.sampling_frequency <= 0:
            raise ValueError("sampling frequency must be positive")
        if self.acoustic.center_frequency <= 0:
            raise ValueError("center frequency must be positive")
        if self.transducer.elements_x < 1 or self.transducer.elements_y < 1:
            raise ValueError("transducer must have at least one element per axis")
        if self.transducer.pitch <= 0:
            raise ValueError("transducer pitch must be positive")
        if self.volume.n_theta < 1 or self.volume.n_phi < 1 or self.volume.n_depth < 1:
            raise ValueError("volume grid dimensions must be at least 1")
        if not 0 < self.volume.theta_max < math.pi / 2:
            raise ValueError("theta_max must be in (0, pi/2)")
        if not 0 < self.volume.phi_max < math.pi / 2:
            raise ValueError("phi_max must be in (0, pi/2)")
        if self.volume.depth_min <= 0:
            raise ValueError("depth_min must be positive")
        if self.volume.depth_max <= self.volume.depth_min:
            raise ValueError("depth_max must exceed depth_min")
        if self.beamformer.frame_rate <= 0:
            raise ValueError("frame rate must be positive")
        if self.beamformer.insonifications_per_volume < 1:
            raise ValueError("insonifications_per_volume must be at least 1")


def _wavelength(speed_of_sound: float = 1540.0,
                center_frequency: float = 4.0e6) -> float:
    return speed_of_sound / center_frequency


def paper_system() -> SystemConfig:
    """The exact system of Table I (100x100 elements, 128x128x1000 points)."""
    lam = _wavelength()
    acoustic = AcousticConfig()
    transducer = TransducerConfig(
        elements_x=100,
        elements_y=100,
        pitch=lam / 2.0,
    )
    volume = VolumeConfig(
        n_theta=128,
        n_phi=128,
        n_depth=1000,
        theta_max=math.radians(73.0) / 2.0,
        phi_max=math.radians(73.0) / 2.0,
        depth_min=lam,
        depth_max=500 * lam,
    )
    beamformer = BeamformerConfig()
    config = SystemConfig(acoustic=acoustic, transducer=transducer,
                          volume=volume, beamformer=beamformer, name="paper")
    config.validate()
    return config


def small_system() -> SystemConfig:
    """A scaled-down system for tests and fast examples (16x16 elements)."""
    lam = _wavelength()
    acoustic = AcousticConfig()
    transducer = TransducerConfig(
        elements_x=16,
        elements_y=16,
        pitch=lam / 2.0,
    )
    volume = VolumeConfig(
        n_theta=16,
        n_phi=16,
        n_depth=64,
        theta_max=math.radians(60.0) / 2.0,
        phi_max=math.radians(60.0) / 2.0,
        depth_min=lam,
        depth_max=100 * lam,
    )
    beamformer = BeamformerConfig(insonifications_per_volume=4,
                                  scanlines_per_insonification=64)
    config = SystemConfig(acoustic=acoustic, transducer=transducer,
                          volume=volume, beamformer=beamformer, name="small")
    config.validate()
    return config


def tiny_system() -> SystemConfig:
    """A very small system used by property-based tests (8x8 elements)."""
    lam = _wavelength()
    acoustic = AcousticConfig()
    transducer = TransducerConfig(
        elements_x=8,
        elements_y=8,
        pitch=lam / 2.0,
    )
    volume = VolumeConfig(
        n_theta=8,
        n_phi=8,
        n_depth=16,
        theta_max=math.radians(40.0) / 2.0,
        phi_max=math.radians(40.0) / 2.0,
        depth_min=2 * lam,
        depth_max=40 * lam,
    )
    beamformer = BeamformerConfig(insonifications_per_volume=2,
                                  scanlines_per_insonification=32)
    config = SystemConfig(acoustic=acoustic, transducer=transducer,
                          volume=volume, beamformer=beamformer, name="tiny")
    config.validate()
    return config


PRESETS: dict[str, Callable[[], SystemConfig]] = {
    "paper": paper_system,
    "small": small_system,
    "tiny": tiny_system,
}
"""Named system presets — the single source the CLI and spec layer draw from."""


def get_preset(name: str) -> SystemConfig:
    """Build the preset called ``name``; unknown names list the presets."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ValueError(f"unknown system preset {name!r}; "
                         f"available: {', '.join(sorted(PRESETS))}") from None
    return factory()
