"""Synthetic echo (channel-data) generation.

Given a phantom, a transducer and a transmit event, this module produces the
per-element RF echo traces the receive beamformer consumes: for every
scatterer the two-way propagation delay to each element is computed with the
*exact* delay law (Eq. 2) and a copy of the transmit pulse, scaled by the
scatterer amplitude and a 1/r spreading term, is accumulated into the
element's trace at that delay.

This linear single-scattering model is the standard synthetic-aperture
simulation approach (it is what Field II does, minus the element impulse
responses) and is sufficient to exercise the full beamforming code path and
to visualise how delay-generation errors affect image quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..geometry.transducer import MatrixTransducer
from .phantom import Phantom
from .pulse import GaussianPulse


@dataclass(frozen=True)
class ChannelData:
    """Received echo traces for one transmit event.

    Attributes
    ----------
    samples:
        RF traces, shape ``(n_elements, n_samples)``; element order matches
        ``MatrixTransducer.positions``.
    sampling_frequency:
        Sampling rate of the traces [Hz].
    """

    samples: np.ndarray
    sampling_frequency: float

    @property
    def element_count(self) -> int:
        """Number of receive channels."""
        return self.samples.shape[0]

    @property
    def sample_count(self) -> int:
        """Number of time samples per channel."""
        return self.samples.shape[1]

    def sample_at(self, element_indices: np.ndarray,
                  delay_indices: np.ndarray) -> np.ndarray:
        """Fetch samples (nearest-neighbour) for given element/delay index pairs.

        Out-of-range delay indices return 0, mirroring a hardware echo buffer
        that simply produces no contribution when addressed past its end.
        """
        delay_indices = np.asarray(delay_indices, dtype=np.int64)
        element_indices = np.asarray(element_indices, dtype=np.int64)
        valid = (delay_indices >= 0) & (delay_indices < self.sample_count)
        clipped = np.clip(delay_indices, 0, self.sample_count - 1)
        values = self.samples[element_indices, clipped]
        return np.where(valid, values, 0.0)


@dataclass(frozen=True)
class _SphericalTransmit:
    """Spherical transmit wavefront from a fixed origin.

    The minimal in-package implementation of the transmit protocol used by
    :meth:`EchoSimulator.simulate_event` (richer events live in
    :mod:`repro.scenarios.transmit`, which this module must not import).
    The arithmetic matches the historical ``simulate()`` expression exactly.
    """

    origin: np.ndarray

    def transmit_distance(self, point: np.ndarray) -> float:
        return float(np.linalg.norm(point - self.origin))


@dataclass(frozen=True)
class EchoSimulator:
    """Linear single-scattering echo synthesiser."""

    system: SystemConfig
    transducer: MatrixTransducer
    pulse: GaussianPulse
    origin: np.ndarray

    @classmethod
    def from_config(cls, system: SystemConfig,
                    origin: np.ndarray | None = None) -> "EchoSimulator":
        """Build a simulator for a system configuration (origin at the centre)."""
        transducer = MatrixTransducer.from_config(system)
        pulse = GaussianPulse.from_config(system.acoustic)
        if origin is None:
            origin = np.zeros(3)
        return cls(system=system, transducer=transducer, pulse=pulse,
                   origin=np.asarray(origin, dtype=np.float64))

    def simulate(self, phantom: Phantom,
                 noise_std: float = 0.0,
                 seed: int = 0) -> ChannelData:
        """Generate channel data for one insonification of ``phantom``.

        The transmit wavefront is spherical from the simulator's own
        ``origin`` — the paper's focused baseline.  Other transmit schemes
        (plane waves, per-element synthetic-aperture firings) go through
        :meth:`simulate_event`.

        Parameters
        ----------
        phantom:
            The scatterer collection to insonify.
        noise_std:
            Standard deviation of additive white Gaussian noise relative to a
            unit-amplitude scatterer at unit spreading (0 disables noise).
        seed:
            RNG seed for the noise.
        """
        return self.simulate_event(phantom, _SphericalTransmit(self.origin),
                                   noise_std=noise_std, seed=seed)

    def simulate_event(self, phantom: Phantom, transmit: object,
                       noise_std: float = 0.0,
                       seed: "int | tuple[int, ...]" = 0) -> ChannelData:
        """Generate channel data for one transmit event of ``phantom``.

        ``transmit`` is any object exposing
        ``transmit_distance(point) -> float`` metres (e.g. a
        :class:`repro.scenarios.TransmitEvent`); it replaces the transmit
        leg of the two-way propagation while the receive legs stay the
        element geometry.  A spherical transmit at the simulator's origin
        reproduces :meth:`simulate` bit for bit.  ``seed`` may be an int
        or an entropy tuple (anything ``numpy.random.default_rng``
        accepts); multi-firing schemes use ``(seed, firing_index)`` pairs
        to decorrelate per-firing noise from per-frame seeds.
        """
        acoustic = self.system.acoustic
        fs = acoustic.sampling_frequency
        c = acoustic.speed_of_sound
        n_samples = self.system.echo_buffer_samples
        n_elements = self.transducer.element_count
        traces = np.zeros((n_elements, n_samples))

        pulse_times, pulse_amps = self.pulse.waveform()
        pulse_offsets = np.round(pulse_times * fs).astype(np.int64)

        positions = self.transducer.positions
        for scatterer, amplitude in zip(phantom.positions, phantom.amplitudes):
            tx_distance = transmit.transmit_distance(scatterer)
            rx_distances = np.linalg.norm(positions - scatterer[None, :], axis=1)
            delays = (tx_distance + rx_distances) / c
            center_samples = np.round(delays * fs).astype(np.int64)
            # 1/r spreading on the receive path; avoid blowing up at r ~ 0.
            spreading = 1.0 / np.maximum(rx_distances, 1e-4)
            spreading = spreading / np.max(spreading)
            for element in range(n_elements):
                indices = center_samples[element] + pulse_offsets
                valid = (indices >= 0) & (indices < n_samples)
                if not np.any(valid):
                    continue
                traces[element, indices[valid]] += (amplitude
                                                    * spreading[element]
                                                    * pulse_amps[valid])
        if noise_std > 0:
            rng = np.random.default_rng(seed)
            traces = traces + rng.normal(0.0, noise_std, traces.shape)
        return ChannelData(samples=traces, sampling_frequency=fs)
