"""Scatterer phantoms: synthetic imaging targets.

The paper evaluates delay accuracy numerically, but the ultimate consumer of
the delays is a beamformer producing images of tissue.  To exercise that code
path without probe hardware we synthesise echoes from *phantoms*: collections
of point scatterers with given positions and reflectivities.  Standard
phantoms (single point target, grids of points for point-spread-function
studies, anechoic-cyst-in-speckle) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..geometry.coordinates import spherical_to_cartesian


@dataclass(frozen=True)
class Phantom:
    """A set of point scatterers.

    Attributes
    ----------
    positions:
        Scatterer positions, shape ``(n, 3)`` [m].
    amplitudes:
        Scatterer reflectivities, shape ``(n,)`` (arbitrary linear units).
    name:
        Human-readable identifier used in reports.
    """

    positions: np.ndarray
    amplitudes: np.ndarray
    name: str = "phantom"

    def __post_init__(self) -> None:
        positions = np.atleast_2d(np.asarray(self.positions, dtype=np.float64))
        amplitudes = np.atleast_1d(np.asarray(self.amplitudes, dtype=np.float64))
        if positions.shape[0] != amplitudes.shape[0]:
            raise ValueError("positions and amplitudes must have the same length")
        if positions.shape[1] != 3:
            raise ValueError("positions must have shape (n, 3)")
        # NaN/inf scatterers used to flow silently into the echo simulator,
        # where every contribution they touched became NaN; fail at
        # construction instead (this also guards merged_with and every
        # factory below, which all funnel through here).
        if not np.all(np.isfinite(positions)):
            raise ValueError("scatterer positions must be finite "
                             "(got NaN or inf)")
        if not np.all(np.isfinite(amplitudes)):
            raise ValueError("scatterer amplitudes must be finite "
                             "(got NaN or inf)")
        object.__setattr__(self, "positions", positions)
        object.__setattr__(self, "amplitudes", amplitudes)

    @property
    def scatterer_count(self) -> int:
        """Number of point scatterers."""
        return self.positions.shape[0]

    def merged_with(self, other: "Phantom", name: str | None = None) -> "Phantom":
        """Union of two phantoms."""
        return Phantom(
            positions=np.vstack([self.positions, other.positions]),
            amplitudes=np.concatenate([self.amplitudes, other.amplitudes]),
            name=name or f"{self.name}+{other.name}",
        )


def point_target(depth: float, theta: float = 0.0, phi: float = 0.0,
                 amplitude: float = 1.0) -> Phantom:
    """A single point scatterer on the given line of sight at the given depth."""
    position = spherical_to_cartesian(theta, phi, depth).reshape(1, 3)
    return Phantom(positions=position, amplitudes=np.array([amplitude]),
                   name="point_target")


def point_grid(system: SystemConfig, depths: np.ndarray | None = None,
               thetas: np.ndarray | None = None,
               phis: np.ndarray | None = None,
               amplitude: float = 1.0) -> Phantom:
    """A regular grid of point targets for point-spread-function studies.

    Defaults to three depths spanning the imaging range and three steering
    angles per axis (including broadside), i.e. 27 point targets.
    """
    volume = system.volume
    if depths is None:
        depths = np.linspace(volume.depth_min + 0.2 * volume.depth_span,
                             volume.depth_max - 0.2 * volume.depth_span, 3)
    if thetas is None:
        thetas = np.array([-0.6, 0.0, 0.6]) * volume.theta_max
    if phis is None:
        phis = np.array([-0.6, 0.0, 0.6]) * volume.phi_max
    tt, pp, dd = np.meshgrid(thetas, phis, depths, indexing="ij")
    positions = spherical_to_cartesian(tt.ravel(), pp.ravel(), dd.ravel())
    amplitudes = np.full(positions.shape[0], amplitude)
    return Phantom(positions=positions, amplitudes=amplitudes, name="point_grid")


def speckle_phantom(system: SystemConfig, n_scatterers: int = 2000,
                    seed: int = 1234, amplitude_std: float = 1.0) -> Phantom:
    """Diffuse scatterers uniformly filling the imaging volume (speckle).

    Scatterer amplitudes are drawn from a zero-mean normal distribution,
    which produces fully developed speckle after beamforming.
    """
    rng = np.random.default_rng(seed)
    volume = system.volume
    thetas = rng.uniform(-volume.theta_max, volume.theta_max, n_scatterers)
    phis = rng.uniform(-volume.phi_max, volume.phi_max, n_scatterers)
    # Uniform in volume requires r ~ cbrt(uniform); uniform in r is fine for a
    # qualitative speckle background and keeps near field populated.
    depths = rng.uniform(volume.depth_min, volume.depth_max, n_scatterers)
    positions = spherical_to_cartesian(thetas, phis, depths)
    amplitudes = rng.normal(0.0, amplitude_std, n_scatterers)
    return Phantom(positions=positions, amplitudes=amplitudes, name="speckle")


def cyst_phantom(system: SystemConfig, cyst_depth: float | None = None,
                 cyst_radius: float | None = None, n_scatterers: int = 4000,
                 seed: int = 99) -> Phantom:
    """Speckle background with a spherical anechoic (scatterer-free) cyst.

    A classic contrast target: the cyst should appear dark against the
    speckle background; delay errors that defocus the image raise the level
    inside the cyst.
    """
    volume = system.volume
    if cyst_depth is None:
        cyst_depth = volume.depth_min + 0.5 * volume.depth_span
    if cyst_radius is None:
        cyst_radius = 0.08 * volume.depth_span
    background = speckle_phantom(system, n_scatterers=n_scatterers, seed=seed)
    center = np.array([0.0, 0.0, cyst_depth])
    distance = np.linalg.norm(background.positions - center[None, :], axis=1)
    keep = distance > cyst_radius
    return Phantom(positions=background.positions[keep],
                   amplitudes=background.amplitudes[keep],
                   name="cyst")


def multi_cyst_layout(count: int, radius_fraction: float = 0.06
                      ) -> tuple[np.ndarray, float]:
    """On-axis depth fractions + (overlap-clamped) radius fraction.

    The single definition of where the multi-cyst regions sit, shared by
    :func:`multi_cyst_phantom` and the scenario scoring hook (which
    measures the *first* region).  Regions are spread along the axis —
    the only direction with guaranteed room on every preset; azimuthal
    spreads overlap on the scaled-down systems — and the radius is
    clamped to 0.2x the inter-centre spacing (the no-overlap invariant
    needs < 0.25x) so neither the regions nor the 1.5-3x-radius scoring
    ring around the first region touches a neighbour.
    """
    if count < 1:
        raise ValueError("need at least one contrast region")
    if count == 1:
        return np.array([0.5]), radius_fraction
    fractions = np.linspace(0.2, 0.8, count)
    spacing = float(fractions[1] - fractions[0])
    # Ring outer edge (3r) must stay short of the neighbour's rim
    # (spacing - r), i.e. r < spacing / 4; 0.2x keeps a margin.  The
    # first contrast entry — the one the scoring hook measures — gets the
    # most central (best-imaged) position, the rest spread outward.
    order = np.argsort(np.abs(fractions - 0.5), kind="stable")
    return fractions[order], min(radius_fraction, 0.2 * spacing)


def multi_cyst_phantom(system: SystemConfig,
                       contrasts: tuple[float, ...] = (0.0, 0.25, 4.0),
                       radius_fraction: float = 0.06,
                       n_scatterers: int = 3000,
                       seed: int = 7) -> Phantom:
    """Speckle background with several contrast targets spread in depth.

    One on-axis spherical region per entry of ``contrasts`` (placement
    via :func:`multi_cyst_layout`, which guarantees the regions never
    overlap); scatterer amplitudes inside a region are scaled by its
    contrast factor (0 = anechoic, < 1 hypoechoic, > 1 hyperechoic).  A
    classic multi-target contrast phantom: CNR/gCNR of each region
    quantify how delay-generation error and transmit-scheme choice trade
    off contrast.
    """
    volume = system.volume
    background = speckle_phantom(system, n_scatterers=n_scatterers, seed=seed)
    depth_fractions, radius_fraction = multi_cyst_layout(
        len(contrasts), radius_fraction)
    radius = radius_fraction * volume.depth_span
    amplitudes = background.amplitudes.copy()
    for contrast, fraction in zip(contrasts, depth_fractions):
        depth = volume.depth_min + fraction * volume.depth_span
        center = np.array([0.0, 0.0, depth])
        distance = np.linalg.norm(background.positions - center[None, :],
                                  axis=1)
        amplitudes[distance < radius] *= contrast
    return Phantom(positions=background.positions, amplitudes=amplitudes,
                   name="multi_cyst")
