"""Transmit pulse models.

The echo synthesiser needs a band-limited excitation waveform.  A
Gaussian-modulated sinusoid at the transducer centre frequency with a
fractional bandwidth matching Table I (4 MHz centre, 4 MHz bandwidth, i.e.
100 % fractional bandwidth) is the standard choice and is what we use to
generate channel data for the imaging experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AcousticConfig


@dataclass(frozen=True)
class GaussianPulse:
    """A Gaussian-modulated sinusoidal pulse.

    Attributes
    ----------
    center_frequency:
        Carrier frequency [Hz].
    fractional_bandwidth:
        -6 dB two-sided bandwidth divided by the centre frequency.
    sampling_frequency:
        Sampling rate used by :meth:`waveform` [Hz].
    """

    center_frequency: float
    fractional_bandwidth: float
    sampling_frequency: float

    @classmethod
    def from_config(cls, acoustic: AcousticConfig) -> "GaussianPulse":
        """Build the pulse implied by an acoustic configuration."""
        return cls(center_frequency=acoustic.center_frequency,
                   fractional_bandwidth=acoustic.bandwidth / acoustic.center_frequency,
                   sampling_frequency=acoustic.sampling_frequency)

    @property
    def sigma_t(self) -> float:
        """Standard deviation of the Gaussian envelope in time [s].

        Derived from the -6 dB bandwidth of the Gaussian spectrum:
        ``B_-6dB = 2 * sqrt(2 ln 2) * sigma_f`` with ``sigma_t = 1 / (2 pi sigma_f)``.
        """
        bandwidth_hz = self.fractional_bandwidth * self.center_frequency
        sigma_f = bandwidth_hz / (2.0 * np.sqrt(2.0 * np.log(2.0)))
        return 1.0 / (2.0 * np.pi * sigma_f)

    @property
    def duration(self) -> float:
        """Effective pulse duration (+/- 4 sigma) [s]."""
        return 8.0 * self.sigma_t

    def envelope(self, t: np.ndarray) -> np.ndarray:
        """Gaussian envelope centred at ``t = 0``."""
        t = np.asarray(t, dtype=np.float64)
        return np.exp(-0.5 * (t / self.sigma_t) ** 2)

    def evaluate(self, t: np.ndarray) -> np.ndarray:
        """Pulse amplitude at arbitrary times ``t`` [s] (centred at 0)."""
        t = np.asarray(t, dtype=np.float64)
        return self.envelope(t) * np.cos(2.0 * np.pi * self.center_frequency * t)

    def waveform(self) -> tuple[np.ndarray, np.ndarray]:
        """Sampled pulse: ``(times, amplitudes)`` covering +/- 4 sigma."""
        half = self.duration / 2.0
        n = max(2, int(np.ceil(self.duration * self.sampling_frequency)) + 1)
        t = np.linspace(-half, half, n)
        return t, self.evaluate(t)

    def sample_support(self) -> int:
        """Number of echo samples the pulse spans at the sampling frequency."""
        return int(np.ceil(self.duration * self.sampling_frequency))
