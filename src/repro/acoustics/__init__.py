"""Acoustic substrate: transmit pulse, phantoms and synthetic echo generation."""

from .echo import ChannelData, EchoSimulator
from .phantom import Phantom, cyst_phantom, point_grid, point_target, speckle_phantom
from .pulse import GaussianPulse

__all__ = [
    "GaussianPulse",
    "Phantom",
    "point_target",
    "point_grid",
    "speckle_phantom",
    "cyst_phantom",
    "EchoSimulator",
    "ChannelData",
]
