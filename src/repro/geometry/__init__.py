"""Geometry substrate: transducer, focal grid, traversal orders and apodization."""

from .apodization import (
    WindowType,
    aperture_apodization,
    combined_receive_weights,
    directivity_weights,
    window_1d,
)
from .coordinates import (
    cartesian_to_spherical,
    distances,
    off_axis_angle,
    pairwise_distances,
    spherical_to_cartesian,
)
from .transducer import MatrixTransducer
from .traversal import (
    TraversalStats,
    TraversalStep,
    analyze_traversal,
    compare_orders,
    nappe_order,
    nappe_order_indices,
    orders_visit_same_points,
    scanline_order,
    scanline_order_indices,
)
from .volume import FocalGrid

__all__ = [
    "MatrixTransducer",
    "FocalGrid",
    "WindowType",
    "window_1d",
    "aperture_apodization",
    "directivity_weights",
    "combined_receive_weights",
    "spherical_to_cartesian",
    "cartesian_to_spherical",
    "distances",
    "pairwise_distances",
    "off_axis_angle",
    "TraversalStep",
    "TraversalStats",
    "scanline_order",
    "nappe_order",
    "scanline_order_indices",
    "nappe_order_indices",
    "analyze_traversal",
    "compare_orders",
    "orders_visit_same_points",
]
