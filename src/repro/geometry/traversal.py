"""Focal-point traversal orders (Algorithm 1 / Figure 1 of the paper).

The beamformer can reconstruct the volume *scanline-by-scanline* (fix
``theta, phi``, sweep depth) or *nappe-by-nappe* (fix depth, sweep
``theta, phi``).  Both orders visit exactly the same set of focal points and
therefore produce the same image, but they interact very differently with a
delay table: the nappe order touches one constant-depth slice of the table
intensively before moving on, which is what makes the TABLESTEER streaming /
caching scheme of Section V-B work.

This module provides explicit index generators for both orders plus metrics
(delay-table slice reuse, working-set size) used by experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..config import SystemConfig, VolumeConfig


@dataclass(frozen=True)
class TraversalStep:
    """One focal point visit: grid indices ``(i_theta, i_phi, i_depth)``."""

    i_theta: int
    i_phi: int
    i_depth: int


def scanline_order(config: VolumeConfig | SystemConfig) -> Iterator[TraversalStep]:
    """Yield focal points scanline-by-scanline (depth innermost).

    Mirrors the first loop nest of Algorithm 1: for each ``theta``, for each
    ``phi``, sweep the whole depth range before moving to the next scanline.
    """
    if isinstance(config, SystemConfig):
        config = config.volume
    for i_theta in range(config.n_theta):
        for i_phi in range(config.n_phi):
            for i_depth in range(config.n_depth):
                yield TraversalStep(i_theta, i_phi, i_depth)


def nappe_order(config: VolumeConfig | SystemConfig) -> Iterator[TraversalStep]:
    """Yield focal points nappe-by-nappe (depth outermost).

    Mirrors the second loop nest of Algorithm 1: for each depth, visit every
    ``(theta, phi)`` before moving deeper.
    """
    if isinstance(config, SystemConfig):
        config = config.volume
    for i_depth in range(config.n_depth):
        for i_theta in range(config.n_theta):
            for i_phi in range(config.n_phi):
                yield TraversalStep(i_theta, i_phi, i_depth)


def scanline_order_indices(config: VolumeConfig | SystemConfig) -> np.ndarray:
    """Scanline-order traversal as an integer array of shape ``(n_points, 3)``."""
    if isinstance(config, SystemConfig):
        config = config.volume
    grid = np.indices((config.n_theta, config.n_phi, config.n_depth))
    return grid.reshape(3, -1).T


def nappe_order_indices(config: VolumeConfig | SystemConfig) -> np.ndarray:
    """Nappe-order traversal as an integer array of shape ``(n_points, 3)``."""
    if isinstance(config, SystemConfig):
        config = config.volume
    grid = np.indices((config.n_depth, config.n_theta, config.n_phi))
    ordered = grid.reshape(3, -1).T  # columns: depth, theta, phi
    return ordered[:, [1, 2, 0]]


@dataclass(frozen=True)
class TraversalStats:
    """Delay-table access statistics for one traversal order.

    ``depth_switches`` counts how many times consecutive focal points change
    depth index — each switch forces a nappe-organised delay table to move to
    a new constant-depth slice.  ``max_consecutive_same_depth`` is the longest
    run of visits that stay within one slice (the reuse the streaming BRAM
    scheme exploits).
    """

    order: str
    point_count: int
    depth_switches: int
    max_consecutive_same_depth: int

    @property
    def slice_reuse_factor(self) -> float:
        """Average number of focal points processed per delay-table slice visit."""
        visits = self.depth_switches + 1
        return self.point_count / visits


def analyze_traversal(indices: np.ndarray, order: str) -> TraversalStats:
    """Compute :class:`TraversalStats` for a traversal given as an index array."""
    indices = np.asarray(indices)
    if indices.ndim != 2 or indices.shape[1] != 3:
        raise ValueError("indices must have shape (n_points, 3)")
    depths = indices[:, 2]
    switches = int(np.count_nonzero(np.diff(depths) != 0))
    # Longest run of identical consecutive depth indices.
    change_points = np.flatnonzero(np.diff(depths) != 0)
    run_boundaries = np.concatenate(([-1], change_points, [len(depths) - 1]))
    run_lengths = np.diff(run_boundaries)
    longest = int(run_lengths.max()) if len(run_lengths) else 0
    return TraversalStats(order=order,
                          point_count=int(indices.shape[0]),
                          depth_switches=switches,
                          max_consecutive_same_depth=longest)


def compare_orders(config: VolumeConfig | SystemConfig) -> dict[str, TraversalStats]:
    """Compare scanline and nappe traversal of the same volume (experiment E2)."""
    if isinstance(config, SystemConfig):
        config = config.volume
    scan = analyze_traversal(scanline_order_indices(config), "scanline")
    nappe = analyze_traversal(nappe_order_indices(config), "nappe")
    return {"scanline": scan, "nappe": nappe}


def orders_visit_same_points(config: VolumeConfig | SystemConfig) -> bool:
    """True if both traversal orders visit exactly the same set of focal points.

    This is the equivalence claim of Algorithm 1: the two loop nests are just
    permutations of one another.
    """
    if isinstance(config, SystemConfig):
        config = config.volume
    scan = scanline_order_indices(config)
    nappe = nappe_order_indices(config)
    scan_sorted = scan[np.lexsort(scan.T[::-1])]
    nappe_sorted = nappe[np.lexsort(nappe.T[::-1])]
    return bool(np.array_equal(scan_sorted, nappe_sorted))
