"""Matrix transducer geometry.

The probe is a planar matrix of ``ex x ey`` elements lying in the ``z = 0``
plane with a regular pitch (lambda/2 for the paper system).  Element positions
are used both by the exact delay computation and by the echo synthesiser.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig, TransducerConfig


@dataclass(frozen=True)
class MatrixTransducer:
    """A planar matrix transducer centred on the origin.

    Attributes
    ----------
    x:
        Element x coordinates, shape ``(ex,)`` [m].
    y:
        Element y coordinates, shape ``(ey,)`` [m].
    positions:
        Full element position array, shape ``(ex * ey, 3)`` [m], ordered
        row-major (x fastest).
    """

    config: TransducerConfig
    x: np.ndarray
    y: np.ndarray
    positions: np.ndarray

    @classmethod
    def from_config(cls, config: TransducerConfig | SystemConfig) -> "MatrixTransducer":
        """Build the element grid from a transducer or full system config."""
        if isinstance(config, SystemConfig):
            config = config.transducer
        x = _centered_grid(config.elements_x, config.pitch)
        y = _centered_grid(config.elements_y, config.pitch)
        xx, yy = np.meshgrid(x, y, indexing="ij")
        positions = np.stack(
            [xx.ravel(), yy.ravel(), np.zeros(xx.size)], axis=-1)
        return cls(config=config, x=x, y=y, positions=positions)

    @property
    def element_count(self) -> int:
        """Total number of elements."""
        return self.positions.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(ex, ey)``."""
        return (self.config.elements_x, self.config.elements_y)

    def element_index(self, ix: int, iy: int) -> int:
        """Flat element index for grid coordinates ``(ix, iy)``."""
        if not (0 <= ix < self.config.elements_x):
            raise IndexError(f"ix={ix} out of range")
        if not (0 <= iy < self.config.elements_y):
            raise IndexError(f"iy={iy} out of range")
        return ix * self.config.elements_y + iy

    def element_position(self, ix: int, iy: int) -> np.ndarray:
        """Position of element ``(ix, iy)`` as a length-3 vector [m]."""
        return self.positions[self.element_index(ix, iy)]

    def grid_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Return meshgrid arrays ``(X, Y)`` of shape ``(ex, ey)`` [m]."""
        return np.meshgrid(self.x, self.y, indexing="ij")

    def center(self) -> np.ndarray:
        """Geometric centre of the aperture (the coordinate origin)."""
        return np.array([np.mean(self.x), np.mean(self.y), 0.0])

    def quadrant_mask(self) -> np.ndarray:
        """Boolean mask of elements in the non-negative (x, y) quadrant.

        TABLESTEER's reference table only needs one quadrant of elements when
        the sound origin is vertically aligned with the transducer centre
        (Section V-A); the other three quadrants follow by symmetry.
        """
        xx, yy = self.grid_positions()
        tol = 1e-12
        return ((xx >= -tol) & (yy >= -tol)).ravel()


def _centered_grid(n: int, pitch: float) -> np.ndarray:
    """Coordinates of ``n`` points with the given pitch, centred on zero."""
    if n < 1:
        raise ValueError("need at least one element")
    return (np.arange(n) - (n - 1) / 2.0) * pitch
