"""Coordinate conversions between the paper's steered-spherical grid and Cartesian space.

The paper parameterises focal points by azimuth ``theta``, elevation ``phi``
and radial distance ``r`` from the sound origin, with (Eq. 5):

    S = (r cos(phi) sin(theta),  r sin(phi),  r cos(phi) cos(theta))

``theta`` steers in the XZ plane and ``phi`` tilts towards the Y axis; the
unsteered line of sight (``theta = phi = 0``) is the positive Z axis.
"""

from __future__ import annotations

import numpy as np


def spherical_to_cartesian(theta: np.ndarray | float,
                           phi: np.ndarray | float,
                           r: np.ndarray | float) -> np.ndarray:
    """Convert steered-spherical coordinates to Cartesian points.

    Parameters broadcast against each other; the result has shape
    ``broadcast_shape + (3,)``.
    """
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    x = r * np.cos(phi) * np.sin(theta)
    y = r * np.sin(phi)
    z = r * np.cos(phi) * np.cos(theta)
    return np.stack(np.broadcast_arrays(x, y, z), axis=-1)


def cartesian_to_spherical(points: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert Cartesian points (``(..., 3)``) back to ``(theta, phi, r)``.

    Inverse of :func:`spherical_to_cartesian` for points with ``r > 0`` and
    ``|phi| < pi/2``.
    """
    points = np.asarray(points, dtype=np.float64)
    x, y, z = points[..., 0], points[..., 1], points[..., 2]
    r = np.sqrt(x * x + y * y + z * z)
    with np.errstate(invalid="ignore", divide="ignore"):
        phi = np.arcsin(np.clip(np.divide(y, r, out=np.zeros_like(y),
                                          where=r > 0), -1.0, 1.0))
        theta = np.arctan2(x, z)
    return theta, phi, r


def distances(points: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Euclidean distances between ``points`` (``(..., 3)``) and a single ``reference``."""
    points = np.asarray(points, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    return np.linalg.norm(points - reference, axis=-1)


def pairwise_distances(points_a: np.ndarray, points_b: np.ndarray) -> np.ndarray:
    """Distance matrix between two point sets.

    Parameters
    ----------
    points_a:
        Array of shape ``(na, 3)``.
    points_b:
        Array of shape ``(nb, 3)``.

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(na, nb)`` with Euclidean distances.
    """
    a = np.asarray(points_a, dtype=np.float64)[:, None, :]
    b = np.asarray(points_b, dtype=np.float64)[None, :, :]
    return np.linalg.norm(a - b, axis=-1)


def off_axis_angle(points: np.ndarray, origins: np.ndarray) -> np.ndarray:
    """Angle between the z axis and the vector from each origin to each point.

    Used by the directivity model: an element cannot receive energy from
    directions that are too far off its normal (the z axis for a planar
    probe).

    Parameters
    ----------
    points:
        Array of shape ``(np_, 3)``.
    origins:
        Array of shape ``(no, 3)`` (typically element positions).

    Returns
    -------
    numpy.ndarray
        Angles in radians, shape ``(np_, no)``.
    """
    p = np.asarray(points, dtype=np.float64)[:, None, :]
    o = np.asarray(origins, dtype=np.float64)[None, :, :]
    delta = p - o
    dz = delta[..., 2]
    norm = np.linalg.norm(delta, axis=-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        cos_angle = np.divide(dz, norm, out=np.ones_like(dz), where=norm > 0)
    return np.arccos(np.clip(cos_angle, -1.0, 1.0))
