"""Imaging volume: the focal-point grid the beamformer reconstructs.

The volume is a regular grid in steered-spherical coordinates: ``n_theta``
azimuth angles x ``n_phi`` elevation angles x ``n_depth`` radial distances,
matching the 128 x 128 x 1000 grid of the paper system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig, VolumeConfig
from .coordinates import spherical_to_cartesian


@dataclass(frozen=True)
class FocalGrid:
    """The grid of focal points of the imaging volume.

    Attributes
    ----------
    thetas:
        Azimuth steering angles [rad], shape ``(n_theta,)``.
    phis:
        Elevation steering angles [rad], shape ``(n_phi,)``.
    depths:
        Radial distances from the sound origin [m], shape ``(n_depth,)``.
    """

    config: VolumeConfig
    thetas: np.ndarray
    phis: np.ndarray
    depths: np.ndarray

    @classmethod
    def from_config(cls, config: VolumeConfig | SystemConfig) -> "FocalGrid":
        """Build the focal grid described by a volume or system config."""
        if isinstance(config, SystemConfig):
            config = config.volume
        thetas = np.linspace(-config.theta_max, config.theta_max, config.n_theta)
        phis = np.linspace(-config.phi_max, config.phi_max, config.n_phi)
        depths = np.linspace(config.depth_min, config.depth_max, config.n_depth)
        return cls(config=config, thetas=thetas, phis=phis, depths=depths)

    @property
    def shape(self) -> tuple[int, int, int]:
        """Grid shape ``(n_theta, n_phi, n_depth)``."""
        return (len(self.thetas), len(self.phis), len(self.depths))

    @property
    def point_count(self) -> int:
        """Total number of focal points."""
        n_theta, n_phi, n_depth = self.shape
        return n_theta * n_phi * n_depth

    def scanline_directions(self) -> tuple[np.ndarray, np.ndarray]:
        """Meshgrid of all ``(theta, phi)`` scanline angles, shape ``(n_theta, n_phi)``."""
        return np.meshgrid(self.thetas, self.phis, indexing="ij")

    def point(self, i_theta: int, i_phi: int, i_depth: int) -> np.ndarray:
        """Cartesian coordinates of focal point ``(i_theta, i_phi, i_depth)`` [m]."""
        return spherical_to_cartesian(self.thetas[i_theta],
                                      self.phis[i_phi],
                                      self.depths[i_depth])

    def scanline_points(self, i_theta: int, i_phi: int) -> np.ndarray:
        """All focal points of one scanline, shape ``(n_depth, 3)`` [m]."""
        return spherical_to_cartesian(self.thetas[i_theta],
                                      self.phis[i_phi],
                                      self.depths)

    def nappe_points(self, i_depth: int) -> np.ndarray:
        """All focal points of one nappe (constant depth), shape ``(n_theta, n_phi, 3)``.

        A nappe is a surface at constant distance from the origin
        (Section II-A / Fig. 1); the nappe-by-nappe beamformer reconstructs
        one such surface at a time.
        """
        tt, pp = self.scanline_directions()
        return spherical_to_cartesian(tt, pp, self.depths[i_depth])

    def all_points(self) -> np.ndarray:
        """All focal points, shape ``(n_theta, n_phi, n_depth, 3)`` [m].

        For the full paper system this is ~16.4 M points (~400 MB as float64);
        use :meth:`nappe_points` / :meth:`scanline_points` for streaming
        access instead when memory matters.
        """
        tt, pp, dd = np.meshgrid(self.thetas, self.phis, self.depths,
                                 indexing="ij")
        return spherical_to_cartesian(tt, pp, dd)

    def subsample(self, every_theta: int = 1, every_phi: int = 1,
                  every_depth: int = 1) -> "FocalGrid":
        """Return a decimated copy of the grid (used by accuracy sweeps).

        The accuracy experiments of Section VI-A explore the volume on a
        coarser grid than the full 16.4 M points; this helper keeps the
        angular and radial extents but skips points.
        """
        thetas = self.thetas[::every_theta]
        phis = self.phis[::every_phi]
        depths = self.depths[::every_depth]
        new_config = VolumeConfig(
            n_theta=len(thetas),
            n_phi=len(phis),
            n_depth=len(depths),
            theta_max=self.config.theta_max,
            phi_max=self.config.phi_max,
            depth_min=float(depths[0]),
            depth_max=float(depths[-1]),
        )
        return FocalGrid(config=new_config, thetas=thetas, phis=phis,
                         depths=depths)
