"""Apodization windows for receive beamforming.

Apodization weights the contribution of each receive element to suppress
side lobes.  In the paper it also plays an accuracy role: the worst-case
errors of the TABLESTEER far-field approximation occur at extreme steering
angles, beyond the elements' directivity, where the apodization weight is
(near) zero — so in practice they do not degrade the image (Section VI-A).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from .transducer import MatrixTransducer


class WindowType(str, Enum):
    """Supported apodization window shapes."""

    RECTANGULAR = "rectangular"
    HANN = "hann"
    HAMMING = "hamming"
    BLACKMAN = "blackman"
    TUKEY = "tukey"


def window_1d(n: int, kind: WindowType = WindowType.HANN,
              tukey_alpha: float = 0.5) -> np.ndarray:
    """Return a length-``n`` apodization window of the requested kind."""
    if n < 1:
        raise ValueError("window length must be at least 1")
    if n == 1:
        return np.ones(1)
    if kind is WindowType.RECTANGULAR:
        window = np.ones(n)
    elif kind is WindowType.HANN:
        window = np.hanning(n)
    elif kind is WindowType.HAMMING:
        window = np.hamming(n)
    elif kind is WindowType.BLACKMAN:
        window = np.blackman(n)
    elif kind is WindowType.TUKEY:
        window = _tukey(n, tukey_alpha)
    else:
        raise ValueError(f"unknown window type: {kind!r}")
    # Some NumPy window implementations produce tiny negative endpoint values
    # (e.g. Blackman, -1e-17); apodization weights must never be negative.
    return np.clip(window, 0.0, None)


def _tukey(n: int, alpha: float) -> np.ndarray:
    """Tukey (tapered cosine) window without requiring scipy.signal."""
    if alpha <= 0:
        return np.ones(n)
    if alpha >= 1:
        return np.hanning(n)
    x = np.linspace(0, 1, n)
    window = np.ones(n)
    taper = alpha / 2.0
    rising = x < taper
    falling = x >= 1 - taper
    window[rising] = 0.5 * (1 + np.cos(np.pi * (2 * x[rising] / alpha - 1)))
    window[falling] = 0.5 * (1 + np.cos(np.pi * (2 * x[falling] / alpha - 2 / alpha + 1)))
    return window


def aperture_apodization(transducer: MatrixTransducer,
                         kind: WindowType = WindowType.HANN) -> np.ndarray:
    """Separable 2-D apodization over the full aperture.

    Returns weights of shape ``(ex, ey)`` formed as the outer product of two
    1-D windows, normalised so the maximum weight is 1.
    """
    wx = window_1d(transducer.config.elements_x, kind)
    wy = window_1d(transducer.config.elements_y, kind)
    weights = np.outer(wx, wy)
    peak = weights.max()
    if peak > 0:
        weights = weights / peak
    return weights


def directivity_weights(angles: np.ndarray, max_angle: float,
                        rolloff: float = 0.1) -> np.ndarray:
    """Directivity-based weights as a function of off-axis angle.

    Elements have limited directivity: they cannot receive energy from points
    too far off their normal axis.  The weight is 1 inside
    ``max_angle * (1 - rolloff)``, 0 beyond ``max_angle`` and falls off with a
    raised cosine in between — a smooth stand-in for the element's physical
    angular response.

    Parameters
    ----------
    angles:
        Off-axis angles [rad] (any shape).
    max_angle:
        Angle beyond which the element contributes nothing [rad].
    rolloff:
        Fraction of ``max_angle`` over which the response tapers from 1 to 0.
    """
    if max_angle <= 0:
        raise ValueError("max_angle must be positive")
    if not 0 <= rolloff <= 1:
        raise ValueError("rolloff must be in [0, 1]")
    angles = np.abs(np.asarray(angles, dtype=np.float64))
    knee = max_angle * (1.0 - rolloff)
    weights = np.ones_like(angles)
    weights[angles >= max_angle] = 0.0
    in_taper = (angles > knee) & (angles < max_angle)
    if np.any(in_taper):
        span = max_angle - knee
        if span > 0:
            phase = (angles[in_taper] - knee) / span
            weights[in_taper] = 0.5 * (1 + np.cos(np.pi * phase))
        else:
            weights[in_taper] = 0.0
    return weights


def combined_receive_weights(transducer: MatrixTransducer,
                             off_axis_angles: np.ndarray,
                             kind: WindowType = WindowType.HANN,
                             rolloff: float = 0.1) -> np.ndarray:
    """Combine aperture apodization with per-point directivity weighting.

    Parameters
    ----------
    transducer:
        The receiving matrix transducer.
    off_axis_angles:
        Off-axis angles from each element to the focal point, shape
        ``(..., element_count)`` [rad].
    kind:
        Aperture window shape.
    rolloff:
        Directivity taper fraction.

    Returns
    -------
    numpy.ndarray
        Weights with the same shape as ``off_axis_angles``.
    """
    aperture = aperture_apodization(transducer, kind).ravel()
    directivity = directivity_weights(
        off_axis_angles, transducer.config.directivity_max_angle, rolloff)
    return aperture * directivity
