"""Q-format fixed-point number format descriptions.

The hardware architectures in the paper store delays and correction
coefficients in fixed point: unsigned ``13.5`` for reference delays (13
integer bits, 5 fractional bits) and signed ``13.4`` for steering corrections
(Section V-B).  This module provides a small, explicit description of such
formats; the quantisation machinery lives in :mod:`repro.fixedpoint.quantize`
and the array wrapper in :mod:`repro.fixedpoint.array`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QFormat:
    """A fixed-point format with ``integer_bits`` and ``fraction_bits``.

    The represented value of a stored integer ``k`` is ``k * 2**-fraction_bits``.
    For signed formats one additional sign bit is implied, mirroring the
    convention used in the paper (e.g. "signed 13.4" occupies 18 bits total
    with the sign bit).
    """

    integer_bits: int
    fraction_bits: int
    signed: bool = False

    def __post_init__(self) -> None:
        if self.integer_bits < 0:
            raise ValueError("integer_bits must be non-negative")
        if self.fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")
        if self.integer_bits + self.fraction_bits == 0:
            raise ValueError("format must have at least one bit of magnitude")

    @property
    def total_bits(self) -> int:
        """Total storage width in bits (including the sign bit if signed)."""
        return self.integer_bits + self.fraction_bits + (1 if self.signed else 0)

    @property
    def resolution(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** self.integer_bits) - self.resolution

    @property
    def min_value(self) -> float:
        """Smallest representable value (0 for unsigned formats)."""
        if self.signed:
            return -float(2 ** self.integer_bits)
        return 0.0

    @property
    def max_raw(self) -> int:
        """Largest representable raw (integer) code."""
        return (1 << (self.integer_bits + self.fraction_bits)) - 1

    @property
    def min_raw(self) -> int:
        """Smallest representable raw (integer) code."""
        if self.signed:
            return -(1 << (self.integer_bits + self.fraction_bits))
        return 0

    def describe(self) -> str:
        """Human-readable description, e.g. ``'U13.5 (18 bits)'``."""
        prefix = "S" if self.signed else "U"
        return (f"{prefix}{self.integer_bits}.{self.fraction_bits} "
                f"({self.total_bits} bits)")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def unsigned(integer_bits: int, fraction_bits: int) -> QFormat:
    """Create an unsigned Q-format."""
    return QFormat(integer_bits, fraction_bits, signed=False)


def signed(integer_bits: int, fraction_bits: int) -> QFormat:
    """Create a signed Q-format (one extra sign bit of storage)."""
    return QFormat(integer_bits, fraction_bits, signed=True)


# Formats used by the TABLESTEER architecture (Section V-B).
REFERENCE_DELAY_18B = unsigned(13, 5)
"""Unsigned 13.5 format for reference delays in the 18-bit design."""

CORRECTION_18B = signed(13, 4)
"""Signed 13.4 format for steering corrections in the 18-bit design."""

REFERENCE_DELAY_14B = unsigned(13, 1)
"""Unsigned 13.1 format for reference delays in the 14-bit design."""

CORRECTION_14B = signed(13, 0)
"""Signed 13.0 format for steering corrections in the 14-bit design."""

DELAY_INDEX_13B = unsigned(13, 0)
"""Plain 13-bit integer delay index (the minimum to address ~8000 samples)."""


def tablesteer_formats(total_bits: int) -> tuple[QFormat, QFormat]:
    """Return ``(reference_format, correction_format)`` for a given width.

    The paper evaluates 14-bit and 18-bit variants; this helper generalises
    the rule it uses: 13 integer bits are always needed to index the echo
    buffer, every additional bit is spent on fractional precision, and the
    correction format gives up one fractional bit to hold the sign.
    """
    if total_bits < 13:
        raise ValueError("at least 13 bits are needed to index the echo buffer")
    fraction = total_bits - 13
    reference = unsigned(13, fraction)
    correction = signed(13, max(0, fraction - 1))
    return reference, correction
