"""Quantisation of floating-point values into Q-format fixed point.

The functions here operate on NumPy arrays (or scalars) and model the
behaviour of the hardware datapaths described in the paper: values are scaled
by ``2**fraction_bits``, rounded with a configurable rounding mode, and
saturated or wrapped to the representable range.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from .format import QFormat


class RoundingMode(str, Enum):
    """Rounding modes supported by the quantiser."""

    NEAREST = "nearest"
    """Round half away from zero (the behaviour of a hardware round unit)."""

    NEAREST_EVEN = "nearest_even"
    """Round half to even (IEEE default, ``numpy.rint``)."""

    FLOOR = "floor"
    """Truncate towards negative infinity (drop fractional bits)."""

    CEIL = "ceil"
    """Round towards positive infinity."""

    TRUNCATE = "truncate"
    """Truncate towards zero."""


class OverflowMode(str, Enum):
    """Behaviour when a value exceeds the representable range."""

    SATURATE = "saturate"
    """Clamp to the closest representable value."""

    WRAP = "wrap"
    """Two's-complement style wrap-around."""

    ERROR = "error"
    """Raise :class:`OverflowError`."""


def _apply_rounding(scaled: np.ndarray, mode: RoundingMode) -> np.ndarray:
    if mode is RoundingMode.NEAREST:
        return _round_half_away(scaled)
    if mode is RoundingMode.NEAREST_EVEN:
        return np.rint(scaled)
    if mode is RoundingMode.FLOOR:
        return np.floor(scaled)
    if mode is RoundingMode.CEIL:
        return np.ceil(scaled)
    if mode is RoundingMode.TRUNCATE:
        return np.trunc(scaled)
    raise ValueError(f"unknown rounding mode: {mode!r}")


def _round_half_away(scaled: np.ndarray) -> np.ndarray:
    """Round half away from zero, element-wise."""
    return np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)


def _apply_overflow(raw: np.ndarray, fmt: QFormat, mode: OverflowMode) -> np.ndarray:
    lo, hi = fmt.min_raw, fmt.max_raw
    if mode is OverflowMode.SATURATE:
        return np.clip(raw, lo, hi)
    if mode is OverflowMode.WRAP:
        span = hi - lo + 1
        return ((raw - lo) % span) + lo
    if mode is OverflowMode.ERROR:
        if np.any(raw < lo) or np.any(raw > hi):
            raise OverflowError(
                f"value out of range for format {fmt.describe()}")
        return raw
    raise ValueError(f"unknown overflow mode: {mode!r}")


def to_raw(values: np.ndarray | float,
           fmt: QFormat,
           rounding: RoundingMode = RoundingMode.NEAREST,
           overflow: OverflowMode = OverflowMode.SATURATE) -> np.ndarray:
    """Quantise floating-point ``values`` to raw integer codes of ``fmt``.

    Parameters
    ----------
    values:
        Array (or scalar) of floating-point values to quantise.
    fmt:
        Target fixed-point format.
    rounding:
        How to round to the nearest representable code.
    overflow:
        What to do when values fall outside the representable range.

    Returns
    -------
    numpy.ndarray
        Integer codes; the represented value is ``code * fmt.resolution``.
    """
    arr = np.asarray(values, dtype=np.float64)
    scaled = arr * (2 ** fmt.fraction_bits)
    rounded = _apply_rounding(scaled, rounding)
    raw = _apply_overflow(rounded, fmt, mode=overflow)
    return raw.astype(np.int64)


def from_raw(raw: np.ndarray | int, fmt: QFormat) -> np.ndarray:
    """Convert raw integer codes back to floating-point values."""
    return np.asarray(raw, dtype=np.float64) * fmt.resolution


def quantize(values: np.ndarray | float,
             fmt: QFormat,
             rounding: RoundingMode = RoundingMode.NEAREST,
             overflow: OverflowMode = OverflowMode.SATURATE) -> np.ndarray:
    """Quantise ``values`` to ``fmt`` and return the represented floats.

    This is the round-trip ``from_raw(to_raw(values))`` and is the most common
    operation when modelling a fixed-point datapath numerically.
    """
    return from_raw(to_raw(values, fmt, rounding=rounding, overflow=overflow), fmt)


def quantization_error(values: np.ndarray | float,
                       fmt: QFormat,
                       rounding: RoundingMode = RoundingMode.NEAREST) -> np.ndarray:
    """Return the signed error introduced by quantising ``values`` to ``fmt``."""
    arr = np.asarray(values, dtype=np.float64)
    return quantize(arr, fmt, rounding=rounding) - arr


def representable(values: np.ndarray | float, fmt: QFormat) -> np.ndarray:
    """Boolean mask of values that fit ``fmt`` without saturation."""
    arr = np.asarray(values, dtype=np.float64)
    return (arr >= fmt.min_value) & (arr <= fmt.max_value)
