"""A small fixed-point array wrapper used to model hardware datapaths.

:class:`FixedPointArray` couples raw integer codes with a :class:`QFormat`.
Arithmetic between arrays models what a hardware adder operating on aligned
fixed-point operands does: the fractional points are aligned, the integer
codes are added, and the result is expressed in the wider of the two formats
(saturating at its range).  This is deliberately simple — it is a numerical
model for accuracy analysis, not a bit-true RTL simulator — but it reproduces
the rounding and saturation behaviour the paper's accuracy discussion relies
on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .format import QFormat
from .quantize import OverflowMode, RoundingMode, from_raw, to_raw


@dataclass(frozen=True)
class FixedPointArray:
    """An array of fixed-point values: raw integer codes plus a format."""

    raw: np.ndarray
    fmt: QFormat

    @classmethod
    def from_float(cls,
                   values: np.ndarray | float,
                   fmt: QFormat,
                   rounding: RoundingMode = RoundingMode.NEAREST,
                   overflow: OverflowMode = OverflowMode.SATURATE) -> "FixedPointArray":
        """Quantise floating-point values into a :class:`FixedPointArray`."""
        return cls(to_raw(values, fmt, rounding=rounding, overflow=overflow), fmt)

    def to_float(self) -> np.ndarray:
        """Return the represented floating-point values."""
        return from_raw(self.raw, self.fmt)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return np.asarray(self.raw).shape

    def __len__(self) -> int:
        return len(np.asarray(self.raw))

    def _aligned_raw(self, target_fraction_bits: int) -> np.ndarray:
        shift = target_fraction_bits - self.fmt.fraction_bits
        raw = np.asarray(self.raw, dtype=np.int64)
        if shift >= 0:
            return raw << shift
        # Right shift with round-to-nearest to model a hardware rounding stage.
        half = 1 << (-shift - 1)
        return (raw + half) >> (-shift)

    def add(self, other: "FixedPointArray",
            result_fmt: QFormat | None = None,
            overflow: OverflowMode = OverflowMode.SATURATE) -> "FixedPointArray":
        """Add two fixed-point arrays with fraction-point alignment.

        The result format defaults to the format with more fractional bits,
        widened to signed if either operand is signed.
        """
        if result_fmt is None:
            frac = max(self.fmt.fraction_bits, other.fmt.fraction_bits)
            integer = max(self.fmt.integer_bits, other.fmt.integer_bits) + 1
            result_fmt = QFormat(integer, frac,
                                 signed=self.fmt.signed or other.fmt.signed)
        a = self._aligned_raw(result_fmt.fraction_bits)
        b = other._aligned_raw(result_fmt.fraction_bits)
        total = a + b
        lo, hi = result_fmt.min_raw, result_fmt.max_raw
        if overflow is OverflowMode.SATURATE:
            total = np.clip(total, lo, hi)
        elif overflow is OverflowMode.WRAP:
            span = hi - lo + 1
            total = ((total - lo) % span) + lo
        elif overflow is OverflowMode.ERROR:
            if np.any(total < lo) or np.any(total > hi):
                raise OverflowError("fixed-point addition overflow")
        return FixedPointArray(total.astype(np.int64), result_fmt)

    def round_to_integer(self) -> np.ndarray:
        """Round the represented values to integer indices (half away from zero).

        This models the final rounding stage of the delay datapath, which
        converts a fixed-point delay into an integer echo-buffer index.
        """
        raw = np.asarray(self.raw, dtype=np.int64)
        frac = self.fmt.fraction_bits
        if frac == 0:
            return raw.copy()
        half = 1 << (frac - 1)
        positive = (raw + half) >> frac
        negative = -((-raw + half) >> frac)
        return np.where(raw >= 0, positive, negative).astype(np.int64)

    def storage_bits(self) -> int:
        """Total number of bits needed to store this array."""
        return int(np.asarray(self.raw).size) * self.fmt.total_bits
