"""Fixed-point arithmetic substrate.

Models the Q-format number representations used by the paper's hardware
datapaths: format description (:mod:`repro.fixedpoint.format`), quantisation
(:mod:`repro.fixedpoint.quantize`) and an array wrapper with aligned addition
and rounding (:mod:`repro.fixedpoint.array`).
"""

from .array import FixedPointArray
from .format import (
    CORRECTION_14B,
    CORRECTION_18B,
    DELAY_INDEX_13B,
    QFormat,
    REFERENCE_DELAY_14B,
    REFERENCE_DELAY_18B,
    signed,
    tablesteer_formats,
    unsigned,
)
from .quantize import (
    OverflowMode,
    RoundingMode,
    from_raw,
    quantization_error,
    quantize,
    representable,
    to_raw,
)

__all__ = [
    "FixedPointArray",
    "QFormat",
    "RoundingMode",
    "OverflowMode",
    "signed",
    "unsigned",
    "tablesteer_formats",
    "quantize",
    "quantization_error",
    "representable",
    "to_raw",
    "from_raw",
    "REFERENCE_DELAY_18B",
    "CORRECTION_18B",
    "REFERENCE_DELAY_14B",
    "CORRECTION_14B",
    "DELAY_INDEX_13B",
]
