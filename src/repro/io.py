"""Export and import of delay tables and correction coefficients.

A hardware team consuming this library needs the TABLESTEER data structures
as packed binary images (the BRAM initialisation contents / the DRAM table
the streaming scheme fetches).  This module serialises:

* the pruned reference delay table, quantised to its fixed-point format and
  packed into the smallest unsigned integer dtype that holds it;
* the separable steering-correction terms, quantised and stored as signed
  integers (raw two's-complement codes);
* the metadata needed to interpret them (Q formats, grid dimensions, system
  parameters),

into a single ``.npz`` archive, and loads them back into NumPy arrays with
the represented floating-point values reconstructed.  Round-tripping through
the archive is exact by construction (the stored codes are the ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .config import SystemConfig
from .core.reference_table import ReferenceDelayTable
from .core.steering import SteeringCorrections
from .fixedpoint.format import QFormat, tablesteer_formats
from .fixedpoint.quantize import from_raw, to_raw

_FORMAT_VERSION = 1


def _uint_dtype_for(bits: int) -> np.dtype:
    if bits <= 8:
        return np.dtype(np.uint8)
    if bits <= 16:
        return np.dtype(np.uint16)
    if bits <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


def _int_dtype_for(bits: int) -> np.dtype:
    if bits <= 8:
        return np.dtype(np.int8)
    if bits <= 16:
        return np.dtype(np.int16)
    if bits <= 32:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


@dataclass(frozen=True)
class ExportedTables:
    """In-memory view of an exported (or re-loaded) table archive."""

    reference_raw: np.ndarray
    reference_format: QFormat
    x_terms_raw: np.ndarray
    y_terms_raw: np.ndarray
    correction_format: QFormat
    total_bits: int
    system_name: str
    grid_shape: tuple[int, int, int]

    @property
    def reference_samples(self) -> np.ndarray:
        """Reference delays as represented floating-point sample values."""
        return from_raw(self.reference_raw.astype(np.int64), self.reference_format)

    @property
    def x_terms_samples(self) -> np.ndarray:
        """X-direction correction terms as floating-point sample values."""
        return from_raw(self.x_terms_raw.astype(np.int64), self.correction_format)

    @property
    def y_terms_samples(self) -> np.ndarray:
        """Y-direction correction terms as floating-point sample values."""
        return from_raw(self.y_terms_raw.astype(np.int64), self.correction_format)

    def storage_bits(self) -> int:
        """Total payload size in bits at the nominal fixed-point widths."""
        return (self.reference_raw.size * self.reference_format.total_bits
                + (self.x_terms_raw.size + self.y_terms_raw.size)
                * self.correction_format.total_bits)


def export_tablesteer_tables(system: SystemConfig, path: str | Path,
                             total_bits: int = 18) -> ExportedTables:
    """Build, quantise and write the TABLESTEER tables for ``system``.

    Returns the in-memory :class:`ExportedTables` that was written, so callers
    can inspect what landed on disk without re-reading it.
    """
    path = Path(path)
    ref_fmt, corr_fmt = tablesteer_formats(total_bits)
    reference = ReferenceDelayTable.build(system)
    corrections = SteeringCorrections.build(system)

    reference_raw = to_raw(reference.quadrant, ref_fmt)
    x_raw = to_raw(corrections.x_terms, corr_fmt)
    y_raw = to_raw(corrections.y_terms, corr_fmt)

    exported = ExportedTables(
        reference_raw=reference_raw.astype(_uint_dtype_for(ref_fmt.total_bits)),
        reference_format=ref_fmt,
        x_terms_raw=x_raw.astype(_int_dtype_for(corr_fmt.total_bits)),
        y_terms_raw=y_raw.astype(_int_dtype_for(corr_fmt.total_bits)),
        correction_format=corr_fmt,
        total_bits=total_bits,
        system_name=system.name,
        grid_shape=(system.volume.n_theta, system.volume.n_phi,
                    system.volume.n_depth),
    )
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        total_bits=np.int64(total_bits),
        system_name=np.bytes_(system.name.encode()),
        grid_shape=np.array(exported.grid_shape, dtype=np.int64),
        reference_raw=exported.reference_raw,
        reference_integer_bits=np.int64(ref_fmt.integer_bits),
        reference_fraction_bits=np.int64(ref_fmt.fraction_bits),
        x_terms_raw=exported.x_terms_raw,
        y_terms_raw=exported.y_terms_raw,
        correction_integer_bits=np.int64(corr_fmt.integer_bits),
        correction_fraction_bits=np.int64(corr_fmt.fraction_bits),
    )
    return exported


def load_tablesteer_tables(path: str | Path) -> ExportedTables:
    """Load a table archive written by :func:`export_tablesteer_tables`."""
    path = Path(path)
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported table archive version {version}")
        ref_fmt = QFormat(int(archive["reference_integer_bits"]),
                          int(archive["reference_fraction_bits"]), signed=False)
        corr_fmt = QFormat(int(archive["correction_integer_bits"]),
                           int(archive["correction_fraction_bits"]), signed=True)
        grid_shape = tuple(int(x) for x in archive["grid_shape"])
        return ExportedTables(
            reference_raw=archive["reference_raw"],
            reference_format=ref_fmt,
            x_terms_raw=archive["x_terms_raw"],
            y_terms_raw=archive["y_terms_raw"],
            correction_format=corr_fmt,
            total_bits=int(archive["total_bits"]),
            system_name=bytes(archive["system_name"]).decode(),
            grid_shape=grid_shape,  # type: ignore[arg-type]
        )


def export_bram_initialisation(exported: ExportedTables, n_banks: int = 128,
                               bank_words: int = 1024) -> list[np.ndarray]:
    """Split the reference table into per-BRAM-bank initialisation images.

    Depth slices are staggered across the banks (Section V-B) and each bank's
    words are returned as raw integer codes, padded with zeros to the bank
    size; the list has one array of ``bank_words`` codes per bank chunk.
    Only the first ``n_banks * bank_words`` words of the flattened table are
    covered per chunk — the streaming controller cycles through chunks at
    runtime.
    """
    if n_banks < 1 or bank_words < 1:
        raise ValueError("bank geometry must be positive")
    flat = exported.reference_raw.reshape(-1)
    words_per_chunk = n_banks * bank_words
    banks = []
    chunk = flat[:words_per_chunk]
    for bank in range(n_banks):
        words = chunk[bank::n_banks][:bank_words]
        padded = np.zeros(bank_words, dtype=flat.dtype)
        padded[:len(words)] = words
        banks.append(padded)
    return banks
