"""Declarative, serialisable specs for engines and scans.

An :class:`EngineSpec` describes *everything needed to build a beamforming
engine* — system (preset name or inline :class:`repro.config.SystemConfig`),
delay architecture + options, execution backend + options, apodization,
interpolation and cache sizing — as one frozen, JSON-round-trippable
document.  A :class:`ScanSpec` describes *what to image*: a registered cine
scenario plus frame count, noise and seed.  Together they make a whole run
portable: ship the JSON, rebuild the identical engine anywhere with
``Session(EngineSpec.from_json(text))``.

Architecture/backend names and options are validated eagerly against the
registries (:data:`repro.architectures.ARCHITECTURES`,
:data:`repro.runtime.backends.BACKENDS`, :data:`SCENARIOS`), so a typo in a
spec file fails at load time with the list of registered names, not deep in
a run.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterable

from ..architectures import ARCHITECTURES, architecture_name
from ..beamformer.das import ApodizationSettings
from ..beamformer.interpolation import InterpolationKind
from ..config import PRESETS, SystemConfig, get_preset
from ..kernels import Precision, QuantizationSpec, TilePlanner, \
    parse_memory_budget, resolve_precision
from ..registry import decode_options, encode_options
from ..runtime.backends import BACKENDS
from ..runtime.scheduler import FrameRequest
from ..scenarios import SCENARIOS, SCHEMES

__all__ = [
    "EngineSpec",
    "ScanSpec",
    "SweepSpec",
    "SCENARIOS",
    "SCHEMES",
    "apply_overrides",
    "parse_assignment",
]


# ------------------------------------------------------------- engine spec
@dataclass(frozen=True)
class EngineSpec:
    """Declarative description of one complete beamforming engine.

    Fields accept both rich objects and their plain-dict/JSON forms (the
    constructor coerces and validates either way), so specs can be built in
    code or loaded from documents interchangeably::

        EngineSpec(system="tiny", architecture="tablesteer",
                   architecture_options={"total_bits": 14})
        EngineSpec.from_json(path.read_text())
    """

    system: str | SystemConfig = "small"
    """Preset name (see :data:`repro.config.PRESETS`) or inline config."""

    architecture: str = "exact"
    """Registered delay-architecture name."""

    architecture_options: Any = None
    """Options dataclass/dict for the architecture (``None`` = defaults)."""

    backend: str = "reference"
    """Registered execution-backend name."""

    backend_options: Any = None
    """Options dataclass/dict for the backend (``None`` = defaults)."""

    apodization: ApodizationSettings = field(
        default_factory=ApodizationSettings)
    """Receive apodization settings (dict form accepted)."""

    interpolation: InterpolationKind = InterpolationKind.NEAREST
    """Echo-sample interpolation strategy (name or enum)."""

    precision: Precision = Precision.FLOAT64
    """Kernel execution dtype policy (``"float64"`` exact /
    ``"float32"`` fast; name or :class:`repro.kernels.Precision`)."""

    quantization: Any = None
    """Bit-true fixed-point execution spec
    (:class:`repro.kernels.QuantizationSpec`, its dict form, a total bit
    width like ``18``, or a delay Q-format string like ``"U13.5"``);
    ``None`` keeps the float kernel path."""

    scheme: str = "focused"
    """Registered transmit-scheme name (see
    :data:`repro.scenarios.SCHEMES`): how each volume is insonified —
    ``focused`` (the paper baseline), ``planewave``,
    ``synthetic_aperture`` or ``diverging``."""

    scheme_options: Any = None
    """Options dataclass/dict for the scheme (``None`` = defaults)."""

    cache_capacity: int = 4
    """Capacity of the session's shared compiled-plan LRU cache.

    Sessions grow this to the scheme's firing count when needed, so
    multi-firing compounding never thrashes its own per-event plans."""

    trace: bool = False
    """Record a span trace of every session operation.

    ``True`` makes the session construct a live
    :class:`repro.observability.Tracer` (instead of inheriting the process
    default, normally a no-op) and thread it through its services,
    pipelines and sweeps; read the result back via ``Session.tracer`` or
    the CLI's ``--trace`` / ``--trace-out`` flags.  Tracing is
    observation-only — traced volumes are bit-identical to untraced."""

    memory_budget_bytes: int | str | None = None
    """Plan-memory budget for the engine, in bytes (suffixed strings like
    ``"8G"`` accepted; normalised to an int at validation).

    ``None`` (the default) keeps the historical unbounded behaviour.  With
    a budget, the session's :class:`repro.runtime.cache.PlanCache` is
    byte-bounded, and any engine whose whole-grid plan would exceed the
    budget executes tiled — :class:`repro.kernels.TilePlanner` /
    :class:`repro.kernels.TiledPlan` stream per-tile segments through the
    cache, bit-identical to untiled execution (see ``docs/memory.md``).
    A budget too small to hold even one scanline of the resolved system is
    rejected here with an actionable error."""

    def __post_init__(self) -> None:
        system = self.system
        if isinstance(system, dict):
            system = SystemConfig.from_dict(system)
        elif isinstance(system, str):
            if system not in PRESETS:
                raise ValueError(
                    f"unknown system preset {system!r}; "
                    f"available: {', '.join(sorted(PRESETS))}")
        elif isinstance(system, SystemConfig):
            system.validate()
        else:
            raise ValueError(
                "system must be a preset name, a SystemConfig or its dict "
                f"form, got {type(system).__name__}")
        object.__setattr__(self, "system", system)

        arch_name = architecture_name(self.architecture)
        arch_entry = ARCHITECTURES.get(arch_name)
        object.__setattr__(self, "architecture", arch_name)
        if self.architecture_options is not None:
            object.__setattr__(self, "architecture_options",
                               arch_entry.make_options(self.architecture_options))

        backend_entry = BACKENDS.get(self.backend)
        if self.backend_options is not None:
            object.__setattr__(self, "backend_options",
                               backend_entry.make_options(self.backend_options))

        if not isinstance(self.scheme, str):
            raise ValueError(
                "scheme must be a registered scheme name (pre-built "
                "TransmitScheme objects are accepted by pipelines, not "
                f"JSON specs), got {type(self.scheme).__name__}")
        scheme_entry = SCHEMES.get(self.scheme)
        if self.scheme_options is not None:
            object.__setattr__(self, "scheme_options",
                               scheme_entry.make_options(self.scheme_options))

        if isinstance(self.apodization, dict):
            object.__setattr__(self, "apodization",
                               decode_options(ApodizationSettings,
                                              self.apodization))
        object.__setattr__(self, "interpolation",
                           InterpolationKind(self.interpolation))
        object.__setattr__(self, "precision",
                           resolve_precision(self.precision))
        object.__setattr__(self, "quantization",
                           QuantizationSpec.coerce(self.quantization))
        if self.quantization is not None:
            # Fail at spec validation, not deep inside an engine build —
            # including a delay format too narrow for the system's echo
            # buffer, which would otherwise saturate every delay.
            self.quantization.validate_for(
                self.precision, self.interpolation,
                self.resolve_system().echo_buffer_samples)
        if not isinstance(self.cache_capacity, int) or self.cache_capacity < 1:
            raise ValueError("cache_capacity must be a positive integer")
        if not isinstance(self.trace, bool):
            raise ValueError("trace must be a boolean")
        if self.memory_budget_bytes is not None:
            budget = parse_memory_budget(self.memory_budget_bytes)
            # Plan the tiling eagerly against the resolved system: a budget
            # too small for one scanline fails at spec load with the
            # minimum stated, not at first frame.
            system = self.resolve_system()
            TilePlanner(
                (system.volume.n_theta, system.volume.n_phi,
                 system.volume.n_depth),
                system.transducer.element_count, budget,
                precision=self.precision, interpolation=self.interpolation)
            object.__setattr__(self, "memory_budget_bytes", budget)

    # ------------------------------------------------------------ building
    def resolve_system(self) -> SystemConfig:
        """The concrete :class:`SystemConfig` this spec describes."""
        if isinstance(self.system, str):
            return get_preset(self.system)
        return self.system

    def with_updates(self, **changes: Any) -> "EngineSpec":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """Plain-dict (JSON-safe) form; inverse of :meth:`from_dict`."""
        return {
            "system": self.system if isinstance(self.system, str)
            else self.system.to_dict(),
            "architecture": self.architecture,
            "architecture_options": encode_options(self.architecture_options),
            "backend": self.backend,
            "backend_options": encode_options(self.backend_options),
            "apodization": encode_options(self.apodization),
            "interpolation": self.interpolation.value,
            "precision": self.precision.value,
            "quantization": encode_options(self.quantization),
            "scheme": self.scheme,
            "scheme_options": encode_options(self.scheme_options),
            "cache_capacity": self.cache_capacity,
            "trace": self.trace,
            "memory_budget_bytes": self.memory_budget_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EngineSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys raise)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"engine spec must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown engine spec field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}")
        return cls(**data)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EngineSpec":
        """Rebuild a spec from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------- scan scenarios
# The SCENARIOS registry and its builders live in repro.scenarios.scan
# (imported above and re-exported here); new scenarios register there.


@dataclass(frozen=True)
class ScanSpec:
    """Declarative description of one cine acquisition to stream."""

    scenario: str = "moving_point"
    """Registered scenario name (see :data:`SCENARIOS`)."""

    frames: int = 8
    """Number of cine frames."""

    noise_std: float = 0.0
    """Additive channel-noise standard deviation."""

    seed: int = 0
    """Base random seed for simulation."""

    options: Any = None
    """Scenario options dataclass/dict (``None`` = scenario defaults)."""

    def __post_init__(self) -> None:
        entry = SCENARIOS.get(self.scenario)
        if not isinstance(self.frames, int) or self.frames < 1:
            raise ValueError("frames must be a positive integer")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if self.options is not None:
            object.__setattr__(self, "options",
                               entry.make_options(self.options))

    def build_frames(self, system: SystemConfig) -> list[FrameRequest]:
        """Materialise the cine sequence for ``system``."""
        entry = SCENARIOS.get(self.scenario)
        return entry.factory(system, self, entry.make_options(self.options))

    def to_dict(self) -> dict:
        """Plain-dict (JSON-safe) form; inverse of :meth:`from_dict`."""
        return {
            "scenario": self.scenario,
            "frames": self.frames,
            "noise_std": self.noise_std,
            "seed": self.seed,
            "options": encode_options(self.options),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScanSpec":
        """Rebuild a scan spec from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValueError(
                f"scan spec must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scan spec field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}")
        return cls(**data)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScanSpec":
        """Rebuild a scan spec from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))


# ------------------------------------------------------------- sweep spec
@dataclass(frozen=True)
class SweepSpec:
    """Declarative scenario x scheme x architecture (x backend) grid.

    One JSON document describes a whole comparative study; feed it to
    :meth:`repro.api.Session.sweep` (``spec=``) to image every cell over
    the session's shared substrates and score it with the
    :mod:`repro.scenarios.scoring` hook::

        Session(EngineSpec(system="tiny")).sweep(spec={
            "scenarios": ["static_point", "cyst"],
            "schemes": ["focused", "planewave"],
            "architectures": ["exact", "tablesteer"],
        })

    Every name is validated eagerly against its registry.
    """

    scenarios: tuple[str, ...] = ("static_point",)
    """Registered scan scenarios; the first frame of each cine is imaged."""

    schemes: tuple[str, ...] = ("focused",)
    """Registered transmit schemes; channel data are acquired once per
    scenario x scheme and shared by every variant.  Options resolve like
    every per-call override: a name matching the session spec's scheme
    keeps the spec's scheme options, other names use their registered
    defaults."""

    architectures: tuple[str, ...] | None = None
    """Delay architectures (``None`` = the session spec's only)."""

    backends: tuple[str, ...] | None = None
    """Execution backends; ``None`` keeps the session spec's backend and
    leaves the backend out of the result keys."""

    noise_std: float = 0.0
    """Additive channel-noise standard deviation."""

    seed: int = 0
    """Base random seed for phantom construction and noise."""

    score: bool = True
    """Attach the FWHM/CNR/gCNR metric dict to every cell."""

    def __post_init__(self) -> None:
        for field_name, registry in (("scenarios", SCENARIOS),
                                     ("schemes", SCHEMES)):
            names = self._name_tuple(field_name)
            if not names:
                raise ValueError(f"{field_name} must not be empty")
            for name in names:
                registry.get(name)
            object.__setattr__(self, field_name, names)
        for field_name, registry in (("architectures", ARCHITECTURES),
                                     ("backends", BACKENDS)):
            if getattr(self, field_name) is not None:
                names = self._name_tuple(field_name)
                if not names:
                    raise ValueError(f"{field_name} must not be empty")
                for name in names:
                    registry.get(name)
                object.__setattr__(self, field_name, names)
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")

    def resolve_grid(self, default_architecture: str, default_backend: str
                     ) -> tuple[tuple[str, ...], tuple[str, ...], bool]:
        """Concrete ``(architectures, backends, keyed_by_backend)`` axes.

        ``None`` axes fall back to the session spec's single
        architecture/backend; the returned flag says whether result keys
        carry the backend component (they do exactly when the spec named
        backends explicitly).  One resolution shared by
        :meth:`repro.api.Session.sweep` and
        :class:`repro.sweep.SweepExecutor`, so in-process and
        store-backed runs always agree on the grid — and on the cell
        keys.
        """
        architectures = self.architectures or (default_architecture,)
        backends = self.backends or (default_backend,)
        return architectures, backends, self.backends is not None

    def _name_tuple(self, field_name: str) -> tuple[str, ...]:
        """Coerce a name-list field, rejecting a bare string.

        ``{"scenarios": "cyst"}`` in a hand-written document would
        otherwise iterate character by character and fail with a baffling
        ``unknown scenario 'c'``.
        """
        value = getattr(self, field_name)
        if isinstance(value, str):
            raise ValueError(
                f"{field_name} must be a list of names, not the string "
                f"{value!r}")
        return tuple(value)

    def to_dict(self) -> dict:
        """Plain-dict (JSON-safe) form; inverse of :meth:`from_dict`."""
        return {
            "scenarios": list(self.scenarios),
            "schemes": list(self.schemes),
            "architectures": None if self.architectures is None
            else list(self.architectures),
            "backends": None if self.backends is None
            else list(self.backends),
            "noise_std": self.noise_std,
            "seed": self.seed,
            "score": self.score,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Rebuild a sweep spec from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValueError(
                f"sweep spec must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown sweep spec field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}")
        return cls(**data)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Rebuild a sweep spec from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------- overrides
def parse_assignment(text: str) -> tuple[str, Any]:
    """Split a ``key=value`` override; values parse as JSON, else strings.

    ``architecture_options.total_bits=14`` -> ``("architecture_options.total_bits", 14)``;
    ``backend=sharded`` -> ``("backend", "sharded")``.
    """
    key, sep, raw = text.partition("=")
    key = key.strip()
    if not sep or not key:
        raise ValueError(f"override must look like key=value, got {text!r}")
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw.strip()
    return key, value


def apply_overrides(data: dict, assignments: Iterable[str]) -> dict:
    """Apply dotted-path ``key=value`` overrides to a spec dict (pure).

    Intermediate mappings are created on demand, so
    ``architecture_options.delta=0.5`` works even when the spec had
    ``architecture_options: null``.
    """
    data = copy.deepcopy(data)
    for text in assignments:
        key, value = parse_assignment(text)
        parts = key.split(".")
        node = data
        for depth, part in enumerate(parts[:-1]):
            child = node.get(part)
            if child is None:
                child = {}
                node[part] = child
            elif not isinstance(child, dict):
                # E.g. descending into a preset *name* with system.foo=...;
                # clobbering the scalar would silently discard the preset.
                raise ValueError(
                    f"cannot apply override {key!r}: "
                    f"{'.'.join(parts[:depth + 1])!r} is {child!r}, "
                    f"not a mapping")
            node = child
        node[parts[-1]] = value
    return data
