"""Declarative, serialisable specs for engines and scans.

An :class:`EngineSpec` describes *everything needed to build a beamforming
engine* — system (preset name or inline :class:`repro.config.SystemConfig`),
delay architecture + options, execution backend + options, apodization,
interpolation and cache sizing — as one frozen, JSON-round-trippable
document.  A :class:`ScanSpec` describes *what to image*: a registered cine
scenario plus frame count, noise and seed.  Together they make a whole run
portable: ship the JSON, rebuild the identical engine anywhere with
``Session(EngineSpec.from_json(text))``.

Architecture/backend names and options are validated eagerly against the
registries (:data:`repro.architectures.ARCHITECTURES`,
:data:`repro.runtime.backends.BACKENDS`, :data:`SCENARIOS`), so a typo in a
spec file fails at load time with the list of registered names, not deep in
a run.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterable

import numpy as np

from ..acoustics.phantom import point_target, speckle_phantom
from ..architectures import ARCHITECTURES, architecture_name
from ..beamformer.das import ApodizationSettings
from ..beamformer.interpolation import InterpolationKind
from ..config import PRESETS, SystemConfig, get_preset
from ..geometry.volume import FocalGrid
from ..kernels import Precision, QuantizationSpec, resolve_precision
from ..registry import Registry, decode_options, encode_options
from ..runtime.backends import BACKENDS
from ..runtime.scheduler import FrameRequest, moving_point_cine

__all__ = [
    "EngineSpec",
    "ScanSpec",
    "SCENARIOS",
    "apply_overrides",
    "parse_assignment",
]


# ------------------------------------------------------------- engine spec
@dataclass(frozen=True)
class EngineSpec:
    """Declarative description of one complete beamforming engine.

    Fields accept both rich objects and their plain-dict/JSON forms (the
    constructor coerces and validates either way), so specs can be built in
    code or loaded from documents interchangeably::

        EngineSpec(system="tiny", architecture="tablesteer",
                   architecture_options={"total_bits": 14})
        EngineSpec.from_json(path.read_text())
    """

    system: str | SystemConfig = "small"
    """Preset name (see :data:`repro.config.PRESETS`) or inline config."""

    architecture: str = "exact"
    """Registered delay-architecture name."""

    architecture_options: Any = None
    """Options dataclass/dict for the architecture (``None`` = defaults)."""

    backend: str = "reference"
    """Registered execution-backend name."""

    backend_options: Any = None
    """Options dataclass/dict for the backend (``None`` = defaults)."""

    apodization: ApodizationSettings = field(
        default_factory=ApodizationSettings)
    """Receive apodization settings (dict form accepted)."""

    interpolation: InterpolationKind = InterpolationKind.NEAREST
    """Echo-sample interpolation strategy (name or enum)."""

    precision: Precision = Precision.FLOAT64
    """Kernel execution dtype policy (``"float64"`` exact /
    ``"float32"`` fast; name or :class:`repro.kernels.Precision`)."""

    quantization: Any = None
    """Bit-true fixed-point execution spec
    (:class:`repro.kernels.QuantizationSpec`, its dict form, a total bit
    width like ``18``, or a delay Q-format string like ``"U13.5"``);
    ``None`` keeps the float kernel path."""

    cache_capacity: int = 4
    """Capacity of the session's shared compiled-plan LRU cache."""

    def __post_init__(self) -> None:
        system = self.system
        if isinstance(system, dict):
            system = SystemConfig.from_dict(system)
        elif isinstance(system, str):
            if system not in PRESETS:
                raise ValueError(
                    f"unknown system preset {system!r}; "
                    f"available: {', '.join(sorted(PRESETS))}")
        elif isinstance(system, SystemConfig):
            system.validate()
        else:
            raise ValueError(
                "system must be a preset name, a SystemConfig or its dict "
                f"form, got {type(system).__name__}")
        object.__setattr__(self, "system", system)

        arch_name = architecture_name(self.architecture)
        arch_entry = ARCHITECTURES.get(arch_name)
        object.__setattr__(self, "architecture", arch_name)
        if self.architecture_options is not None:
            object.__setattr__(self, "architecture_options",
                               arch_entry.make_options(self.architecture_options))

        backend_entry = BACKENDS.get(self.backend)
        if self.backend_options is not None:
            object.__setattr__(self, "backend_options",
                               backend_entry.make_options(self.backend_options))

        if isinstance(self.apodization, dict):
            object.__setattr__(self, "apodization",
                               decode_options(ApodizationSettings,
                                              self.apodization))
        object.__setattr__(self, "interpolation",
                           InterpolationKind(self.interpolation))
        object.__setattr__(self, "precision",
                           resolve_precision(self.precision))
        object.__setattr__(self, "quantization",
                           QuantizationSpec.coerce(self.quantization))
        if self.quantization is not None:
            # Fail at spec validation, not deep inside an engine build —
            # including a delay format too narrow for the system's echo
            # buffer, which would otherwise saturate every delay.
            self.quantization.validate_for(
                self.precision, self.interpolation,
                self.resolve_system().echo_buffer_samples)
        if not isinstance(self.cache_capacity, int) or self.cache_capacity < 1:
            raise ValueError("cache_capacity must be a positive integer")

    # ------------------------------------------------------------ building
    def resolve_system(self) -> SystemConfig:
        """The concrete :class:`SystemConfig` this spec describes."""
        if isinstance(self.system, str):
            return get_preset(self.system)
        return self.system

    def with_updates(self, **changes: Any) -> "EngineSpec":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """Plain-dict (JSON-safe) form; inverse of :meth:`from_dict`."""
        return {
            "system": self.system if isinstance(self.system, str)
            else self.system.to_dict(),
            "architecture": self.architecture,
            "architecture_options": encode_options(self.architecture_options),
            "backend": self.backend,
            "backend_options": encode_options(self.backend_options),
            "apodization": encode_options(self.apodization),
            "interpolation": self.interpolation.value,
            "precision": self.precision.value,
            "quantization": encode_options(self.quantization),
            "cache_capacity": self.cache_capacity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EngineSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys raise)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"engine spec must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown engine spec field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}")
        return cls(**data)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EngineSpec":
        """Rebuild a spec from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------- scan scenarios
SCENARIOS = Registry("scenario")
"""Registry of cine scan scenarios (factory: ``(system, scan, options)``)."""


@dataclass(frozen=True)
class MovingPointOptions:
    """Options for the ``moving_point`` scenario."""

    depth_fractions: tuple[float, float] = (0.35, 0.65)
    """Start/end depth as fractions of the imaging range."""

    theta_fraction: float = 0.0
    """Azimuth steering of the scanline the target drifts along."""


@dataclass(frozen=True)
class StaticPointOptions:
    """Options for the ``static_point`` scenario."""

    depth_fraction: float = 0.5
    """Target depth as a fraction of the imaging range (grid-snapped)."""

    theta_fraction: float = 0.0
    """Azimuth steering as a fraction of ``theta_max`` (grid-snapped)."""


@dataclass(frozen=True)
class SpeckleOptions:
    """Options for the ``speckle`` scenario."""

    n_scatterers: int = 2000
    """Number of diffuse scatterers filling the volume."""


@SCENARIOS.register(
    "moving_point", options=MovingPointOptions,
    description="point scatterer drifting in depth across the cine")
def _build_moving_point(system: SystemConfig, scan: "ScanSpec",
                        options: MovingPointOptions) -> list[FrameRequest]:
    base = moving_point_cine(system, n_frames=scan.frames,
                             depth_fractions=tuple(options.depth_fractions),
                             theta_fraction=options.theta_fraction)
    return [replace(request, noise_std=scan.noise_std,
                    seed=request.seed + scan.seed)
            for request in base]


@SCENARIOS.register(
    "static_point", options=StaticPointOptions,
    description="the same grid-snapped point target replayed every frame")
def _build_static_point(system: SystemConfig, scan: "ScanSpec",
                        options: StaticPointOptions) -> list[FrameRequest]:
    volume = system.volume
    grid = FocalGrid.from_config(system)
    requested = volume.depth_min + options.depth_fraction * volume.depth_span
    depth = float(grid.depths[np.argmin(np.abs(grid.depths - requested))])
    theta = float(grid.thetas[np.argmin(
        np.abs(grid.thetas - options.theta_fraction * volume.theta_max))])
    phantom = point_target(depth=depth, theta=theta)
    return [FrameRequest(frame_id=i, phantom=phantom,
                         noise_std=scan.noise_std, seed=scan.seed)
            for i in range(scan.frames)]


@SCENARIOS.register(
    "speckle", options=SpeckleOptions,
    description="diffuse speckle phantom, per-frame noise realisations")
def _build_speckle(system: SystemConfig, scan: "ScanSpec",
                   options: SpeckleOptions) -> list[FrameRequest]:
    phantom = speckle_phantom(system, n_scatterers=options.n_scatterers,
                              seed=scan.seed)
    return [FrameRequest(frame_id=i, phantom=phantom,
                         noise_std=scan.noise_std, seed=scan.seed + i)
            for i in range(scan.frames)]


@dataclass(frozen=True)
class ScanSpec:
    """Declarative description of one cine acquisition to stream."""

    scenario: str = "moving_point"
    """Registered scenario name (see :data:`SCENARIOS`)."""

    frames: int = 8
    """Number of cine frames."""

    noise_std: float = 0.0
    """Additive channel-noise standard deviation."""

    seed: int = 0
    """Base random seed for simulation."""

    options: Any = None
    """Scenario options dataclass/dict (``None`` = scenario defaults)."""

    def __post_init__(self) -> None:
        entry = SCENARIOS.get(self.scenario)
        if not isinstance(self.frames, int) or self.frames < 1:
            raise ValueError("frames must be a positive integer")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if self.options is not None:
            object.__setattr__(self, "options",
                               entry.make_options(self.options))

    def build_frames(self, system: SystemConfig) -> list[FrameRequest]:
        """Materialise the cine sequence for ``system``."""
        entry = SCENARIOS.get(self.scenario)
        return entry.factory(system, self, entry.make_options(self.options))

    def to_dict(self) -> dict:
        """Plain-dict (JSON-safe) form; inverse of :meth:`from_dict`."""
        return {
            "scenario": self.scenario,
            "frames": self.frames,
            "noise_std": self.noise_std,
            "seed": self.seed,
            "options": encode_options(self.options),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScanSpec":
        """Rebuild a scan spec from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValueError(
                f"scan spec must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scan spec field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}")
        return cls(**data)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScanSpec":
        """Rebuild a scan spec from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------- overrides
def parse_assignment(text: str) -> tuple[str, Any]:
    """Split a ``key=value`` override; values parse as JSON, else strings.

    ``architecture_options.total_bits=14`` -> ``("architecture_options.total_bits", 14)``;
    ``backend=sharded`` -> ``("backend", "sharded")``.
    """
    key, sep, raw = text.partition("=")
    key = key.strip()
    if not sep or not key:
        raise ValueError(f"override must look like key=value, got {text!r}")
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw.strip()
    return key, value


def apply_overrides(data: dict, assignments: Iterable[str]) -> dict:
    """Apply dotted-path ``key=value`` overrides to a spec dict (pure).

    Intermediate mappings are created on demand, so
    ``architecture_options.delta=0.5`` works even when the spec had
    ``architecture_options: null``.
    """
    data = copy.deepcopy(data)
    for text in assignments:
        key, value = parse_assignment(text)
        parts = key.split(".")
        node = data
        for depth, part in enumerate(parts[:-1]):
            child = node.get(part)
            if child is None:
                child = {}
                node[part] = child
            elif not isinstance(child, dict):
                # E.g. descending into a preset *name* with system.foo=...;
                # clobbering the scalar would silently discard the preset.
                raise ValueError(
                    f"cannot apply override {key!r}: "
                    f"{'.'.join(parts[:depth + 1])!r} is {child!r}, "
                    f"not a mapping")
            node = child
        node[parts[-1]] = value
    return data
