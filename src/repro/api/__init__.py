"""repro.api: the declarative, registry-driven public surface.

Three ideas compose here:

* **Registries** (:data:`ARCHITECTURES`, :data:`BACKENDS`,
  :data:`SCENARIOS`) — open name -> plugin maps.  A new delay architecture,
  execution backend or scan scenario is one ``@REGISTRY.register(...)``
  with a factory and an options dataclass; every consumer (pipelines,
  services, CLI, specs) resolves names through the registry, so no other
  file changes.
* **Specs** (:class:`EngineSpec`, :class:`ScanSpec`) — frozen, validated,
  JSON-round-trippable documents describing a whole engine and a whole
  acquisition.  ``EngineSpec.from_dict(spec.to_dict())`` rebuilds an
  equivalent engine anywhere.
* **Session** (:class:`Session`) — resolves a spec once (system, simulator,
  transducer, grid, shared delay-table cache) and vends pipelines,
  streaming services and architecture/backend sweeps over those shared
  substrates.

Quick start::

    from repro.api import EngineSpec, ScanSpec, Session

    spec = EngineSpec(system="tiny", architecture="tablesteer",
                      backend="vectorized")
    session = Session(spec)
    for result in session.stream(ScanSpec(scenario="moving_point", frames=8)):
        print(result.frame_id, result.latency_seconds)

Extending (a complete new architecture, nothing else to edit)::

    from dataclasses import dataclass
    from repro.api import ARCHITECTURES

    @dataclass(frozen=True)
    class MyOptions:
        gain: float = 1.0

    @ARCHITECTURES.register("mine", options=MyOptions, description="...")
    def _build(system, options):
        return MyDelayProvider(system, options.gain)

    Session(EngineSpec(system="tiny", architecture="mine")).pipeline()
"""

from ..architectures import ARCHITECTURES, legacy_architecture_options
from ..registry import (
    Registry,
    RegistryEntry,
    RegistryError,
    decode_options,
    encode_options,
)
from ..kernels import Precision, QuantizationSpec
from ..runtime.backends import BACKENDS, ShardedOptions
from ..scenarios import (
    CystOptions,
    DivergingOptions,
    FocusedOptions,
    MovingPointOptions,
    MovingScatterersOptions,
    MultiCystOptions,
    PlaneWaveOptions,
    SpeckleOptions,
    StaticPointOptions,
    SyntheticApertureOptions,
    TransmitEvent,
    TransmitScheme,
    WireGridOptions,
    score_volume,
)
from ..server.spec import BackpressurePolicy, ServerSpec
from ..sweep.spec import SweepRunSpec
from .session import Session
from .specs import (
    SCENARIOS,
    SCHEMES,
    EngineSpec,
    ScanSpec,
    SweepSpec,
    apply_overrides,
    parse_assignment,
)

__all__ = [
    "ARCHITECTURES",
    "BACKENDS",
    "SCENARIOS",
    "SCHEMES",
    "BackpressurePolicy",
    "EngineSpec",
    "ServerSpec",
    "Precision",
    "QuantizationSpec",
    "ScanSpec",
    "Session",
    "SweepRunSpec",
    "SweepSpec",
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "ShardedOptions",
    "CystOptions",
    "DivergingOptions",
    "FocusedOptions",
    "MovingPointOptions",
    "MovingScatterersOptions",
    "MultiCystOptions",
    "PlaneWaveOptions",
    "SpeckleOptions",
    "StaticPointOptions",
    "SyntheticApertureOptions",
    "TransmitEvent",
    "TransmitScheme",
    "WireGridOptions",
    "apply_overrides",
    "parse_assignment",
    "decode_options",
    "encode_options",
    "legacy_architecture_options",
    "score_volume",
]
