"""The Session facade: one spec, shared substrates, many engines.

A :class:`Session` resolves an :class:`repro.api.specs.EngineSpec` once —
system config, echo simulator, transducer, focal grid and the shared
delay-table cache — and then vends imaging pipelines, streaming services
and architecture/backend sweeps bound to those shared objects.  Building
the substrates once is what makes comparative studies honest (every
variant sees the same probe, grid and channel data) and cheap (nothing is
rebuilt per variant).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from ..acoustics.echo import ChannelData, EchoSimulator
from ..acoustics.phantom import Phantom
from ..geometry.transducer import MatrixTransducer
from ..geometry.volume import FocalGrid
from ..kernels import Precision
from ..observability.metrics import MetricsRegistry
from ..observability.tracing import Tracer, get_default_tracer
from ..pipeline.imaging import ImagingPipeline
from ..runtime.cache import PlanCache
from ..runtime.scheduler import FrameResult
from ..runtime.service import BeamformingService
from ..scenarios import TransmitScheme, acquire_firings, resolve_scheme
from .specs import EngineSpec, ScanSpec, SweepSpec

__all__ = ["Session"]

_INHERIT = object()
"""Default sentinel for per-call overrides whose ``None`` spelling is
meaningful: for ``quantization``, ``None`` explicitly *disables* the
spec-level quantisation (yielding the float variant), while leaving the
argument out inherits the spec."""


class Session:
    """Engine builder bound to one :class:`EngineSpec`.

    Usage::

        from repro.api import EngineSpec, Session

        session = Session(EngineSpec(system="tiny", architecture="tablesteer",
                                     backend="vectorized"))
        image = session.pipeline().image_phantom(phantom)
        results = session.stream(ScanSpec(frames=8))
        images = session.sweep(phantom, architectures=("exact", "tablefree"))

    The simulator, transducer, focal grid and delay-table cache are built
    once in the constructor and shared by every pipeline/service the
    session vends — including across ``architecture=``/``backend=``
    overrides, so sweeps differ only in what the spec says they differ in.
    """

    def __init__(self, spec: EngineSpec | Mapping | None = None) -> None:
        if spec is None:
            spec = EngineSpec()
        elif isinstance(spec, Mapping):
            spec = EngineSpec.from_dict(dict(spec))
        self.spec = spec
        self.system = spec.resolve_system()
        self.transducer = MatrixTransducer.from_config(self.system)
        self.grid = FocalGrid.from_config(self.system)
        self.simulator = EchoSimulator.from_config(self.system)
        self.scheme = resolve_scheme(self.system, spec.scheme,
                                     spec.scheme_options)
        # spec.trace=True records a live span tree on this session;
        # otherwise the session inherits the process default tracer (a
        # no-op unless e.g. the CLI's --trace installed one).
        self.tracer = Tracer() if spec.trace else get_default_tracer()
        self.metrics = MetricsRegistry()
        # A spec-level memory budget byte-bounds the shared cache: every
        # pipeline/service/server this session vends then streams tiled
        # plan segments through it instead of overflowing it.
        self.cache = PlanCache(capacity=spec.cache_capacity,
                               metrics=self.metrics,
                               max_bytes=spec.memory_budget_bytes)
        # A multi-firing scheme needs one plan slot per firing, or every
        # compounded frame would recompile its whole event bank (per-call
        # scheme overrides reserve their own slots in
        # _resolve_scheme_variant).
        self.cache.reserve(self.scheme.firing_count)
        # Everything closeable the session vends (pipelines, services,
        # servers) is remembered so close() can release the worker pools
        # the session caused to exist.
        self._owned: list[Any] = []

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release every pipeline/service/server this session vended.

        Worker pools shut down; the shared simulator, grid and plan cache
        stay (they hold no threads).  Idempotent, and the session remains
        usable — later builders simply register anew.  The session is a
        context manager::

            with Session(spec) as session:
                session.stream(ScanSpec(frames=4))
        """
        owned, self._owned = self._owned, []
        for obj in reversed(owned):
            obj.close()

    def _release(self, engine: Any) -> None:
        """Close one vended engine *now* and stop tracking it.

        The counterpart of the ``self._owned.append`` in every builder,
        for engines built for a single call (a stream's service, a sweep
        cell's pipeline): their worker pools are released immediately
        instead of accumulating until session close.  Tolerates an engine
        already dropped by :meth:`close`.
        """
        engine.close()
        try:
            self._owned.remove(engine)
        except ValueError:
            pass

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ builders
    def _resolve_variant(self, architecture: str | None, backend: str | None,
                         architecture_options: Any, backend_options: Any
                         ) -> tuple[str, Any, str, Any]:
        """Fill architecture/backend (and options) from the session spec.

        Spec options are inherited only when the name still matches the
        spec's — overriding the architecture/backend switches to that
        variant's registered defaults unless options are given explicitly.
        """
        architecture = architecture or self.spec.architecture
        if architecture_options is None and \
                architecture == self.spec.architecture:
            architecture_options = self.spec.architecture_options
        backend = backend or self.spec.backend
        if backend_options is None and backend == self.spec.backend:
            backend_options = self.spec.backend_options
        return architecture, architecture_options, backend, backend_options

    def _resolve_scheme_variant(self, scheme: Any, scheme_options: Any
                                ) -> "TransmitScheme":
        """Resolve the per-call scheme override against the session spec.

        Mirrors the architecture/backend resolution: no override reuses
        the spec's resolved scheme; an options-only override re-derives
        the spec's scheme *name* with the given options; a different name
        switches to that scheme's registered defaults unless options are
        given.  The result is always a resolved
        :class:`repro.scenarios.TransmitScheme`, and the shared plan
        cache is grown to its firing count so multi-firing compounding
        never thrashes its own per-event plans.
        """
        if scheme is None:
            if scheme_options is None:
                return self.scheme
            scheme = self.spec.scheme
        elif scheme == self.spec.scheme and scheme_options is None:
            return self.scheme
        resolved = resolve_scheme(self.system, scheme, scheme_options)
        self.cache.reserve(resolved.firing_count)
        return resolved

    def pipeline(self, architecture: str | None = None,
                 backend: str | None = None,
                 architecture_options: Any = None,
                 backend_options: Any = None,
                 cache: PlanCache | None = None,
                 provider: Any = None,
                 precision: Precision | str | None = None,
                 quantization: Any = _INHERIT,
                 scheme: Any = None,
                 scheme_options: Any = None,
                 memory_budget_bytes: Any = _INHERIT) -> ImagingPipeline:
        """An :class:`ImagingPipeline` over the shared substrates.

        ``architecture`` / ``backend`` (and their options), ``precision``,
        ``quantization`` and ``memory_budget_bytes`` default to the session
        spec; overriding them swaps the variant while keeping the
        simulator, transducer, grid and cache shared.  Pass
        ``quantization=None`` to explicitly *disable* a spec-level
        quantisation (e.g. to compare the float and bit-true variants of
        one quantized session); likewise ``memory_budget_bytes=None`` lifts
        a spec-level budget for this one pipeline.  A pre-built
        ``provider`` skips delay-generator construction entirely.
        """
        architecture, architecture_options, backend, backend_options = \
            self._resolve_variant(architecture, backend,
                                  architecture_options, backend_options)
        scheme = self._resolve_scheme_variant(scheme, scheme_options)
        pipeline = ImagingPipeline(
            self.system,
            architecture=architecture,
            architecture_options=architecture_options,
            apodization=self.spec.apodization,
            interpolation=self.spec.interpolation,
            backend=backend,
            backend_options=backend_options,
            precision=precision if precision is not None
            else self.spec.precision,
            quantization=self.spec.quantization
            if quantization is _INHERIT else quantization,
            scheme=scheme,
            cache=cache if cache is not None else self.cache,
            simulator=self.simulator,
            transducer=self.transducer,
            grid=self.grid,
            provider=provider,
            memory_budget_bytes=self.spec.memory_budget_bytes
            if memory_budget_bytes is _INHERIT else memory_budget_bytes,
            tracer=self.tracer)
        self._owned.append(pipeline)
        return pipeline

    def service(self, architecture: str | None = None,
                backend: str | None = None,
                architecture_options: Any = None,
                backend_options: Any = None,
                cache: PlanCache | None = None,
                precision: Precision | str | None = None,
                quantization: Any = _INHERIT,
                scheme: Any = None,
                scheme_options: Any = None,
                memory_budget_bytes: Any = _INHERIT) -> BeamformingService:
        """A streaming :class:`BeamformingService` over the shared substrates.

        Note the service's default backend is the spec's backend — for a
        spec built with the ``reference`` default this includes the classic
        per-scanline path, unlike ``BeamformingService``'s own
        ``vectorized`` default.
        """
        architecture, architecture_options, backend, backend_options = \
            self._resolve_variant(architecture, backend,
                                  architecture_options, backend_options)
        scheme = self._resolve_scheme_variant(scheme, scheme_options)
        service = BeamformingService(
            self.system,
            architecture=architecture,
            architecture_options=architecture_options,
            backend=backend,
            backend_options=backend_options,
            apodization=self.spec.apodization,
            interpolation=self.spec.interpolation,
            precision=precision if precision is not None
            else self.spec.precision,
            quantization=self.spec.quantization
            if quantization is _INHERIT else quantization,
            scheme=scheme,
            cache=cache if cache is not None else self.cache,
            simulator=self.simulator,
            memory_budget_bytes=self.spec.memory_budget_bytes
            if memory_budget_bytes is _INHERIT else memory_budget_bytes,
            tracer=self.tracer)
        self._owned.append(service)
        return service

    def server(self, spec: "ServerSpec | Mapping | None" = None,
               workers: int | None = None,
               queue_capacity: int | None = None,
               policy: Any = None) -> "BeamformingServer":
        """A multi-session :class:`repro.server.BeamformingServer` whose
        default engine is this session's spec.

        The server shares the session's plan cache (all its sessions
        compile through it), simulator, tracer and metrics registry.  Pass
        a full :class:`repro.server.ServerSpec` to control everything, or
        just the common knobs; a spec's ``engine`` must be left at the
        default — the session's own spec is the engine.  The server is
        tracked by :meth:`close` like any other vended engine.
        """
        from ..server import BeamformingServer, ServerSpec

        if spec is None:
            spec = ServerSpec(engine=self.spec)
        else:
            if isinstance(spec, Mapping):
                spec = ServerSpec.from_dict(dict(spec))
            if spec.engine != EngineSpec():
                raise ValueError(
                    "Session.server() binds the session's own spec as the "
                    "server engine; leave the ServerSpec's engine at its "
                    "default (or build a BeamformingServer directly)")
            spec = spec.with_updates(engine=self.spec)
        changes: dict[str, Any] = {}
        if workers is not None:
            changes["workers"] = workers
        if queue_capacity is not None:
            changes["queue_capacity"] = queue_capacity
        if policy is not None:
            changes["policy"] = policy
        if changes:
            spec = spec.with_updates(**changes)
        server = BeamformingServer(spec, cache=self.cache,
                                   tracer=self.tracer, metrics=self.metrics,
                                   simulator=self.simulator)
        self._owned.append(server)
        return server

    # ------------------------------------------------------------- running
    def acquire(self, phantom: Phantom, noise_std: float = 0.0,
                seed: int = 0) -> ChannelData:
        """Simulate one insonification with the shared simulator."""
        with self.tracer.span("simulate"):
            return self.simulator.simulate(phantom, noise_std=noise_std,
                                           seed=seed)

    def acquire_firings(self, phantom: Phantom,
                        scheme: Any = None, scheme_options: Any = None,
                        noise_std: float = 0.0,
                        seed: int = 0) -> list[ChannelData]:
        """Simulate every firing of a transmit scheme (spec's by default).

        Returns one :class:`ChannelData` per scheme event, acquired with
        the shared simulator, ready for
        :meth:`repro.pipeline.ImagingPipeline.compound_volume`.
        """
        resolved = self._resolve_scheme_variant(scheme, scheme_options)
        return acquire_firings(self.simulator, resolved, phantom,
                               noise_std=noise_std, seed=seed)

    def stream(self, scan: ScanSpec | Mapping | None = None,
               batch_size: int = 1,
               **service_overrides: Any) -> list[FrameResult]:
        """Stream a :class:`ScanSpec` cine through a spec-configured service.

        ``batch_size > 1`` groups frames into batched kernel executions
        (see :meth:`BeamformingService.submit_batch`).
        """
        if scan is None:
            scan = ScanSpec()
        elif isinstance(scan, Mapping):
            scan = ScanSpec.from_dict(dict(scan))
        service = self.service(**service_overrides)
        try:
            return service.stream_all(scan.build_frames(self.system),
                                      batch_size=batch_size)
        finally:
            # The service was built for this one call; release its worker
            # pool now instead of holding it until the session closes.
            self._release(service)

    def sweep(self, phantom: Phantom | None = None,
              architectures: Iterable[str] | None = None,
              backends: Iterable[str] | None = None,
              noise_std: float = 0.0, seed: int = 0,
              channel_data: ChannelData | None = None,
              spec: SweepSpec | Mapping | str | None = None
              ) -> dict:
        """Image one phantom under several architecture/backend variants.

        The phantom is insonified *once* with the shared simulator (or pass
        pre-acquired ``channel_data`` to skip the simulation entirely);
        every variant beamforms the identical channel data, so result
        differences come from delay generation (and nothing else) — this
        subsumes the old ``repro.pipeline.compare_architectures``.

        With ``backends=None`` the result maps each architecture name to
        the envelope image of the centre elevation plane (the classic
        comparison).  With ``backends`` given, the result maps
        ``(architecture, backend)`` pairs to full RF volumes, letting
        equivalence across execution strategies be asserted in the same
        sweep.

        With ``spec`` given (a :class:`repro.api.SweepSpec`, its dict form
        or its JSON text), the sweep instead runs the declared scenario x
        scheme x architecture (x backend) grid: each scenario's phantom is
        built from its registry entry, its firings are acquired once per
        scheme and shared across every architecture/backend variant, and
        each cell maps ``(scenario, scheme, architecture[, backend])`` to
        ``{"volume": rf, "metrics": {...}}`` with the
        :func:`repro.scenarios.score_volume` figures of merit.
        """
        if spec is not None:
            if phantom is not None or channel_data is not None or \
                    architectures is not None or backends is not None or \
                    noise_std != 0.0 or seed != 0:
                raise ValueError(
                    "spec-driven sweeps take every parameter from the "
                    "SweepSpec document (scenarios, schemes, "
                    "architectures, backends, noise_std, seed); do not "
                    "also pass the per-call sweep arguments")
            if isinstance(spec, str):
                spec = SweepSpec.from_json(spec)
            elif isinstance(spec, Mapping):
                spec = SweepSpec.from_dict(dict(spec))
            return self._sweep_grid(spec)
        if architectures is None:
            architectures = (self.spec.architecture,)
        architectures = tuple(architectures)
        if channel_data is None:
            if phantom is None:
                raise ValueError("provide a phantom or channel_data to sweep")
            channel_data = self.acquire(phantom, noise_std=noise_std,
                                        seed=seed)
        if backends is None:
            with self.tracer.span("sweep", cells=len(architectures)):
                images = {}
                for name in architectures:
                    with self.tracer.span("cell", architecture=name):
                        pipeline = self.pipeline(architecture=name)
                        try:
                            images[name] = pipeline.image_plane(channel_data)
                        finally:
                            # Built for this one cell — release its backend
                            # now rather than holding every cell's engine
                            # until session close.
                            self._release(pipeline)
                return images
        backends = tuple(backends)
        volumes: dict[tuple[str, str], np.ndarray] = {}
        with self.tracer.span("sweep",
                              cells=len(architectures) * len(backends)):
            for name in architectures:
                # One delay provider per architecture, shared across
                # backends (rebuilding e.g. the TABLESTEER reference table
                # per backend would triple the most expensive step for
                # identical inputs).
                provider = None
                for backend in backends:
                    with self.tracer.span("cell", architecture=name,
                                          backend=backend):
                        pipeline = self.pipeline(architecture=name,
                                                 backend=backend,
                                                 provider=provider)
                        provider = pipeline.delay_provider
                        try:
                            volumes[(name, backend)] = \
                                pipeline.image_volume(channel_data).rf
                        finally:
                            self._release(pipeline)
        return volumes

    def _sweep_grid(self, sweep: SweepSpec) -> dict[tuple, dict]:
        """Run a :class:`SweepSpec` grid over the shared substrates.

        Delegates to :class:`repro.sweep.SweepExecutor` (without a store:
        pure in-process execution, same shared-firings/shared-provider
        grid walk this method historically inlined).  Store-backed,
        resumable and parallel runs build the executor directly — the
        in-process path is the same code, so both are bit-identical by
        construction.
        """
        from ..sweep.executor import SweepExecutor
        return SweepExecutor(self).run(sweep)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        system = self.system.name
        return (f"Session(system={system!r}, "
                f"architecture={self.spec.architecture!r}, "
                f"backend={self.spec.backend!r})")
