"""Declarative spec for one persistent/resumable sweep run.

A :class:`SweepRunSpec` bundles *what to sweep* (an
:class:`repro.api.EngineSpec` + :class:`repro.api.SweepSpec`, both
accepted in dict/JSON form) with *how to run it*: the content-addressed
store directory, the worker count and the resume/overwrite policy.  Like
every other spec in the repo it is frozen, eagerly validated and
JSON-round-trippable, so a whole study — grid, engine and execution
policy — ships as one document for ``repro sweep --spec``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from ..api.specs import EngineSpec, SweepSpec

__all__ = ["SweepRunSpec"]


@dataclass(frozen=True)
class SweepRunSpec:
    """Everything needed to execute (or resume) one sweep run."""

    engine: EngineSpec = field(default_factory=EngineSpec)
    """Session engine the grid runs over (dict form accepted)."""

    sweep: SweepSpec = field(default_factory=SweepSpec)
    """The scenario x scheme x architecture (x backend) grid itself."""

    store: str | None = None
    """Content-addressed result store directory (``None`` = in-memory
    only: no artifacts, no resume — every run recomputes)."""

    workers: int = 1
    """Parallel cell-dispatch processes (``repro.runtime.mp`` spawn
    children).  ``1`` executes in-process; ``> 1`` requires a store —
    the artifacts are how workers hand results back."""

    resume: bool = True
    """Serve cells already completed in the store instead of recomputing
    them (the point of content addressing).  Ignored without a store."""

    overwrite: bool = False
    """Recompute and refresh every cell even when the store already holds
    it; takes precedence over ``resume``."""

    def __post_init__(self) -> None:
        engine = self.engine
        if isinstance(engine, Mapping):
            engine = EngineSpec.from_dict(dict(engine))
        elif not isinstance(engine, EngineSpec):
            raise ValueError(
                "engine must be an EngineSpec or its dict form, "
                f"got {type(engine).__name__}")
        object.__setattr__(self, "engine", engine)
        sweep = self.sweep
        if isinstance(sweep, Mapping):
            sweep = SweepSpec.from_dict(dict(sweep))
        elif not isinstance(sweep, SweepSpec):
            raise ValueError(
                "sweep must be a SweepSpec or its dict form, "
                f"got {type(sweep).__name__}")
        object.__setattr__(self, "sweep", sweep)
        if self.store is not None and not isinstance(self.store, str):
            raise ValueError(
                f"store must be a path string, got {type(self.store).__name__}")
        if not isinstance(self.workers, int) or isinstance(self.workers, bool) \
                or self.workers < 1:
            raise ValueError("workers must be a positive integer")
        if self.workers > 1 and self.store is None:
            raise ValueError(
                "parallel dispatch (workers > 1) requires a store: worker "
                "processes return their results through the store's "
                "artifacts")
        for name in ("resume", "overwrite"):
            if not isinstance(getattr(self, name), bool):
                raise ValueError(f"{name} must be a boolean")

    def with_updates(self, **changes: Any) -> "SweepRunSpec":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """Plain-dict (JSON-safe) form; inverse of :meth:`from_dict`."""
        return {
            "engine": self.engine.to_dict(),
            "sweep": self.sweep.to_dict(),
            "store": self.store,
            "workers": self.workers,
            "resume": self.resume,
            "overwrite": self.overwrite,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepRunSpec":
        """Rebuild a run spec from :meth:`to_dict` output (unknown keys raise)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"sweep run spec must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown sweep run spec field(s): "
                f"{', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}")
        return cls(**data)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepRunSpec":
        """Rebuild a run spec from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))
