"""Persistent, resumable sweep orchestration (ROADMAP item 4).

The in-process :meth:`repro.api.Session.sweep` recomputes every grid cell
from scratch on every run; this package makes sweeps *durable*.  A
:class:`SweepStore` maps content-addressed cell keys
(:func:`repro.sweep.hashing.cell_key` over the fully-resolved cell spec)
to on-disk artifacts, a :class:`SweepExecutor` runs grids against it —
skipping completed cells, resuming interrupted runs, optionally fanning
cells out over ``repro.runtime.mp`` spawn workers — and a
:class:`SweepRunSpec` makes the whole run (engine + grid + store +
policy) one JSON document for the ``repro sweep`` CLI subcommand.  See
``docs/sweeps.md``.
"""

from .executor import SweepExecutor
from .hashing import cell_key, resolved_cell_spec
from .spec import SweepRunSpec
from .store import SweepStore

__all__ = [
    "SweepExecutor",
    "SweepRunSpec",
    "SweepStore",
    "cell_key",
    "resolved_cell_spec",
    "run_sweep",
]


def run_sweep(spec: "SweepRunSpec | dict | str") -> dict:
    """Execute one :class:`SweepRunSpec` end to end; returns the results.

    Builds a session from the spec's engine, runs the grid through a
    :class:`SweepExecutor` and closes the session again — the one-call
    form the CLI and experiments use.
    """
    from ..api.session import Session

    if isinstance(spec, str):
        spec = SweepRunSpec.from_json(spec)
    elif isinstance(spec, dict):
        spec = SweepRunSpec.from_dict(spec)
    with Session(spec.engine) as session:
        executor = SweepExecutor(session, store=spec.store,
                                 workers=spec.workers, resume=spec.resume,
                                 overwrite=spec.overwrite)
        return executor.run(spec.sweep)
