"""Content-addressed identity for sweep grid cells.

A sweep cell's result is a pure function of its fully-resolved
configuration: the physical system, the scenario (and its registered
options), the transmit scheme, the delay architecture, the execution
backend, the apodization/interpolation/precision/quantisation policy and
the noise/seed pair.  :func:`resolved_cell_spec` canonicalises all of that
into one plain JSON-safe dict — reusing the :func:`repro.kernels.plan_key`
idiom of hashing *resolved* components (``SystemConfig.cache_key()``
digests the physics name-independently; options encode through
:func:`repro.registry.encode_options` after the same inherit-if-name-
matches rule :meth:`repro.api.Session.pipeline` applies) — and
:func:`cell_key` digests it into the stable hex key the
:class:`repro.sweep.SweepStore` files artifacts under.

What is deliberately *excluded*: observation-only spec fields (``trace``,
``cache_capacity``) and ``memory_budget_bytes`` — tiled execution is
pinned bit-identical to untiled by the conformance matrix, so a budget
changes how a cell is computed, never what it computes.  Backend options
*are* included even though conforming backends are bit-identical: options
like fastmath deliberately trade exactness, so they must key apart.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..api.specs import EngineSpec, SweepSpec
from ..architectures import ARCHITECTURES
from ..registry import encode_options
from ..runtime.backends import BACKENDS
from ..scenarios import SCENARIOS, SCHEMES

__all__ = ["CELL_SPEC_FORMAT", "cell_key", "resolved_cell_spec"]

CELL_SPEC_FORMAT = 1
"""Version stamp baked into every cell spec (and therefore every key).

Bump it whenever the *meaning* of a stored artifact changes — e.g. the
scoring schema or the acquisition recipe — so stale stores miss instead
of serving results computed under the old semantics.
"""


def _resolved_options(engine_name: str, engine_options: Any,
                      registry: Any, name: str) -> dict | None:
    """Registry options for ``name``, resolved like a per-call override.

    Mirrors :meth:`repro.api.Session._resolve_variant`: a grid axis value
    matching the session spec's name inherits the spec's options, any
    other name uses its registered defaults.  The *resolved* instance is
    then encoded, so a cell keyed today still matches after a registry
    default changes its spelled form (defaults are materialised, not
    implied).
    """
    options = engine_options if name == engine_name else None
    return encode_options(registry.get(name).make_options(options))


def resolved_cell_spec(engine: EngineSpec, sweep: SweepSpec, scenario: str,
                       scheme: str, architecture: str, backend: str) -> dict:
    """The canonical JSON-safe document identifying one grid cell."""
    return {
        "format": CELL_SPEC_FORMAT,
        "system": engine.resolve_system().cache_key(),
        "scenario": scenario,
        "scenario_options": encode_options(
            SCENARIOS.get(scenario).make_options(None)),
        "scheme": scheme,
        "scheme_options": _resolved_options(
            engine.scheme, engine.scheme_options, SCHEMES, scheme),
        "architecture": architecture,
        "architecture_options": _resolved_options(
            engine.architecture, engine.architecture_options,
            ARCHITECTURES, architecture),
        "backend": backend,
        "backend_options": _resolved_options(
            engine.backend, engine.backend_options, BACKENDS, backend),
        "apodization": encode_options(engine.apodization),
        "interpolation": engine.interpolation.value,
        "precision": engine.precision.value,
        "quantization": encode_options(engine.quantization),
        "noise_std": sweep.noise_std,
        "seed": sweep.seed,
        "score": sweep.score,
    }


def cell_key(spec: dict) -> str:
    """Stable sha256 hex digest of a canonical cell-spec document.

    Canonical JSON (sorted keys, no whitespace variance) is the hashed
    form, so dict construction order never leaks into the key.  Also used
    directly by experiment-level store reuse (E6 hands it a small custom
    document) — any JSON-safe mapping hashes.
    """
    text = json.dumps(spec, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
