"""Content-addressed on-disk store for sweep cell artifacts.

Layout (git-friendly, two-level fanout on the key prefix)::

    <root>/
      ab/
        ab3f...e2/          one directory per cell key
          volume.npz        float64 RF volume under the "rf" array name
          cell.json         {"key", "spec", "metrics"} — written LAST

Writes are crash-safe without locks: every file lands via a temp file in
the same directory plus :func:`os.replace` (atomic on POSIX), and
``cell.json`` is written *after* the volume, so its existence is the
completion marker.  A cell directory holding a volume but no ``cell.json``
is an interrupted write; :meth:`SweepStore.__contains__` reports it
missing and the executor simply recomputes it.  Parallel workers never
share a cell (the executor partitions the grid), so concurrent writers
only ever race on *different* keys.

Bit-identity across the store boundary: ``np.savez`` round-trips float64
arrays bit-exactly, and Python's ``json`` round-trips floats through
``repr`` exactly (including the NaN fills :func:`repro.scenarios.score_volume`
uses for inapplicable metrics), so a cell read back compares equal — to
the last mantissa bit — with the in-process result it was stored from.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

import numpy as np

__all__ = ["SweepStore"]

_VOLUME_FILE = "volume.npz"
_CELL_FILE = "cell.json"


class SweepStore:
    """Filesystem map from cell keys to completed sweep artifacts."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """The cell directory for ``key`` (not necessarily existing)."""
        if not key or "/" in key or key.startswith("."):
            raise ValueError(f"malformed cell key {key!r}")
        return self.root / key[:2] / key

    # ------------------------------------------------------------- queries
    def __contains__(self, key: str) -> bool:
        return (self.path_for(key) / _CELL_FILE).is_file()

    def keys(self) -> Iterator[str]:
        """Every *completed* cell key in the store."""
        for marker in sorted(self.root.glob(f"??/*/{_CELL_FILE}")):
            yield marker.parent.name

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------ transfer
    @staticmethod
    def _replace(tmp: Path, final: Path) -> None:
        os.replace(tmp, final)

    def write(self, key: str, volume: np.ndarray | None,
              metrics: dict | None, spec: dict) -> Path:
        """Persist one completed cell; returns its directory.

        ``spec`` is the resolved cell-spec echo (kept beside the result so
        an artifact is self-describing long after the producing sweep
        document is gone).  ``volume=None`` stores a metrics-only cell
        (experiment-level reuse).  Overwrites any previous artifact for
        the key — content-addressing makes that a pure refresh.
        """
        cell_dir = self.path_for(key)
        cell_dir.mkdir(parents=True, exist_ok=True)
        suffix = f".tmp-{os.getpid()}"
        if volume is not None:
            tmp = cell_dir / (_VOLUME_FILE + suffix)
            with open(tmp, "wb") as fh:
                np.savez(fh, rf=np.asarray(volume))
            self._replace(tmp, cell_dir / _VOLUME_FILE)
        document = {"key": key, "spec": spec, "metrics": metrics}
        tmp = cell_dir / (_CELL_FILE + suffix)
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True))
        # cell.json lands last: its (atomic) appearance marks completion.
        self._replace(tmp, cell_dir / _CELL_FILE)
        return cell_dir

    def read(self, key: str) -> dict[str, Any]:
        """Load one completed cell back into the in-process result shape.

        Returns ``{"volume": rf}`` plus ``"metrics"`` when the cell was
        scored — exactly the per-cell dict :meth:`repro.api.Session.sweep`
        yields, so cached and freshly-computed cells are interchangeable.
        """
        cell_dir = self.path_for(key)
        document = json.loads((cell_dir / _CELL_FILE).read_text())
        cell: dict[str, Any] = {}
        volume_path = cell_dir / _VOLUME_FILE
        if volume_path.is_file():
            with np.load(volume_path) as archive:
                cell["volume"] = archive["rf"].copy()
        if document["metrics"] is not None:
            cell["metrics"] = document["metrics"]
        return cell

    def read_spec(self, key: str) -> dict:
        """The resolved cell-spec echo stored beside the artifact."""
        document = json.loads((self.path_for(key) / _CELL_FILE).read_text())
        return document["spec"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepStore({str(self.root)!r})"
