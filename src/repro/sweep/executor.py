"""The resumable sweep executor: grid -> cells -> artifacts.

:class:`SweepExecutor` runs a :class:`repro.api.SweepSpec` grid over one
:class:`repro.api.Session`, optionally backed by a
:class:`repro.sweep.SweepStore`.  Execution is cell-oriented:

1. The grid is expanded into cells and each cell's content-addressed key
   is computed from its fully-resolved spec
   (:func:`repro.sweep.hashing.resolved_cell_spec`).
2. With a store and ``resume=True``, cells whose key is already complete
   in the store are *skipped* — their artifacts are read back instead
   (``sweep_cells_cached_total``).  ``overwrite=True`` forces recompute.
3. Pending cells execute either in-process (``workers=1``, sharing
   firings per scenario x scheme and one delay provider per architecture,
   exactly like the historical ``Session._run_sweep_grid``) or across
   ``repro.runtime.mp`` spawn workers (``workers>1``), each worker
   handling whole (scenario, scheme, architecture) groups so the
   firings/provider sharing — and therefore bit-identity with serial
   execution — is preserved inside every group.
4. Results always come back in grid order as the same
   ``{(scenario, scheme, architecture[, backend]): {"volume", "metrics"}}``
   mapping ``Session.sweep`` has always produced; cached, serial and
   parallel cells are indistinguishable (bit-identical float64, pinned by
   the conformance suite).

Per-cell engines are released immediately after use via
``Session._release`` — the executor is also the fix for the historical
sweep leak where every grid cell's pipeline (and its backend worker
pools) stayed alive in ``Session._owned`` until session close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from ..api.specs import ScanSpec, SweepSpec
from ..kernels.plan import plan_storage_bytes
from ..scenarios import SCENARIOS, score_volume
from .hashing import cell_key, resolved_cell_spec
from .store import SweepStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.session import Session

__all__ = ["SweepExecutor", "acquire_cell_inputs", "execute_cell"]


@dataclass(frozen=True)
class _Cell:
    """One grid point, with its result key and (optional) store key."""

    scenario: str
    scheme: str
    architecture: str
    backend: str
    result_key: tuple
    store_key: str | None = None


def acquire_cell_inputs(session: "Session", sweep: SweepSpec,
                        scenario: str, scheme: str) -> tuple[list, Any]:
    """Firings + scoring options shared by every cell of one
    scenario x scheme group.

    Grid cells image one representative acquisition: frame 0 of the
    scenario's cine, built from the registry with the sweep's noise/seed.
    Acquisition is deterministic in (phantom, noise_std, seed), which is
    what lets a worker process re-acquire the identical firings a serial
    run would have shared in memory.
    """
    scan = ScanSpec(scenario=scenario, frames=1,
                    noise_std=sweep.noise_std, seed=sweep.seed)
    request = scan.build_frames(session.system)[0]
    options = SCENARIOS.get(scenario).make_options(scan.options)
    firings = session.acquire_firings(request.phantom, scheme=scheme,
                                      noise_std=request.noise_std,
                                      seed=request.seed)
    return firings, options


def execute_cell(session: "Session", sweep: SweepSpec, scenario: str,
                 scheme: str, architecture: str, backend: str,
                 firings: list, options: Any,
                 provider: Any = None) -> tuple[dict, Any]:
    """Compute one grid cell; returns ``(cell_dict, delay_provider)``.

    The pipeline is vended from the session, used for one compound, and
    released immediately (closed and dropped from ``Session._owned``) so
    sweeps of any size retain no per-cell engines.  The delay provider is
    returned for reuse — it is scheme- and backend-independent, and
    rebuilding e.g. a TABLESTEER reference table per cell would repeat
    the most expensive step of the sweep.
    """
    pipeline = session.pipeline(architecture=architecture, backend=backend,
                                scheme=scheme, provider=provider)
    provider = pipeline.delay_provider
    try:
        volume = pipeline.compound_volume(firings).rf
    finally:
        session._release(pipeline)
    cell: dict[str, Any] = {"volume": volume}
    if sweep.score:
        cell["metrics"] = score_volume(session.system, volume,
                                       scenario=scenario, options=options)
    return cell, provider


class SweepExecutor:
    """Run sweep grids over one session, with store-backed resume.

    Parameters
    ----------
    session:
        The :class:`repro.api.Session` providing substrates and the spec
        that resolves ``None`` grid axes.
    store:
        A :class:`SweepStore`, a path to create one at, or ``None`` for
        purely in-memory execution (no artifacts, no resume).
    workers:
        Parallel spawn-process dispatch width; ``> 1`` requires a store.
    resume / overwrite:
        The reuse policy, as on :class:`repro.sweep.SweepRunSpec`.
    """

    def __init__(self, session: "Session", *,
                 store: "SweepStore | str | None" = None,
                 workers: int = 1, resume: bool = True,
                 overwrite: bool = False) -> None:
        self.session = session
        if store is not None and not isinstance(store, SweepStore):
            store = SweepStore(store)
        self.store = store
        if workers < 1:
            raise ValueError("workers must be a positive integer")
        if workers > 1 and store is None:
            raise ValueError(
                "parallel dispatch (workers > 1) requires a store: worker "
                "processes return their results through the store's "
                "artifacts")
        self.workers = workers
        self.resume = resume
        self.overwrite = overwrite
        metrics = session.metrics
        self._completed = metrics.counter(
            "sweep_cells_completed_total", "sweep cells computed this run")
        self._cached = metrics.counter(
            "sweep_cells_cached_total",
            "sweep cells served from the content-addressed store")
        self._failed = metrics.counter(
            "sweep_cells_failed_total", "sweep cells that raised")
        #: per-result-key execution outcome of the last :meth:`run` —
        #: ``"computed"`` or ``"cached"`` (the CLI prints it per cell).
        self.statuses: dict[tuple, str] = {}

    # ------------------------------------------------------------ counters
    @property
    def completed(self) -> int:
        """Cells computed across this executor's runs."""
        return int(self._completed.value)

    @property
    def cached(self) -> int:
        """Cells served from the store across this executor's runs."""
        return int(self._cached.value)

    @property
    def failed(self) -> int:
        """Cells that raised across this executor's runs."""
        return int(self._failed.value)

    # ------------------------------------------------------------- running
    def run(self, sweep: SweepSpec | None = None) -> dict[tuple, dict]:
        """Execute the grid; returns the ``Session.sweep`` result mapping."""
        session = self.session
        if sweep is None:
            sweep = SweepSpec()
        architectures, backends, keyed = sweep.resolve_grid(
            session.spec.architecture, session.spec.backend)
        cells = []
        for scenario in sweep.scenarios:
            for scheme in sweep.schemes:
                for architecture in architectures:
                    for backend in backends:
                        result_key = (scenario, scheme, architecture)
                        if keyed:
                            result_key = (*result_key, backend)
                        store_key = None
                        if self.store is not None:
                            store_key = cell_key(resolved_cell_spec(
                                session.spec, sweep, scenario, scheme,
                                architecture, backend))
                        cells.append(_Cell(scenario, scheme, architecture,
                                           backend, result_key, store_key))
        with session.tracer.span("sweep", cells=len(cells),
                                 workers=self.workers,
                                 store=self.store is not None):
            return self._run_cells(sweep, cells, architectures)

    def _run_cells(self, sweep: SweepSpec, cells: list[_Cell],
                   architectures: tuple[str, ...]) -> dict[tuple, dict]:
        session = self.session
        # The grid's whole plan working set is sum(firings) x architectures
        # (plans are phantom- and backend-independent); reserving it up
        # front lets later scenarios reuse every plan instead of evicting
        # and recompiling the previous cell's event bank.  Under a byte
        # budget the count cannot be honoured, so the working-set byte
        # figure rides along and PlanCache.reserve warns when it exceeds
        # the budget (possible segment thrash) instead of staying silent.
        firing_total = sum(
            session._resolve_scheme_variant(s, None).firing_count
            for s in sweep.schemes)
        slots = firing_total * len(architectures)
        per_plan = plan_storage_bytes(
            session.grid.point_count, session.transducer.element_count,
            session.spec.precision, session.spec.interpolation)
        session.cache.reserve(slots, nbytes=per_plan * slots)

        cached = set()
        if self.store is not None and not self.overwrite and self.resume:
            cached = {cell for cell in cells if cell.store_key in self.store}
        pending = [cell for cell in cells if cell not in cached]
        computed: dict[tuple, dict] = {}
        if pending:
            if self.workers > 1:
                self._run_parallel(sweep, pending)
            else:
                self._run_serial(sweep, pending, computed)

        results: dict[tuple, dict] = {}
        self.statuses = {}
        for cell in cells:
            if cell.result_key in computed:
                results[cell.result_key] = computed[cell.result_key]
                self.statuses[cell.result_key] = "computed"
            else:
                # Cached up front, or computed by a worker process: either
                # way the artifact is the result.
                with session.tracer.span("cell", scenario=cell.scenario,
                                         scheme=cell.scheme,
                                         architecture=cell.architecture,
                                         backend=cell.backend,
                                         cached=cell in cached):
                    results[cell.result_key] = self.store.read(cell.store_key)
                if cell in cached:
                    self._cached.inc()
                    self.statuses[cell.result_key] = "cached"
                else:
                    self.statuses[cell.result_key] = "computed"
        return results

    # -------------------------------------------------------------- serial
    def _run_serial(self, sweep: SweepSpec, pending: list[_Cell],
                    computed: dict[tuple, dict]) -> None:
        session = self.session
        # One delay provider per architecture for the *whole* grid: the
        # provider is scheme-independent (the per-firing engines wrap it
        # per event), so rebuilding it per scenario x scheme cell would
        # repeat the most expensive step.
        providers: dict[str, Any] = {}
        groups: dict[tuple[str, str], list[_Cell]] = {}
        for cell in pending:
            groups.setdefault((cell.scenario, cell.scheme), []).append(cell)
        for (scenario, scheme), group in groups.items():
            firings, options = acquire_cell_inputs(session, sweep,
                                                   scenario, scheme)
            for cell in group:
                with session.tracer.span("cell", scenario=cell.scenario,
                                         scheme=cell.scheme,
                                         architecture=cell.architecture,
                                         backend=cell.backend, cached=False):
                    try:
                        result, provider = execute_cell(
                            session, sweep, cell.scenario, cell.scheme,
                            cell.architecture, cell.backend, firings,
                            options, providers.get(cell.architecture))
                    except BaseException:
                        self._failed.inc()
                        raise
                    providers[cell.architecture] = provider
                if self.store is not None:
                    self.store.write(
                        cell.store_key, result["volume"],
                        result.get("metrics"),
                        resolved_cell_spec(session.spec, sweep,
                                           cell.scenario, cell.scheme,
                                           cell.architecture, cell.backend))
                computed[cell.result_key] = result
                self._completed.inc()

    # ------------------------------------------------------------ parallel
    def _run_parallel(self, sweep: SweepSpec, pending: list[_Cell]) -> None:
        """Dispatch pending cells to spawn workers, results via the store.

        Work units are whole (scenario, scheme, architecture) groups: each
        worker acquires the group's firings once and shares one delay
        provider across its backends — the same sharing a serial run does
        inside the group, so worker output is bit-identical to serial
        (acquisition and provider construction are deterministic).
        """
        from ..runtime.mp import spawn_context
        from .worker import run_cell_group

        session = self.session
        engine_json = session.spec.to_json(indent=None)
        sweep_json = sweep.to_json(indent=None)
        groups: dict[tuple[str, str, str], list[str]] = {}
        for cell in pending:
            groups.setdefault(
                (cell.scenario, cell.scheme, cell.architecture),
                []).append(cell.backend)
        jobs = [(engine_json, sweep_json, str(self.store.root),
                 scenario, scheme, architecture, backends)
                for (scenario, scheme, architecture), backends
                in groups.items()]
        ctx = spawn_context()
        pool = ctx.Pool(processes=min(self.workers, len(jobs)))
        try:
            for keys_done in pool.imap_unordered(run_cell_group, jobs):
                self._completed.inc(len(keys_done))
        except BaseException:
            self._failed.inc()
            raise
        finally:
            pool.terminate()
            pool.join()
