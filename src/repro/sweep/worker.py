"""Spawn-worker entry point for parallel sweep cell dispatch.

:func:`run_cell_group` is the picklable function
:meth:`repro.sweep.SweepExecutor._run_parallel` maps over a
``repro.runtime.mp`` spawn pool.  Each job is one whole
(scenario, scheme, architecture) group of the grid: the worker rebuilds
the session from the engine spec's JSON (specs are the portability
boundary — exactly what they exist for), re-acquires the group's firings
once, shares one delay provider across the group's backends, computes
every cell and writes its artifact into the shared
:class:`repro.sweep.SweepStore`.  The *keys* travel back through the
pool; the *results* travel through the store — no volume ever crosses
the pickle boundary.

Bit-identity with serial execution holds because every step is
deterministic in the specs: the phantom is built from the scenario
registry, acquisition from (phantom, noise_std, seed), and delay
providers from the architecture options — so a worker's recomputed
firings and provider are bit-identical to the ones a serial run shares
in memory.  The conformance suite pins this.
"""

from __future__ import annotations

from ..api.specs import EngineSpec, SweepSpec
from .executor import acquire_cell_inputs, execute_cell
from .hashing import cell_key, resolved_cell_spec
from .store import SweepStore

__all__ = ["run_cell_group"]


def run_cell_group(job: tuple) -> list[str]:
    """Compute one (scenario, scheme, architecture) group; returns the keys.

    ``job`` is ``(engine_json, sweep_json, store_root, scenario, scheme,
    architecture, backends)`` — plain strings and tuples only, so the
    payload pickles under the spawn start method without importing
    anything session-shaped in the parent's address space.
    """
    (engine_json, sweep_json, store_root,
     scenario, scheme, architecture, backends) = job
    from ..api.session import Session

    engine = EngineSpec.from_json(engine_json)
    sweep = SweepSpec.from_json(sweep_json)
    store = SweepStore(store_root)
    written: list[str] = []
    with Session(engine) as session:
        firings, options = acquire_cell_inputs(session, sweep,
                                               scenario, scheme)
        provider = None
        for backend in backends:
            result, provider = execute_cell(
                session, sweep, scenario, scheme, architecture, backend,
                firings, options, provider)
            spec_echo = resolved_cell_spec(engine, sweep, scenario, scheme,
                                           architecture, backend)
            key = cell_key(spec_echo)
            store.write(key, result["volume"], result.get("metrics"),
                        spec_echo)
            written.append(key)
    return written
