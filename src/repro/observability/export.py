"""Exporters: JSON-lines traces, Prometheus text, human renderings.

Three consumers, three formats, one source of truth (the
:class:`~repro.observability.tracing.Tracer` span tree and the
:class:`~repro.observability.metrics.MetricsRegistry`):

* **JSON-lines trace dump** — one span per line with its depth, so a
  trace can be streamed, grepped, and round-tripped
  (:func:`spans_to_jsonl` / :func:`spans_from_jsonl`); written by the
  CLI's ``--trace-out``.
* **Prometheus-style text snapshot** — counters/gauges as plain samples,
  histograms as summaries with ``quantile`` labels
  (:func:`render_prometheus` / :func:`parse_prometheus`); written by the
  CLI's ``--metrics-out``.
* **Human renderings** — an indented span tree with per-stage time shares
  (:func:`render_span_tree`), a per-stage aggregate table
  (:func:`render_span_summary`) and the ``repro stream`` aggregate stats
  block (:func:`render_runtime_stats`).

Everything here is read-only over the recorded data — exporting never
mutates a tracer or registry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Union

from .tracing import Span, Tracer
from .metrics import Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from ..runtime.service import RuntimeStats

__all__ = [
    "parse_prometheus",
    "render_prometheus",
    "render_runtime_stats",
    "render_span_summary",
    "render_span_tree",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "summarize_spans",
    "write_metrics",
    "write_trace",
]

SpanSource = Union[Tracer, Iterable[Span]]


def _roots(source: SpanSource) -> tuple[Span, ...]:
    """Root spans of a tracer or a plain span iterable."""
    if isinstance(source, Tracer) or hasattr(source, "roots"):
        return tuple(source.roots)
    return tuple(source)


# ------------------------------------------------------------- JSON lines
def spans_to_jsonl(source: SpanSource) -> str:
    """Serialise a span tree as JSON lines (one span per line).

    Each line carries ``name``, ``depth``, ``start``, ``duration`` and
    ``attributes``; depth-first order makes the nesting recoverable (and
    the file readable top to bottom as a timeline).
    """
    lines = []
    for root in _roots(source):
        for span, depth in root.walk():
            lines.append(json.dumps({
                "name": span.name,
                "depth": depth,
                "start": span.start,
                "duration": span.duration,
                "attributes": span.attributes,
            }, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def spans_from_jsonl(text: str) -> list[Span]:
    """Rebuild the root spans of a :func:`spans_to_jsonl` dump.

    The returned spans are detached (not attached to a tracer, not usable
    as context managers) but carry the full name/timing/attribute tree —
    the exporter round-trip the tests pin.
    """
    roots: list[Span] = []
    stack: list[tuple[Span, int]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"trace line {line_number} is not valid JSON: {exc}") \
                from None
        span = Span(data["name"], data.get("attributes") or {})
        span.start = float(data.get("start", 0.0))
        span.duration = float(data.get("duration", 0.0))
        depth = int(data.get("depth", 0))
        while stack and stack[-1][1] >= depth:
            stack.pop()
        if depth > 0 and not stack:
            raise ValueError(
                f"trace line {line_number}: depth {depth} span "
                f"{span.name!r} has no parent")
        if stack:
            stack[-1][0].children.append(span)
        else:
            roots.append(span)
        stack.append((span, depth))
    return roots


def write_trace(path: str | Path, source: SpanSource) -> None:
    """Write the JSON-lines trace dump of ``source`` to ``path``."""
    Path(path).write_text(spans_to_jsonl(source))


# ------------------------------------------------------------- span trees
def render_span_tree(source: SpanSource, max_depth: int | None = None) -> str:
    """Indented human rendering of the span tree with per-stage shares.

    Each line shows the span name, wall milliseconds, the share of its
    parent's duration, and any recorded attributes.  ``max_depth`` prunes
    deep trees (``None`` renders everything).
    """
    lines: list[str] = []

    def render(span: Span, depth: int, parent_seconds: float | None) -> None:
        if max_depth is not None and depth > max_depth:
            return
        share = ""
        if parent_seconds:
            share = f"  ({100 * span.duration / parent_seconds:5.1f}%)"
        attributes = "".join(f"  {key}={value}"
                             for key, value in span.attributes.items())
        lines.append(f"{'  ' * depth}{span.name:<12s} "
                     f"{span.duration * 1e3:10.3f} ms{share}{attributes}")
        for child in span.children:
            render(child, depth + 1, span.duration)

    for root in _roots(source):
        render(root, 0, None)
    return "\n".join(lines) if lines else "(no spans recorded)"


def summarize_spans(source: SpanSource) -> dict[str, dict[str, float]]:
    """Per-name aggregate: count, total/mean seconds and share of root time.

    The per-stage time-share table: ``share`` is each stage's total
    duration over the summed root durations (nested stages overlap their
    parents, so shares do not add to 1 across *levels*, only within one).
    """
    totals: dict[str, dict[str, float]] = {}
    root_seconds = 0.0
    for root in _roots(source):
        root_seconds += root.duration
        for span, _ in root.walk():
            entry = totals.setdefault(span.name,
                                      {"count": 0.0, "total_seconds": 0.0})
            entry["count"] += 1
            entry["total_seconds"] += span.duration
    for entry in totals.values():
        entry["mean_seconds"] = entry["total_seconds"] / entry["count"]
        entry["share"] = (entry["total_seconds"] / root_seconds
                          if root_seconds > 0 else 0.0)
    return totals


def render_span_summary(source: SpanSource) -> str:
    """Aggregate table of :func:`summarize_spans`, widest stages first."""
    summary = summarize_spans(source)
    if not summary:
        return "(no spans recorded)"
    lines = [f"{'span':<14s} {'count':>7s} {'total':>12s} {'mean':>12s} "
             f"{'share':>7s}"]
    for name, entry in sorted(summary.items(),
                              key=lambda item: -item[1]["total_seconds"]):
        lines.append(f"{name:<14s} {int(entry['count']):>7d} "
                     f"{entry['total_seconds'] * 1e3:>9.3f} ms "
                     f"{entry['mean_seconds'] * 1e3:>9.3f} ms "
                     f"{100 * entry['share']:>6.1f}%")
    return "\n".join(lines)


# ------------------------------------------------------------- Prometheus
def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text-format snapshot of a registry.

    Counters and gauges render as single samples; histograms render as
    summaries (``quantile`` labels for p50/p95/p99 plus ``_sum`` and
    ``_count`` series) — the shape a scrape endpoint would serve.
    """
    lines: list[str] = []
    for instrument in registry:
        name = instrument.name
        if instrument.description:
            lines.append(f"# HELP {name} {instrument.description}")
        if isinstance(instrument, Histogram):
            lines.append(f"# TYPE {name} summary")
            for quantile in (0.5, 0.95, 0.99):
                lines.append(f'{name}{{quantile="{quantile}"}} '
                             f"{instrument.percentile(100 * quantile):.9g}")
            lines.append(f"{name}_sum {instrument.sum:.9g}")
            lines.append(f"{name}_count {instrument.count}")
        else:
            kind = "counter" if type(instrument).__name__ == "Counter" \
                else "gauge"
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {instrument.value:.9g}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse a :func:`render_prometheus` snapshot into ``{series: value}``.

    Series names keep their label suffix (``name{quantile="0.95"}``), so
    the mapping round-trips every sample the renderer wrote; comment
    lines are skipped.
    """
    samples: dict[str, float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        try:
            samples[series] = float(value)
        except ValueError:
            raise ValueError(
                f"metrics line {line_number} is not a sample: {line!r}") \
                from None
    return samples


def write_metrics(path: str | Path, registry: MetricsRegistry) -> None:
    """Write the Prometheus text snapshot of ``registry`` to ``path``."""
    Path(path).write_text(render_prometheus(registry))


# ---------------------------------------------------------- runtime stats
def render_runtime_stats(stats: "RuntimeStats") -> str:
    """The human aggregate block for one service's stats.

    Accepts any object with the :class:`repro.runtime.RuntimeStats`
    fields (duck-typed to keep this module import-light); used by the
    CLI ``stream`` command's closing "Aggregate" section.
    """
    lines = [
        f"  backend / dtype          : {stats.backend} / {stats.precision}",
        f"  frames                   : {stats.frames}",
        f"  volume rate              : {stats.frames_per_second:.2f} frames/s",
        f"  voxel rate               : {stats.voxels_per_second:.3e} voxels/s",
        f"  latency mean / max       : {stats.mean_latency_seconds * 1e3:.2f}"
        f" / {stats.max_latency_seconds * 1e3:.2f} ms",
        f"  latency p50 / p95 / p99  : {stats.p50_latency_seconds * 1e3:.2f}"
        f" / {stats.p95_latency_seconds * 1e3:.2f}"
        f" / {stats.p99_latency_seconds * 1e3:.2f} ms",
        f"  plan cache               : {stats.cache.hits} hits, "
        f"{stats.cache.misses} misses, {stats.cache.evictions} evictions "
        f"(hit rate {100 * stats.cache.hit_rate:.0f}%)",
    ]
    if stats.quantization is not None:
        lines.append(f"  quantization             : {stats.quantization}")
    if stats.scheme is not None:
        lines.append(f"  scheme                   : {stats.scheme}")
    return "\n".join(lines)
