"""repro.observability: tracing, metrics and exporters for the runtime.

The paper's claim is a throughput/latency/storage trade-off; this package
is how the reproduction *measures* it.  Three pieces, all opt-in and all
observation-only (a traced run computes bit-identical volumes — pinned in
the tests):

* :mod:`~repro.observability.tracing` — span-based :class:`Tracer`
  threaded through plan execution, the backends, scheme compounding,
  pipelines, services and sessions; :data:`NULL_TRACER` is the free
  default.
* :mod:`~repro.observability.metrics` — :class:`MetricsRegistry` of
  counters/gauges/percentile histograms backing
  :class:`repro.runtime.RuntimeStats` and
  :class:`repro.runtime.cache.PlanCache` instead of ad-hoc integers.
* :mod:`~repro.observability.export` — JSON-lines traces, a
  Prometheus-style text snapshot and the human renderings behind the CLI's
  ``--trace`` / ``--trace-out`` / ``--metrics-out`` flags.

:mod:`~repro.observability.benchgate` closes the loop: it compares a
fresh E11 run against the committed ``BENCH_runtime.json`` baseline, so
every later perf PR reports through this layer *and* is checked by it.
"""

from .export import (
    parse_prometheus,
    render_prometheus,
    render_runtime_stats,
    render_span_summary,
    render_span_tree,
    spans_from_jsonl,
    spans_to_jsonl,
    summarize_spans,
    write_metrics,
    write_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricError, MetricsRegistry
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_default_tracer,
    resolve_tracer,
    set_default_tracer,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "get_default_tracer",
    "parse_prometheus",
    "render_prometheus",
    "render_runtime_stats",
    "render_span_summary",
    "render_span_tree",
    "resolve_tracer",
    "set_default_tracer",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "summarize_spans",
    "use_tracer",
    "write_metrics",
    "write_trace",
]
