"""Counters, gauges and percentile histograms behind one registry.

The quantitative side of the observability layer: where spans
(:mod:`repro.observability.tracing`) answer *where one run spent its
time*, metrics aggregate *how the system behaves over many frames* —
service latency percentiles, cache hit/miss counts, frames/s, voxels/s.
:class:`repro.runtime.cache.PlanCache` and
:class:`repro.runtime.service.BeamformingService` keep their counters as
instruments of a :class:`MetricsRegistry` instead of ad-hoc integer
attributes, so every figure the runtime reports is also exportable as a
Prometheus-style snapshot (:func:`repro.observability.render_prometheus`)
without a second bookkeeping path.

Three instrument types, deliberately minimal:

* :class:`Counter` — monotonically increasing float (``_total`` names);
* :class:`Gauge` — a value that can go up and down (sizes, rates);
* :class:`Histogram` — stores every observation exactly and computes
  percentiles with :func:`numpy.percentile` (runs here are thousands of
  frames, not millions, so exact storage beats bucketing error).

Instruments are get-or-create by name: asking a registry twice for the
same counter returns the same object, and asking for an existing name as
a different type raises :class:`MetricError` — name collisions surface
immediately instead of silently splitting a series.
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
]


class MetricError(ValueError):
    """Raised on instrument misuse (type collisions, negative counts)."""


class Counter:
    """A monotonically increasing value (frames processed, cache hits)."""

    __slots__ = ("name", "description", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (inc by {amount})")
        self._value += amount

    def reset(self) -> None:
        """Zero the counter (stats-reset support; not a Prometheus op)."""
        self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, value={self._value:g})"


class Gauge:
    """A point-in-time value (cache size, sustained frames/s)."""

    __slots__ = ("name", "description", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the value."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the value by ``amount`` (may be negative)."""
        self._value += amount

    def reset(self) -> None:
        """Zero the gauge."""
        self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, value={self._value:g})"


class Histogram:
    """Exact-storage distribution with :func:`numpy.percentile` quantiles.

    Every observation is kept, so ``percentile(q)`` agrees with
    ``numpy.percentile(observations, q)`` bit for bit (pinned in the
    tests) and the empty histogram reports 0.0 everywhere — the guard
    that keeps a fresh/reset service's ``stats()`` away from
    ``np.mean([])``.
    """

    __slots__ = ("name", "description", "_values")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    # ------------------------------------------------------------ summaries
    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def sum(self) -> float:
        """Sum of observations (0.0 when empty)."""
        return float(sum(self._values))

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.sum / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return float(min(self._values)) if self._values else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        return float(max(self._values)) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (linear interpolation; 0.0 when empty)."""
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, q))

    @property
    def values(self) -> np.ndarray:
        """Copy of the raw observations."""
        return np.asarray(self._values, dtype=float)

    def summary(self) -> dict[str, float]:
        """Count/sum/mean/min/max plus the p50/p95/p99 service quantiles."""
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def reset(self) -> None:
        """Drop every observation."""
        self._values = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name!r}, count={self.count})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, get-or-create, with a JSON-safe snapshot.

    One registry typically spans one logical unit — a
    :class:`repro.runtime.BeamformingService` and the
    :class:`repro.runtime.cache.PlanCache` it owns, or a whole
    :class:`repro.api.Session` — so a single
    :func:`repro.observability.render_prometheus` call exports the unit's
    complete state.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    # ------------------------------------------------------------- creation
    def _get_or_create(self, cls, name: str, description: str) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, description)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise MetricError(
                f"metric {name!r} is already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}")
        return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(Gauge, name, description)

    def histogram(self, name: str, description: str = "") -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(Histogram, name, description)

    # ------------------------------------------------------------- contents
    def get(self, name: str) -> Instrument | None:
        """The instrument registered under ``name`` (``None`` if absent)."""
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def names(self) -> tuple[str, ...]:
        """Registered names in registration order."""
        return tuple(self._instruments)

    # -------------------------------------------------------------- export
    def snapshot(self) -> dict[str, object]:
        """JSON-safe state: scalars for counters/gauges, summaries for
        histograms."""
        out: dict[str, object] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        return out

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Adopt ``other``'s instruments (by reference) under absent names.

        Names already present are kept — merging a cache's registry into a
        service view never clobbers the service's own instruments.  Returns
        ``self`` for chaining.
        """
        for name, instrument in other._instruments.items():
            self._instruments.setdefault(name, instrument)
        return self

    def reset(self) -> None:
        """Reset every instrument (counters/gauges to 0, histograms empty)."""
        for instrument in self._instruments.values():
            instrument.reset()
