"""Span-based tracing for the beamforming execution stack.

A :class:`Tracer` records a tree of named, timed :class:`Span` objects —
the per-stage breakdown the paper's throughput argument needs in software:
how much of a frame's latency is plan ``compile`` versus echo-buffer
``gather`` versus ``weights``/``accumulate`` arithmetic versus scheme
``compound`` versus acoustic ``simulate``.  The runtime layers
(:class:`repro.kernels.BeamformingPlan`, the execution backends,
:class:`repro.scenarios.SchemeEngine`, :class:`repro.runtime.BeamformingService`,
:class:`repro.api.Session`) all accept a tracer and open spans around those
stages.

Tracing is **opt-in and observation-only**: the default is
:data:`NULL_TRACER`, whose :meth:`~NullTracer.span` returns one shared
no-op context manager (no allocation, no timing), so untraced execution
pays a single attribute lookup per instrumented stage — and a traced run
computes bit-identical volumes, because spans only ever *time* stages.

Span taxonomy (see ``docs/observability.md`` for the full table):

``frame`` > ``simulate`` / ``beamform`` > ``compound`` > ``compile`` /
``execute`` / ``gather`` / ``weights`` / ``accumulate``, plus ``batch``,
``sweep`` and ``cell`` at the session level.

Thread-safety: each thread nests spans on its own stack (spans opened by
worker threads of the ``sharded`` backend become additional roots), and
root registration is locked, so one tracer may observe a multi-threaded
run without corrupting the tree.

A process-wide default tracer can be installed with
:func:`set_default_tracer` / :func:`use_tracer`; every layer that takes
``tracer=None`` falls back to it through :func:`resolve_tracer`.  This is
what lets ``repro run E11 --trace`` trace experiments that build their own
sessions internally.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_default_tracer",
    "resolve_tracer",
    "set_default_tracer",
    "use_tracer",
]


class Span:
    """One named, timed stage of a run; nests into a tree.

    Spans are created by :meth:`Tracer.span` and used as single-shot
    context managers::

        with tracer.span("gather") as span:
            gathered = gather_interp(samples, index)
            span.set(bytes=gathered.nbytes)

    ``start`` is seconds since the tracer's epoch (its construction), so
    sibling spans order by ``start``; ``duration`` is wall seconds.
    A span rebuilt by the JSON-lines importer has no tracer and cannot be
    re-entered.
    """

    __slots__ = ("name", "attributes", "start", "duration", "children",
                 "_tracer")

    def __init__(self, name: str, attributes: dict[str, Any] | None = None,
                 tracer: "Tracer | None" = None) -> None:
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.start = 0.0
        self.duration = 0.0
        self.children: list["Span"] = []
        self._tracer = tracer

    # -------------------------------------------------------- span protocol
    def __enter__(self) -> "Span":
        if self._tracer is None:
            raise RuntimeError(
                f"span {self.name!r} is detached (imported or already "
                "closed); create spans with Tracer.span()")
        self._tracer._open(self)
        self.start = self._tracer._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = self._tracer._now() - self.start
        self._tracer._close(self)
        return False

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    # ------------------------------------------------------------ inspection
    @property
    def self_seconds(self) -> float:
        """Duration not covered by child spans (this stage's own work)."""
        return max(0.0, self.duration - sum(child.duration
                                            for child in self.children))

    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        """Depth-first iteration of the subtree as ``(span, depth)`` pairs."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree (depth-first order)."""
        return [span for span, _ in self.walk() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Span({self.name!r}, duration={self.duration:.6f}, "
                f"children={len(self.children)})")


class Tracer:
    """Collects a span tree; hand one to a service/session/plan to profile.

    Usage::

        tracer = Tracer()
        service = BeamformingService(system, tracer=tracer)
        service.submit_frame(phantom)
        print(render_span_tree(tracer))

    Spans opened while another span of the *same thread* is active nest
    under it; spans opened with no active span become roots.
    """

    enabled = True
    """Class-level flag; lets hot paths skip attribute computation with
    ``if tracer.enabled: ...`` when even building span attributes would
    cost something."""

    def __init__(self) -> None:
        self._epoch = perf_counter()
        self._local = threading.local()
        self._roots: list[Span] = []
        self._lock = threading.Lock()

    # ----------------------------------------------------------- internals
    def _now(self) -> float:
        return perf_counter() - self._epoch

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)

    def _close(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate mismatched exits (a span leaked across an exception in
        # user code) instead of corrupting every later frame's nesting.
        while stack:
            if stack.pop() is span:
                break

    # ------------------------------------------------------------- surface
    def span(self, name: str, **attributes: Any) -> Span:
        """A new span named ``name``; use it as a context manager."""
        return Span(name, attributes, tracer=self)

    @property
    def roots(self) -> tuple[Span, ...]:
        """Top-level spans recorded so far (across all threads)."""
        with self._lock:
            return tuple(self._roots)

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Depth-first iteration over every recorded span."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """Every recorded span named ``name``."""
        return [span for span, _ in self.walk() if span.name == name]

    @property
    def span_count(self) -> int:
        """Total number of recorded spans."""
        return sum(1 for _ in self.walk())

    @property
    def total_seconds(self) -> float:
        """Wall seconds covered by the root spans."""
        return sum(root.duration for root in self.roots)

    def reset(self) -> None:
        """Drop every recorded span (the epoch is kept)."""
        with self._lock:
            self._roots = []
        self._local = threading.local()


class _NullSpan:
    """The shared no-op span: enters, exits and sets attributes for free."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer every layer defaults to.

    ``span()`` returns one shared, stateless context manager, so the
    disabled-instrumentation cost of a stage is a single method call —
    the overhead bound is pinned in ``tests/test_observability.py``.
    """

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    @property
    def roots(self) -> tuple:
        return ()

    def walk(self) -> Iterator:
        return iter(())

    def find(self, name: str) -> list:
        return []

    @property
    def span_count(self) -> int:
        return 0

    @property
    def total_seconds(self) -> float:
        return 0.0

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()
"""The process-wide no-op tracer instance (safe to share everywhere)."""


_default_tracer: "Tracer | NullTracer" = NULL_TRACER


def get_default_tracer() -> "Tracer | NullTracer":
    """The process-wide default tracer (:data:`NULL_TRACER` unless set)."""
    return _default_tracer


def set_default_tracer(tracer: "Tracer | NullTracer | None"
                       ) -> "Tracer | NullTracer":
    """Install ``tracer`` as the process default; returns the previous one.

    ``None`` restores :data:`NULL_TRACER`.  Every constructor that takes
    ``tracer=None`` resolves to this default, which is how the CLI's
    ``--trace`` flag reaches sessions built deep inside an experiment.
    """
    global _default_tracer
    previous = _default_tracer
    _default_tracer = NULL_TRACER if tracer is None else tracer
    return previous


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer"):
    """Context manager installing ``tracer`` as the default, then restoring."""
    previous = set_default_tracer(tracer)
    try:
        yield tracer
    finally:
        set_default_tracer(previous)


def resolve_tracer(tracer: "Tracer | NullTracer | None"
                   ) -> "Tracer | NullTracer":
    """``None`` -> the process default tracer; anything else passes through."""
    return _default_tracer if tracer is None else tracer
