"""Perf-regression gate over committed ``BENCH_runtime.json`` baselines.

ROADMAP item 5's missing half: E11 writes a throughput table per run, but
until a baseline is *committed* the perf trajectory resets every CI run.
This module compares a fresh E11 result against the repo's committed
``BENCH_runtime.json`` and flags any ``vectorized`` row whose voxels/s
dropped by more than the threshold (default 20%, per-frame and batched).

Wall-clock throughput is a property of the machine as much as of the
code, so the gate is two-mode, mirroring
``benchmarks/test_bench_runtime.py``:

* ``REPRO_BENCH_STRICT`` set (any value but ``0``/empty) — regressions
  **fail** (exit code 1): for dedicated perf runners and local checks.
* unset — regressions **warn** (exit code 0) but still print the full
  ratio table, so an oversubscribed CI runner never blocks a merge while
  the trajectory stays visible in the log.

Usage::

    python -m repro.experiments.e11_runtime_throughput \
        --json BENCH_fresh.json --system small
    python -m repro.observability.benchgate BENCH_runtime.json BENCH_fresh.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Sequence

__all__ = ["DEFAULT_THRESHOLD", "GATED_BACKENDS", "GATED_METRICS",
           "SOAK_METRICS", "compare_benchmarks", "main"]

DEFAULT_THRESHOLD = 0.20
"""Maximum tolerated fractional drop in a gated throughput figure."""

GATED_BACKENDS = ("vectorized", "compiled")
"""Backends whose throughput is gated (the compiled-plan hot paths).

The committed ``BENCH_runtime.json`` carries numba-built ``compiled``
rows, so the conformance-numba CI leg gates both backends; on numba-free
hosts the fresh run simply has no compiled rows and those baselines are
reported as missing, never gated.
"""

GATED_METRICS = ("voxels_per_second", "batched_voxels_per_second")
"""Per-row figures compared between baseline and fresh run."""

SOAK_METRICS = ("voxels_per_second",)
"""Figures gated per ``server_soak`` row (rows are keyed by their
sessions x workers shape, so only like-configured soaks compare)."""


def compare_benchmarks(baseline: dict, fresh: dict,
                       threshold: float = DEFAULT_THRESHOLD
                       ) -> tuple[list[str], list[str]]:
    """Compare two E11 result tables; returns ``(report, regressions)``.

    ``report`` holds one human line per compared figure (ratio included);
    ``regressions`` holds the subset whose fresh value fell below
    ``(1 - threshold) x baseline``.  Rows present in only one table are
    reported but never gated (a new backend must not fail the gate the PR
    that introduces it).  A baseline/fresh *system* mismatch raises — the
    figures would not be comparable at all.
    """
    if not 0 < threshold < 1:
        raise ValueError("threshold must be a fraction in (0, 1)")
    if baseline.get("system") != fresh.get("system"):
        raise ValueError(
            f"benchmark system mismatch: baseline ran on "
            f"{baseline.get('system')!r}, fresh run on "
            f"{fresh.get('system')!r}; regenerate one side")
    report: list[str] = []
    regressions: list[str] = []
    baseline_rows = baseline.get("backends", {})
    fresh_rows = fresh.get("backends", {})
    for backend in GATED_BACKENDS:
        base_by_precision = baseline_rows.get(backend, {})
        fresh_by_precision = fresh_rows.get(backend, {})
        for precision in base_by_precision:
            if precision not in fresh_by_precision:
                report.append(f"  {backend}/{precision}: missing from the "
                              "fresh run (not gated)")
                continue
            for metric in GATED_METRICS:
                base = base_by_precision[precision].get(metric)
                new = fresh_by_precision[precision].get(metric)
                if not base or new is None:
                    continue
                ratio = new / base
                line = (f"  {backend}/{precision} {metric}: "
                        f"{new:.3e} vs baseline {base:.3e} "
                        f"({ratio:.2f}x)")
                report.append(line)
                if new < (1.0 - threshold) * base:
                    regressions.append(
                        f"{backend}/{precision} {metric} dropped "
                        f"{100 * (1 - ratio):.0f}% "
                        f"(> {100 * threshold:.0f}% threshold)")
    # Multi-session server soak rows (repro.server.soak): compared only
    # between runs of the same sessions x workers shape — the row key
    # encodes it — so a CI smoke soak never gates against the committed
    # full-size baseline.
    base_soak = baseline.get("server_soak", {})
    fresh_soak = fresh.get("server_soak", {})
    for key in base_soak:
        if key not in fresh_soak:
            report.append(f"  server_soak/{key}: missing from the fresh "
                          "run (not gated)")
            continue
        for metric in SOAK_METRICS:
            base = base_soak[key].get(metric)
            new = fresh_soak[key].get(metric)
            if not base or new is None:
                continue
            ratio = new / base
            report.append(f"  server_soak/{key} {metric}: "
                          f"{new:.3e} vs baseline {base:.3e} "
                          f"({ratio:.2f}x)")
            if new < (1.0 - threshold) * base:
                regressions.append(
                    f"server_soak/{key} {metric} dropped "
                    f"{100 * (1 - ratio):.0f}% "
                    f"(> {100 * threshold:.0f}% threshold)")
    return report, regressions


def _load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except OSError as exc:
        raise SystemExit(f"cannot read benchmark file {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"benchmark file {path!r} is not valid JSON: {exc}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; see the module docstring for the CI wiring."""
    parser = argparse.ArgumentParser(
        description="compare a fresh E11 run against the committed "
                    "BENCH_runtime.json baseline")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly measured JSON")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="maximum tolerated fractional drop "
                             "(default 0.20)")
    args = parser.parse_args(argv)
    strict = os.environ.get("REPRO_BENCH_STRICT", "") not in ("", "0")
    baseline, fresh = _load(args.baseline), _load(args.fresh)
    try:
        report, regressions = compare_benchmarks(baseline, fresh,
                                                 threshold=args.threshold)
    except ValueError as exc:
        print(f"bench gate error: {exc}", file=sys.stderr)
        return 2
    mode = "strict (REPRO_BENCH_STRICT)" if strict else "warn-only"
    print(f"Bench regression gate [{mode}] — "
          f"system {fresh.get('system')!r}, "
          f"threshold {100 * args.threshold:.0f}%:")
    for line in report:
        print(line)
    if not report:
        print("  (no comparable rows)")
    if regressions:
        for regression in regressions:
            print(f"{'FAIL' if strict else 'WARN'}: {regression}",
                  file=sys.stderr if strict else sys.stdout)
        return 1 if strict else 0
    print("  no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
