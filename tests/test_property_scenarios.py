"""Property tests for the scenario subsystem: compounding, delay split,
metric invariances.

Three families, each a law the implementation must obey for *any* input:

* **Compounding linearity** — the compounded volume equals the ordered sum
  of the per-firing volumes, each beamformed by a single-event scheme.
* **Transmit/receive delay split** — the focused event leaves every
  architecture's delays bit-identical, and a plane-wave event over the
  exact architecture equals the independently computed
  ``tx_plane + rx`` decomposition.
* **Metric invariances** — FWHM, CNR and gCNR are invariant under common
  positive amplitude scaling (exactly so for power-of-two scales, which
  move histogram bin edges without re-rounding) and gCNR under any
  permutation of the samples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tiny_system
from repro.acoustics.echo import EchoSimulator
from repro.acoustics.phantom import point_target
from repro.architectures import ARCHITECTURES
from repro.beamformer.das import DelayAndSumBeamformer
from repro.beamformer.image import (
    contrast_to_noise_ratio,
    generalized_cnr,
    point_spread_metrics,
)
from repro.core.exact import receive_delay
from repro.geometry.volume import FocalGrid
from repro.scenarios import (
    SCHEMES,
    SchemeEngine,
    TransmitAdjustedProvider,
    TransmitEvent,
    TransmitScheme,
    acquire_firings,
)

TINY = tiny_system()
GRID = FocalGrid.from_config(TINY)
SIMULATOR = EchoSimulator.from_config(TINY)
EXACT = ARCHITECTURES.create("exact", TINY)

_samples = st.lists(st.floats(min_value=1e-6, max_value=1e6,
                              allow_nan=False), min_size=4, max_size=40)


# ------------------------------------------------------- compounding
@settings(max_examples=6, deadline=None)
@given(scheme_name=st.sampled_from(["planewave", "diverging"]),
       count=st.integers(min_value=2, max_value=3),
       depth_index=st.integers(min_value=4, max_value=12))
def test_compound_equals_sum_of_per_firing_volumes(scheme_name, count,
                                                   depth_index):
    """Sum of single-firing volumes == compounded volume, bit for bit."""
    options = {"n_angles": count} if scheme_name == "planewave" \
        else {"count": count}
    scheme = SCHEMES.create(scheme_name, TINY, options=options)
    phantom = point_target(depth=float(GRID.depths[depth_index]))
    firings = acquire_firings(SIMULATOR, scheme, phantom)
    beamformer = DelayAndSumBeamformer(TINY, EXACT)
    compounded = SchemeEngine(beamformer, scheme,
                              backend="vectorized").beamform_volume(firings)

    total = None
    for event, firing in zip(scheme.events, firings):
        single = TransmitScheme(name=f"single[{event.label}]",
                                events=(event,))
        volume = SchemeEngine(beamformer, single, backend="vectorized") \
            .beamform_volume([firing])
        total = volume if total is None else total + volume
    np.testing.assert_array_equal(compounded, total)


# ------------------------------------------------------- delay split
@settings(max_examples=10, deadline=None)
@given(architecture=st.sampled_from(["exact", "tablefree", "tablesteer"]),
       i_theta=st.integers(min_value=0, max_value=7),
       i_phi=st.integers(min_value=0, max_value=7))
def test_focused_split_is_bit_identical_to_base(architecture, i_theta,
                                                i_phi):
    """Swapping in the canonical focused transmit changes nothing."""
    base = ARCHITECTURES.create(architecture, TINY)
    wrapped = TransmitAdjustedProvider.from_provider(
        base, TransmitEvent.focused(), TINY, grid=GRID)
    np.testing.assert_array_equal(
        wrapped.scanline_delays_samples(i_theta, i_phi),
        base.scanline_delays_samples(i_theta, i_phi))
    points = GRID.scanline_points(i_theta, i_phi)
    np.testing.assert_array_equal(wrapped.delays_samples(points),
                                  base.delays_samples(points))


@settings(max_examples=10, deadline=None)
@given(theta_fraction=st.floats(min_value=-0.8, max_value=0.8),
       i_theta=st.integers(min_value=0, max_value=7),
       i_phi=st.integers(min_value=0, max_value=7))
def test_plane_wave_split_matches_tx_plus_rx(theta_fraction, i_theta, i_phi):
    """Plane-wave delays over the exact architecture decompose exactly into
    the plane-wave transmit leg plus the geometric receive leg."""
    event = TransmitEvent.plane_wave(
        theta_fraction * TINY.volume.theta_max)
    wrapped = TransmitAdjustedProvider.from_provider(EXACT, event, TINY,
                                                     grid=GRID)
    points = GRID.scanline_points(i_theta, i_phi)
    fs = TINY.acoustic.sampling_frequency
    c = TINY.acoustic.speed_of_sound
    expected = (event.transmit_delays_seconds(points, c)[:, None]
                + receive_delay(points, EXACT.transducer.positions, c)) * fs
    np.testing.assert_allclose(wrapped.delays_samples(points), expected,
                               rtol=0, atol=1e-9)


# -------------------------------------------------- metric invariances
@settings(max_examples=40, deadline=None)
@given(inside=_samples, outside=_samples,
       exponent=st.integers(min_value=-8, max_value=8))
def test_gcnr_invariant_under_power_of_two_scaling(inside, outside,
                                                   exponent):
    scale = 2.0 ** exponent
    inside, outside = np.asarray(inside), np.asarray(outside)
    assert generalized_cnr(inside * scale, outside * scale) == \
        pytest.approx(generalized_cnr(inside, outside), abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(inside=_samples, outside=_samples, seed=st.integers(0, 2 ** 16))
def test_gcnr_invariant_under_permutation(inside, outside, seed):
    rng = np.random.default_rng(seed)
    inside, outside = np.asarray(inside), np.asarray(outside)
    assert generalized_cnr(rng.permutation(inside),
                           rng.permutation(outside)) == \
        generalized_cnr(inside, outside)


@settings(max_examples=40, deadline=None)
@given(inside=_samples, outside=_samples,
       scale=st.floats(min_value=1e-3, max_value=1e3))
def test_cnr_invariant_under_amplitude_scaling(inside, outside, scale):
    inside, outside = np.asarray(inside), np.asarray(outside)
    reference = contrast_to_noise_ratio(inside, outside)
    scaled = contrast_to_noise_ratio(inside * scale, outside * scale)
    if np.isfinite(reference):
        assert scaled == pytest.approx(reference, rel=1e-9, abs=1e-12)
    else:
        assert scaled == reference


@settings(max_examples=40, deadline=None)
@given(profile=st.lists(
    # 0 is a legitimate sample; nonzero amplitudes stay far from the
    # subnormal range where halving the peak underflows to 0.
    st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=1e6)),
    min_size=3, max_size=64),
    exponent=st.integers(min_value=-8, max_value=8))
def test_fwhm_invariant_under_power_of_two_scaling(profile, exponent):
    profile = np.asarray(profile)
    scale = 2.0 ** exponent
    assert point_spread_metrics(profile * scale).fwhm_samples == \
        point_spread_metrics(profile).fwhm_samples


def test_gcnr_bounds_and_separation():
    """Disjoint populations reach gCNR 1; identical ones reach 0."""
    rng = np.random.default_rng(0)
    low = rng.uniform(0.0, 1.0, 500)
    high = rng.uniform(5.0, 6.0, 500)
    assert generalized_cnr(low, high) == pytest.approx(1.0)
    assert generalized_cnr(low, low) == pytest.approx(0.0, abs=1e-12)
    assert 0.0 <= generalized_cnr(low, low + 0.5) <= 1.0
