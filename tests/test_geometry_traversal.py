"""Tests for repro.geometry.traversal: Algorithm 1 loop orders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import tiny_system
from repro.geometry.traversal import (
    analyze_traversal,
    compare_orders,
    nappe_order,
    nappe_order_indices,
    orders_visit_same_points,
    scanline_order,
    scanline_order_indices,
)


class TestIndexGenerators:
    def test_scanline_indices_count(self, tiny):
        indices = scanline_order_indices(tiny)
        assert indices.shape == (tiny.volume.focal_point_count, 3)

    def test_nappe_indices_count(self, tiny):
        indices = nappe_order_indices(tiny)
        assert indices.shape == (tiny.volume.focal_point_count, 3)

    def test_scanline_order_depth_innermost(self, tiny):
        indices = scanline_order_indices(tiny)
        n_depth = tiny.volume.n_depth
        # The first n_depth entries share (theta, phi) = (0, 0).
        np.testing.assert_array_equal(indices[:n_depth, 0], 0)
        np.testing.assert_array_equal(indices[:n_depth, 1], 0)
        np.testing.assert_array_equal(indices[:n_depth, 2], np.arange(n_depth))

    def test_nappe_order_depth_outermost(self, tiny):
        indices = nappe_order_indices(tiny)
        per_nappe = tiny.volume.n_theta * tiny.volume.n_phi
        np.testing.assert_array_equal(indices[:per_nappe, 2], 0)
        assert indices[per_nappe, 2] == 1

    def test_generators_match_index_arrays(self, tiny):
        from_gen = np.array([[s.i_theta, s.i_phi, s.i_depth]
                             for s in scanline_order(tiny)])
        np.testing.assert_array_equal(from_gen, scanline_order_indices(tiny))
        from_gen = np.array([[s.i_theta, s.i_phi, s.i_depth]
                             for s in nappe_order(tiny)])
        np.testing.assert_array_equal(from_gen, nappe_order_indices(tiny))

    def test_all_indices_within_bounds(self, tiny):
        for indices in (scanline_order_indices(tiny), nappe_order_indices(tiny)):
            assert indices[:, 0].max() == tiny.volume.n_theta - 1
            assert indices[:, 1].max() == tiny.volume.n_phi - 1
            assert indices[:, 2].max() == tiny.volume.n_depth - 1
            assert indices.min() == 0


class TestEquivalence:
    def test_orders_visit_same_points(self, tiny):
        assert orders_visit_same_points(tiny)

    def test_no_duplicate_visits(self, tiny):
        indices = scanline_order_indices(tiny)
        assert len(np.unique(indices, axis=0)) == len(indices)
        indices = nappe_order_indices(tiny)
        assert len(np.unique(indices, axis=0)) == len(indices)


class TestStats:
    def test_scanline_switches_depth_every_point(self, tiny):
        stats = analyze_traversal(scanline_order_indices(tiny), "scanline")
        # Depth changes between every consecutive pair within a scanline;
        # only at scanline boundaries does it repeat (returning to depth 0
        # still counts as a switch unless n_depth == 1).
        assert stats.slice_reuse_factor == pytest.approx(1.0, rel=0.01)

    def test_nappe_reuses_each_slice(self, tiny):
        stats = analyze_traversal(nappe_order_indices(tiny), "nappe")
        per_nappe = tiny.volume.n_theta * tiny.volume.n_phi
        assert stats.slice_reuse_factor == pytest.approx(per_nappe)
        assert stats.max_consecutive_same_depth == per_nappe
        assert stats.depth_switches == tiny.volume.n_depth - 1

    def test_compare_orders_keys(self, tiny):
        comparison = compare_orders(tiny)
        assert set(comparison) == {"scanline", "nappe"}
        assert comparison["nappe"].slice_reuse_factor \
            > comparison["scanline"].slice_reuse_factor

    def test_analyze_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            analyze_traversal(np.zeros((5, 2)), "bad")

    def test_point_counts_agree(self, tiny):
        comparison = compare_orders(tiny)
        assert comparison["scanline"].point_count == tiny.volume.focal_point_count
        assert comparison["nappe"].point_count == tiny.volume.focal_point_count

    def test_single_depth_volume(self):
        system = tiny_system().with_volume(n_depth=1)
        comparison = compare_orders(system)
        assert comparison["scanline"].depth_switches == 0
        assert comparison["nappe"].depth_switches == 0
