"""Integration tests: full pipeline from phantom to image across delay providers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.echo import EchoSimulator
from repro.acoustics.phantom import point_grid, point_target
from repro.beamformer.das import DelayAndSumBeamformer
from repro.beamformer.drivers import reconstruct_nappe_order, reconstruct_plane
from repro.beamformer.image import envelope, normalized_rms_difference
from repro.config import tiny_system
from repro.core.exact import ExactDelayEngine
from repro.core.tablefree import TableFreeConfig, TableFreeDelayGenerator
from repro.core.tablesteer import TableSteerConfig, TableSteerDelayGenerator


@pytest.fixture(scope="module")
def pipeline_setup():
    system = tiny_system()
    exact = ExactDelayEngine.from_config(system)
    depth = float(exact.grid.depths[len(exact.grid.depths) // 2])
    theta = float(exact.grid.thetas[len(exact.grid.thetas) // 2])
    phantom = point_target(depth=depth, theta=theta)
    data = EchoSimulator.from_config(system).simulate(phantom)
    return system, exact, data, depth


class TestCrossArchitectureImaging:
    def test_all_providers_localise_the_target(self, pipeline_setup):
        system, exact, data, depth = pipeline_setup
        providers = {
            "exact": exact,
            "tablefree": TableFreeDelayGenerator.from_config(system),
            "tablesteer": TableSteerDelayGenerator.from_config(
                system, TableSteerConfig(total_bits=18)),
        }
        depth_spacing = exact.grid.depths[1] - exact.grid.depths[0]
        for name, provider in providers.items():
            beamformer = DelayAndSumBeamformer(system, provider)
            plane = envelope(reconstruct_plane(beamformer, data), axis=1)
            i_theta, i_depth = np.unravel_index(np.argmax(plane), plane.shape)
            found_depth = exact.grid.depths[i_depth]
            assert abs(found_depth - depth) <= 2 * depth_spacing, name

    def test_approximate_images_close_to_exact(self, pipeline_setup):
        system, exact, data, _depth = pipeline_setup
        beamformer_exact = DelayAndSumBeamformer(system, exact)
        reference = reconstruct_plane(beamformer_exact, data)
        for provider in (
                TableFreeDelayGenerator.from_config(system),
                TableSteerDelayGenerator.from_config(
                    system, TableSteerConfig(total_bits=18))):
            beamformer = DelayAndSumBeamformer(system, provider)
            image = reconstruct_plane(beamformer, data)
            assert normalized_rms_difference(reference, image) < 0.5

    def test_nappe_reconstruction_consistent_across_providers(self, pipeline_setup):
        """The nappe-order driver works with every provider and produces the
        same volume as the scanline driver for that provider."""
        system, _exact, data, _depth = pipeline_setup
        provider = TableSteerDelayGenerator.from_config(
            system, TableSteerConfig(total_bits=18))
        beamformer = DelayAndSumBeamformer(system, provider)
        from repro.beamformer.drivers import reconstruct_scanline_order
        nappe = reconstruct_nappe_order(beamformer, data)
        scanline = reconstruct_scanline_order(beamformer, data)
        np.testing.assert_allclose(nappe.rf, scanline.rf)


class TestMultiTargetImaging:
    def test_multiple_targets_resolved(self):
        """A small grid of point targets produces distinct bright spots."""
        system = tiny_system()
        exact = ExactDelayEngine.from_config(system)
        depths = exact.grid.depths
        phantom = point_target(depth=float(depths[4])).merged_with(
            point_target(depth=float(depths[12])))
        data = EchoSimulator.from_config(system).simulate(phantom)
        beamformer = DelayAndSumBeamformer(system, exact)
        i_theta = system.volume.n_theta // 2
        i_phi = system.volume.n_phi // 2
        rf = np.abs(beamformer.beamform_scanline(data, i_theta, i_phi))
        # Both target depths clearly exceed the level midway between them.
        midway = rf[8]
        assert rf[4] > 2 * midway
        assert rf[12] > 2 * midway

    def test_point_grid_phantom_full_chain(self):
        system = tiny_system()
        phantom = point_grid(system)
        data = EchoSimulator.from_config(system).simulate(phantom)
        exact = ExactDelayEngine.from_config(system)
        beamformer = DelayAndSumBeamformer(system, exact)
        volume = reconstruct_nappe_order(beamformer, data)
        assert np.max(np.abs(volume.rf)) > 0
        assert volume.rf.shape == (system.volume.n_theta, system.volume.n_phi,
                                   system.volume.n_depth)


class TestDeterminism:
    def test_pipeline_fully_deterministic(self, pipeline_setup):
        system, exact, data, _depth = pipeline_setup
        beamformer = DelayAndSumBeamformer(system, exact)
        a = reconstruct_plane(beamformer, data)
        b = reconstruct_plane(beamformer, data)
        np.testing.assert_array_equal(a, b)

    def test_generators_reconstructible_from_config(self, pipeline_setup):
        system, _exact, _data, _depth = pipeline_setup
        a = TableFreeDelayGenerator.from_config(system, TableFreeConfig())
        b = TableFreeDelayGenerator.from_config(system, TableFreeConfig())
        points = a.grid.scanline_points(0, 0)[:5]
        np.testing.assert_array_equal(a.delay_indices(points),
                                      b.delay_indices(points))
