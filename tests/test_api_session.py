"""Tests for repro.api.session — and the registry extension acceptance test.

The load-bearing claims: a Session builds shared substrates once, its sweep
reproduces the legacy ``compare_architectures`` images exactly, and a brand
new delay architecture registered via ``@ARCHITECTURES.register(...)`` plus
an options dataclass runs through ``Session.pipeline()`` and
``BeamformingService`` without modifying any repro module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.acoustics.phantom import point_target
from repro.api import ARCHITECTURES, EngineSpec, ScanSpec, Session
from repro.core.bulk import BulkDelayProviderMixin
from repro.core.exact import ExactDelayEngine
from repro.geometry.volume import FocalGrid
from repro.kernels import Precision
from repro.pipeline.imaging import compare_architectures
from repro.runtime import BeamformingService, DelayTableCache


@pytest.fixture(scope="module")
def tiny_session():
    from repro.config import tiny_system
    return Session(EngineSpec(system=tiny_system()))


@pytest.fixture(scope="module")
def centred_target(tiny_session):
    depths = tiny_session.grid.depths
    return point_target(depth=float(depths[len(depths) // 2]))


class TestSessionConstruction:
    def test_spec_defaults(self):
        session = Session()
        assert session.spec == EngineSpec()
        assert session.system.name == "small"

    def test_mapping_spec_accepted(self):
        session = Session({"system": "tiny", "architecture": "tablefree"})
        assert session.spec.architecture == "tablefree"
        assert session.system.name == "tiny"

    def test_shared_substrates_are_reused(self, tiny_session):
        pipeline = tiny_session.pipeline(architecture="tablesteer")
        service = tiny_session.service(backend="vectorized")
        assert pipeline._simulator is tiny_session.simulator
        assert pipeline.beamformer.transducer is tiny_session.transducer
        assert pipeline.beamformer.grid is tiny_session.grid
        assert service._simulator is tiny_session.simulator
        assert service.cache is tiny_session.cache
        assert pipeline.cache is tiny_session.cache

    def test_cache_capacity_from_spec(self):
        session = Session(EngineSpec(system="tiny", cache_capacity=2))
        assert session.cache.capacity == 2

    def test_spec_options_flow_to_vended_engines(self):
        spec = EngineSpec(system="tiny", architecture="tablesteer",
                          architecture_options={"total_bits": 13})
        session = Session(spec)
        assert session.pipeline().delay_provider.design.total_bits == 13
        # Overriding the architecture drops the spec's options (they belong
        # to the spec architecture, not the override).
        provider = session.pipeline(architecture="tablefree").delay_provider
        assert provider.design.delta == 0.25

    def test_unknown_names_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            Session({"architecture": "magic"})

    def test_spec_precision_flows_to_vended_engines(self):
        session = Session(EngineSpec(system="tiny", precision="float32"))
        assert session.pipeline().precision is Precision.FLOAT32
        assert session.service().precision is Precision.FLOAT32
        # Per-call override wins without touching the spec default.
        assert session.service(precision="float64").precision \
            is Precision.FLOAT64
        assert session.spec.precision is Precision.FLOAT32


class TestSessionStreaming:
    def test_stream_scan_spec(self, tiny_session):
        results = tiny_session.stream(ScanSpec(frames=3),
                                      backend="vectorized")
        assert [r.frame_id for r in results] == [0, 1, 2]
        shape = tiny_session.grid.shape
        assert all(r.rf.shape == shape for r in results)

    def test_stream_accepts_mapping(self, tiny_session):
        results = tiny_session.stream({"scenario": "static_point",
                                       "frames": 2}, backend="vectorized")
        assert len(results) == 2

    def test_batched_stream_matches_per_frame(self, tiny_session):
        scan = ScanSpec(frames=4)
        singles = tiny_session.stream(scan, backend="vectorized")
        batched = tiny_session.stream(scan, batch_size=2,
                                      backend="vectorized")
        assert [r.frame_id for r in batched] == [0, 1, 2, 3]
        for got, want in zip(batched, singles):
            np.testing.assert_array_equal(got.rf, want.rf)


class TestSweep:
    def test_sweep_matches_legacy_compare_architectures(self, tiny,
                                                        centred_target):
        with pytest.warns(DeprecationWarning, match="compare_architectures"):
            legacy = compare_architectures(
                tiny, centred_target, architectures=("exact", "tablesteer"))
        session = Session(EngineSpec(system=tiny))
        images = session.sweep(centred_target,
                               architectures=("exact", "tablesteer"))
        assert set(images) == set(legacy)
        for name in images:
            np.testing.assert_array_equal(images[name], legacy[name])

    def test_sweep_defaults_to_spec_architecture(self, tiny_session,
                                                 centred_target):
        images = tiny_session.sweep(centred_target)
        assert set(images) == {"exact"}

    def test_sweep_backends_returns_identical_volumes(self, tiny_session,
                                                      centred_target):
        volumes = tiny_session.sweep(
            centred_target, architectures=("tablefree",),
            backends=("reference", "vectorized", "sharded"))
        reference = volumes[("tablefree", "reference")]
        for backend in ("vectorized", "sharded"):
            np.testing.assert_allclose(volumes[("tablefree", backend)],
                                       reference, rtol=0, atol=1e-9)

    def test_sweep_accepts_preacquired_channel_data(self, tiny_session,
                                                    centred_target):
        channel_data = tiny_session.acquire(centred_target)
        images = tiny_session.sweep(channel_data=channel_data,
                                    architectures=("exact",))
        np.testing.assert_array_equal(
            images["exact"],
            tiny_session.sweep(centred_target)["exact"])
        with pytest.raises(ValueError, match="phantom or channel_data"):
            tiny_session.sweep()

    def test_prebuilt_provider_is_reused(self, tiny_session):
        first = tiny_session.pipeline(architecture="tablesteer")
        second = tiny_session.pipeline(architecture="tablesteer",
                                       backend="vectorized",
                                       provider=first.delay_provider)
        assert second.delay_provider is first.delay_provider


# --------------------------------------------------- acceptance: extension
@dataclass(frozen=True)
class _ToyOptions:
    offset_samples: float = 0.0


class _ToyProvider(BulkDelayProviderMixin):
    """Exact delays plus a constant offset (minimal DelayProvider)."""

    def __init__(self, inner: ExactDelayEngine, offset: float) -> None:
        self.inner = inner
        self.grid = inner.grid
        self.offset = offset

    def delays_samples(self, points):
        return self.inner.delays_samples(points) + self.offset

    def scanline_delays_samples(self, i_theta, i_phi):
        return self.inner.scanline_delays_samples(i_theta, i_phi) + self.offset

    def nappe_delays_samples(self, i_depth):
        return self.inner.nappe_delays_samples(i_depth) + self.offset


@pytest.fixture()
def toy_architecture():
    """Register a toy architecture for one test, then clean up."""

    @ARCHITECTURES.register("toy_offset", options=_ToyOptions,
                            description="exact + constant offset (test only)")
    def _build(system, options):
        return _ToyProvider(ExactDelayEngine.from_config(system),
                            options.offset_samples)

    try:
        yield "toy_offset"
    finally:
        ARCHITECTURES.unregister("toy_offset")


class TestCustomArchitectureEndToEnd:
    def test_runs_through_pipeline_service_and_spec(self, tiny, centred_target,
                                                    toy_architecture):
        spec = EngineSpec(system=tiny, architecture=toy_architecture,
                          architecture_options={"offset_samples": 0.0})
        # The spec document round-trips with the plugin in place.
        rebuilt = EngineSpec.from_json(spec.to_json())
        assert rebuilt.architecture == toy_architecture

        session = Session(rebuilt)
        # Through the imaging pipeline...
        pipeline = session.pipeline()
        image = pipeline.image_phantom(centred_target)
        baseline = session.pipeline(architecture="exact") \
            .image_phantom(centred_target)
        np.testing.assert_allclose(image, baseline)

        # ...and through the streaming service, on a batched backend.
        service = BeamformingService(
            tiny, architecture=toy_architecture,
            architecture_options={"offset_samples": 0.0},
            backend="vectorized", cache=DelayTableCache())
        result = service.submit_frame(centred_target)
        assert result.rf.shape == FocalGrid.from_config(tiny).shape
        assert service.architecture == toy_architecture

    def test_nonzero_offset_changes_the_image(self, tiny, centred_target,
                                              toy_architecture):
        session = Session(EngineSpec(system=tiny))
        images = session.sweep(centred_target,
                               architectures=("exact", toy_architecture))
        np.testing.assert_array_equal(images[toy_architecture],
                                      images["exact"])
        offset_pipeline = session.pipeline(
            architecture=toy_architecture,
            architecture_options={"offset_samples": 40.0})
        shifted = offset_pipeline.image_plane(
            session.acquire(centred_target))
        assert not np.allclose(shifted, images["exact"])

    def test_unregistered_name_gone_again(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            Session({"architecture": "toy_offset"})
