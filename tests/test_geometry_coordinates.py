"""Tests for repro.geometry.coordinates: spherical/Cartesian conversions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.coordinates import (
    cartesian_to_spherical,
    distances,
    off_axis_angle,
    pairwise_distances,
    spherical_to_cartesian,
)


class TestSphericalToCartesian:
    def test_broadside_is_positive_z(self):
        point = spherical_to_cartesian(0.0, 0.0, 3.0)
        np.testing.assert_allclose(point, [0.0, 0.0, 3.0], atol=1e-15)

    def test_theta_steers_in_xz_plane(self):
        point = spherical_to_cartesian(math.pi / 2, 0.0, 2.0)
        np.testing.assert_allclose(point, [2.0, 0.0, 0.0], atol=1e-12)

    def test_phi_steers_towards_y(self):
        point = spherical_to_cartesian(0.0, math.pi / 2, 2.0)
        np.testing.assert_allclose(point, [0.0, 2.0, 0.0], atol=1e-12)

    def test_radius_preserved(self, rng):
        thetas = rng.uniform(-1.0, 1.0, 100)
        phis = rng.uniform(-1.0, 1.0, 100)
        rs = rng.uniform(0.1, 10.0, 100)
        points = spherical_to_cartesian(thetas, phis, rs)
        np.testing.assert_allclose(np.linalg.norm(points, axis=-1), rs)

    def test_matches_paper_equation_5(self, rng):
        theta, phi, r = 0.3, -0.2, 1.7
        point = spherical_to_cartesian(theta, phi, r)
        expected = [r * math.cos(phi) * math.sin(theta),
                    r * math.sin(phi),
                    r * math.cos(phi) * math.cos(theta)]
        np.testing.assert_allclose(point, expected)

    def test_broadcasting_shapes(self):
        thetas = np.zeros((4, 1))
        phis = np.zeros((1, 5))
        points = spherical_to_cartesian(thetas, phis, 1.0)
        assert points.shape == (4, 5, 3)


class TestCartesianToSpherical:
    def test_roundtrip(self, rng):
        thetas = rng.uniform(-1.2, 1.2, 200)
        phis = rng.uniform(-1.2, 1.2, 200)
        rs = rng.uniform(0.01, 5.0, 200)
        points = spherical_to_cartesian(thetas, phis, rs)
        theta_back, phi_back, r_back = cartesian_to_spherical(points)
        np.testing.assert_allclose(theta_back, thetas, atol=1e-10)
        np.testing.assert_allclose(phi_back, phis, atol=1e-10)
        np.testing.assert_allclose(r_back, rs, atol=1e-10)

    def test_origin_has_zero_radius(self):
        _theta, _phi, r = cartesian_to_spherical(np.zeros(3))
        assert r == pytest.approx(0.0)


class TestDistances:
    def test_distance_to_reference(self):
        points = np.array([[0.0, 0.0, 1.0], [3.0, 4.0, 0.0]])
        np.testing.assert_allclose(distances(points, np.zeros(3)), [1.0, 5.0])

    def test_pairwise_shape_and_values(self):
        a = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        b = np.array([[0.0, 0.0, 0.0], [0.0, 3.0, 4.0], [1.0, 0.0, 0.0]])
        matrix = pairwise_distances(a, b)
        assert matrix.shape == (2, 3)
        np.testing.assert_allclose(matrix[0], [0.0, 5.0, 1.0])
        np.testing.assert_allclose(matrix[1], [1.0, np.sqrt(1 + 25), 0.0])

    def test_pairwise_symmetry(self, rng):
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(7, 3))
        np.testing.assert_allclose(pairwise_distances(a, b),
                                   pairwise_distances(b, a).T)


class TestOffAxisAngle:
    def test_point_straight_ahead_is_zero(self):
        points = np.array([[0.0, 0.0, 5.0]])
        origins = np.array([[0.0, 0.0, 0.0]])
        assert off_axis_angle(points, origins)[0, 0] == pytest.approx(0.0)

    def test_point_in_plane_is_ninety_degrees(self):
        points = np.array([[1.0, 0.0, 0.0]])
        origins = np.array([[0.0, 0.0, 0.0]])
        assert off_axis_angle(points, origins)[0, 0] == pytest.approx(math.pi / 2)

    def test_forty_five_degrees(self):
        points = np.array([[1.0, 0.0, 1.0]])
        origins = np.array([[0.0, 0.0, 0.0]])
        assert off_axis_angle(points, origins)[0, 0] == pytest.approx(math.pi / 4)

    def test_depends_on_origin(self):
        points = np.array([[1.0, 0.0, 1.0]])
        origins = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        angles = off_axis_angle(points, origins)
        assert angles[0, 0] == pytest.approx(math.pi / 4)
        assert angles[0, 1] == pytest.approx(0.0)

    def test_shape(self, rng):
        points = rng.normal(size=(6, 3))
        origins = rng.normal(size=(4, 3))
        assert off_axis_angle(points, origins).shape == (6, 4)

    def test_coincident_point_returns_zero_angle(self):
        points = np.array([[0.0, 0.0, 0.0]])
        origins = np.array([[0.0, 0.0, 0.0]])
        assert np.isfinite(off_axis_angle(points, origins)[0, 0])
