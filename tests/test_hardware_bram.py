"""Tests for repro.hardware.bram: streaming plan and circular-buffer model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.bram import (
    BramBankSpec,
    CircularBufferSimulator,
    make_streaming_plan,
    parallel_read_conflicts,
    staggered_bank_assignment,
)


class TestBankSpec:
    def test_capacity(self):
        assert BramBankSpec(word_bits=18, words=1024).capacity_bits == 18 * 1024

    def test_paper_bank_array_is_2_3_megabits(self):
        total = 128 * BramBankSpec(word_bits=18, words=1024).capacity_bits
        assert total / 1e6 == pytest.approx(2.36, abs=0.05)


class TestStreamingPlan:
    def test_paper_bandwidth_figure(self):
        """2.5e6 entries at 18 bit refetched 960 times/s is ~5.4 GB/s."""
        plan = make_streaming_plan(table_entries=2_500_000, entry_bits=18,
                                   insonifications_per_second=960)
        assert plan.dram_bandwidth_bytes_per_second / 1e9 == pytest.approx(
            5.4, abs=0.15)

    def test_14_bit_variant_bandwidth(self):
        plan = make_streaming_plan(table_entries=2_500_000, entry_bits=14,
                                   insonifications_per_second=960)
        assert plan.dram_bandwidth_bytes_per_second / 1e9 == pytest.approx(
            4.2, abs=0.15)

    def test_on_chip_capacity(self):
        plan = make_streaming_plan(table_entries=2_500_000, entry_bits=18,
                                   insonifications_per_second=960)
        assert plan.on_chip_bits == 128 * 1024 * 18

    def test_chunks_per_table(self):
        plan = make_streaming_plan(table_entries=2_500_000, entry_bits=18,
                                   insonifications_per_second=960)
        expected = int(np.ceil(2_500_000 * 18 / (128 * 1024 * 18)))
        assert plan.chunks_per_table == expected

    def test_table_bits(self):
        plan = make_streaming_plan(table_entries=1000, entry_bits=18,
                                   insonifications_per_second=10)
        assert plan.table_bits == 18_000


class TestCircularBuffer:
    def test_matched_rates_never_stall(self):
        simulator = CircularBufferSimulator(capacity_words=1024,
                                            consume_words_per_cycle=0.1,
                                            refill_words_per_cycle=0.1,
                                            initial_fill_words=1024)
        stats = simulator.run(n_cycles=10_000, refill_latency_cycles=1000)
        assert stats["stall_cycles"] == 0
        assert stats["min_fill_words"] > 0

    def test_underprovisioned_refill_stalls(self):
        simulator = CircularBufferSimulator(capacity_words=64,
                                            consume_words_per_cycle=1.0,
                                            refill_words_per_cycle=0.5,
                                            initial_fill_words=64)
        stats = simulator.run(n_cycles=1000)
        assert stats["stall_cycles"] > 0
        assert stats["stall_fraction"] > 0.1

    def test_latency_eats_into_margin(self):
        base = CircularBufferSimulator(capacity_words=256,
                                       consume_words_per_cycle=0.2,
                                       refill_words_per_cycle=0.2,
                                       initial_fill_words=256)
        no_latency = base.run(n_cycles=5000, refill_latency_cycles=0)
        with_latency = base.run(n_cycles=5000, refill_latency_cycles=500)
        assert with_latency["min_fill_words"] < no_latency["min_fill_words"]

    def test_overprovisioned_refill_keeps_buffer_full(self):
        simulator = CircularBufferSimulator(capacity_words=128,
                                            consume_words_per_cycle=0.1,
                                            refill_words_per_cycle=1.0,
                                            initial_fill_words=0)
        stats = simulator.run(n_cycles=2000)
        assert stats["final_fill_words"] == pytest.approx(128, abs=1.5)

    def test_invalid_capacity_rejected(self):
        simulator = CircularBufferSimulator(capacity_words=0,
                                            consume_words_per_cycle=1,
                                            refill_words_per_cycle=1)
        with pytest.raises(ValueError):
            simulator.run(100)


class TestStaggering:
    def test_round_robin_assignment(self):
        assignment = staggered_bank_assignment(10, 4)
        np.testing.assert_array_equal(assignment, [0, 1, 2, 3, 0, 1, 2, 3, 0, 1])

    def test_no_conflicts_when_window_fits_banks(self):
        assignment = staggered_bank_assignment(1000, 128)
        assert parallel_read_conflicts(assignment, 128) == 0

    def test_conflicts_when_window_exceeds_banks(self):
        assignment = staggered_bank_assignment(64, 16)
        assert parallel_read_conflicts(assignment, 32) > 0

    def test_single_bank_everything_conflicts(self):
        assignment = staggered_bank_assignment(10, 1)
        assert parallel_read_conflicts(assignment, 5) > 0

    def test_zero_banks_rejected(self):
        with pytest.raises(ValueError):
            staggered_bank_assignment(10, 0)
