"""Tests for repro.beamformer.interpolation: echo-sample fetching strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.echo import ChannelData
from repro.beamformer.das import DelayAndSumBeamformer
from repro.beamformer.interpolation import (
    InterpolationKind,
    fetch_linear,
    fetch_nearest,
    fetch_samples,
    interpolation_cost_model,
)


@pytest.fixture()
def ramp_data():
    """Channel data whose samples equal their index (makes interpolation exact)."""
    samples = np.tile(np.arange(64, dtype=float), (4, 1))
    return ChannelData(samples=samples, sampling_frequency=32e6)


class TestFetchNearest:
    def test_integer_delays(self, ramp_data):
        elements = np.array([0, 1, 2, 3])
        delays = np.array([5.0, 10.0, 20.0, 63.0])
        np.testing.assert_allclose(
            fetch_nearest(ramp_data, elements, delays), delays)

    def test_rounding_to_nearest(self, ramp_data):
        elements = np.zeros(4, dtype=int)
        delays = np.array([5.4, 5.6, 6.5, 7.49])
        np.testing.assert_allclose(
            fetch_nearest(ramp_data, elements, delays), [5, 6, 7, 7])

    def test_out_of_range_returns_zero(self, ramp_data):
        elements = np.zeros(2, dtype=int)
        np.testing.assert_allclose(
            fetch_nearest(ramp_data, elements, np.array([-3.0, 100.0])), [0, 0])


class TestFetchLinear:
    def test_exact_on_linear_ramp(self, ramp_data):
        """On a linear signal, linear interpolation reproduces the fractional
        delay exactly."""
        elements = np.zeros(5, dtype=int)
        delays = np.array([5.0, 5.25, 5.5, 5.75, 6.0])
        np.testing.assert_allclose(
            fetch_linear(ramp_data, elements, delays), delays)

    def test_matches_nearest_on_integer_delays(self, ramp_data):
        elements = np.array([1, 2])
        delays = np.array([7.0, 30.0])
        np.testing.assert_allclose(
            fetch_linear(ramp_data, elements, delays),
            fetch_nearest(ramp_data, elements, delays))

    def test_linear_reduces_quantisation_error_on_average(self):
        """For a smooth band-limited signal, linear interpolation at random
        fractional delays is closer to the true value than integer indexing
        in the RMS sense (pointwise it can occasionally lose, e.g. exactly at
        a signal peak)."""
        fs = 32e6
        t = np.arange(256) / fs
        signal = np.sin(2 * np.pi * 2e6 * t)
        data = ChannelData(samples=signal[None, :], sampling_frequency=fs)
        rng = np.random.default_rng(5)
        delays = rng.uniform(20.0, 200.0, 300)
        truth = np.sin(2 * np.pi * 2e6 * delays / fs)
        elements = np.zeros(len(delays), dtype=int)
        nearest = fetch_nearest(data, elements, delays)
        linear = fetch_linear(data, elements, delays)
        rms_nearest = np.sqrt(np.mean((nearest - truth) ** 2))
        rms_linear = np.sqrt(np.mean((linear - truth) ** 2))
        assert rms_linear < rms_nearest / 2


class TestDispatch:
    def test_fetch_samples_dispatch(self, ramp_data):
        elements = np.zeros(3, dtype=int)
        delays = np.array([1.5, 2.5, 3.5])
        np.testing.assert_allclose(
            fetch_samples(ramp_data, elements, delays, InterpolationKind.LINEAR),
            fetch_linear(ramp_data, elements, delays))
        np.testing.assert_allclose(
            fetch_samples(ramp_data, elements, delays, InterpolationKind.NEAREST),
            fetch_nearest(ramp_data, elements, delays))

    def test_unknown_kind_rejected(self, ramp_data):
        with pytest.raises(ValueError):
            fetch_samples(ramp_data, np.zeros(1, dtype=int), np.zeros(1),
                          "cubic")  # type: ignore[arg-type]


class TestCostModel:
    def test_linear_costs_more(self):
        nearest = interpolation_cost_model(InterpolationKind.NEAREST, 100)
        linear = interpolation_cost_model(InterpolationKind.LINEAR, 100)
        assert linear["buffer_reads"] == 2 * nearest["buffer_reads"]
        assert linear["multiplies"] > nearest["multiplies"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            interpolation_cost_model("cubic", 10)  # type: ignore[arg-type]


class TestBeamformerIntegration:
    def test_beamformer_accepts_interpolation_kind(self, tiny, tiny_exact,
                                                   tiny_channel_data):
        nearest = DelayAndSumBeamformer(tiny, tiny_exact,
                                        interpolation=InterpolationKind.NEAREST)
        linear = DelayAndSumBeamformer(tiny, tiny_exact,
                                       interpolation=InterpolationKind.LINEAR)
        i_mid = tiny.volume.n_theta // 2
        rf_nearest = nearest.beamform_scanline(tiny_channel_data, i_mid, i_mid)
        rf_linear = linear.beamform_scanline(tiny_channel_data, i_mid, i_mid)
        assert rf_nearest.shape == rf_linear.shape
        # Both localise the target at the same depth index.
        assert np.argmax(np.abs(rf_nearest)) == np.argmax(np.abs(rf_linear))
        # But the waveforms are not identical (fractional delays matter).
        assert not np.allclose(rf_nearest, rf_linear)
